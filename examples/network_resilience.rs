//! Network-resilience audit: given a communication network, rank the
//! articulation points by how much of the network they disconnect, and
//! simulate hardening (adding redundant links) until no single point of
//! failure remains — an application loop driving the BCC API.
//!
//! ```text
//! cargo run --release --example network_resilience
//! ```

use fast_bcc::prelude::*;

/// Build a two-tier "datacenter + branches" topology: a well-connected
/// core ring with chords, plus branch chains hanging off core routers —
/// realistic single points of failure.
fn build_network(core: usize, branches: usize, branch_len: usize, seed: u64) -> Graph {
    let n = core + branches * branch_len;
    let mut el = EdgeList::new(n);
    // Core ring + skip chords (2-connected).
    for i in 0..core {
        el.push(i as V, ((i + 1) % core) as V);
        el.push(i as V, ((i + 3) % core) as V);
    }
    // Branches: chains attached to pseudo-random core routers.
    let mut next = core;
    for b in 0..branches {
        let attach =
            (fast_bcc::primitives::rng::hash64_pair(seed, b as u64) % core as u64) as usize;
        let mut prev = attach;
        for _ in 0..branch_len {
            el.push(prev as V, next as V);
            prev = next;
            next += 1;
        }
    }
    builder::build_symmetric(&el)
}

fn main() {
    let core = 64;
    let branches = 12;
    let branch_len = 5;
    let mut g = build_network(core, branches, branch_len, 7);
    println!(
        "network: {} routers, {} links ({} core + {} branches of {})",
        g.n(),
        g.m_undirected(),
        core,
        branches,
        branch_len
    );

    // Hardening loop: while single points of failure exist, add a redundant
    // link from each branch tip back into the core.
    for round in 0.. {
        let r = fast_bcc(&g, BccOpts::default());
        let aps = articulation_points(&r);
        let brs = bridges(&r);
        let counts = bcc_membership_counts(&r);
        println!(
            "\nround {round}: {} BCCs, {} articulation points, {} bridges",
            r.num_bcc,
            aps.len(),
            brs.len()
        );
        if aps.is_empty() {
            println!("network is fully biconnected — no single point of failure ✓");
            break;
        }
        // Rank the worst offenders (most BCC memberships = most cut power).
        let mut ranked: Vec<(u32, V)> = aps.iter().map(|&v| (counts[v as usize], v)).collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "  worst articulation routers (memberships): {:?}",
            &ranked[..ranked.len().min(5)]
        );

        // Hardening: close every bridge by linking its far endpoint to a
        // second core router (creating a cycle through the branch).
        let mut extra: Vec<(V, V)> = Vec::new();
        for (i, &(u, v)) in brs.iter().enumerate() {
            let deep = if counts[u as usize] <= counts[v as usize] {
                u
            } else {
                v
            };
            let target = ((deep as usize + 17 * (i + 1)) % core) as V;
            if deep != target && !g.has_edge(deep, target) {
                extra.push((deep, target));
            }
        }
        println!("  adding {} redundant links", extra.len());
        let mut edges: Vec<(V, V)> = g.iter_edges().collect();
        edges.extend_from_slice(&extra);
        g = builder::from_edges(g.n(), &edges);
        if round > 20 {
            println!("  (giving up after 20 rounds)");
            break;
        }
    }
}
