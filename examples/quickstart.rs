//! Quickstart: build a small graph, run FAST-BCC, inspect the output.
//!
//! The 60-second tour of the core API — construct a 10-vertex network
//! with visible biconnectivity structure (a chorded block, a chain of
//! bridges, a cycle, a leaf), solve it with `fast_bcc`, and walk the
//! result: BCC count, articulation points, bridges, and the per-vertex
//! component labels of the paper's `O(n)` representation. Start here,
//! then graduate to the repeated-solve engine (`road_network.rs`) and
//! the always-on query service (`query_service.rs`).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fast_bcc::prelude::*;

fn main() {
    // A small network with visible biconnectivity structure:
    //
    //      1 --- 2           6 --- 7
    //      |  X  |           |     |
    //      0 --- 3 --- 4 --- 5 --- 8
    //                  |
    //                  9 (leaf)
    //
    // Left block {0,1,2,3} is 2-connected (with chords), the middle is a
    // chain of bridges, and {5,6,7,8} is a cycle.
    let edges: &[(V, V)] = &[
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (0, 2),
        (1, 3), // left block + chords
        (3, 4),
        (4, 5), // bridges
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 5), // right cycle
        (4, 9), // pendant
    ];
    let g = builder::from_edges(10, edges);
    println!(
        "graph: n = {}, m = {} undirected edges",
        g.n(),
        g.m_undirected()
    );

    let result = fast_bcc(&g, BccOpts::default());
    println!("\nbiconnected components: {}", result.num_bcc);
    for (i, bcc) in canonical_bccs(&result).iter().enumerate() {
        println!("  BCC {i}: {bcc:?}");
    }

    let aps = articulation_points(&result);
    println!("\narticulation points (single points of failure): {aps:?}");

    let mut brs = bridges(&result);
    brs.iter_mut()
        .for_each(|e| *e = (e.0.min(e.1), e.0.max(e.1)));
    brs.sort_unstable();
    println!("bridges (critical links): {brs:?}");

    println!(
        "\nlargest BCC covers {} of {} vertices",
        largest_bcc_size(&result),
        g.n()
    );
    println!(
        "phase times: first-cc {:?}, rooting {:?}, tagging {:?}, last-cc {:?}",
        result.breakdown.first_cc,
        result.breakdown.rooting,
        result.breakdown.tagging,
        result.breakdown.last_cc
    );

    // Cross-check against the sequential Hopcroft–Tarjan baseline.
    let ht = fast_bcc::baselines::hopcroft_tarjan(&g, true);
    assert_eq!(ht.num_bcc, result.num_bcc);
    assert_eq!(ht.bccs.unwrap(), canonical_bccs(&result));
    println!("\nverified against sequential Hopcroft–Tarjan ✓");
}
