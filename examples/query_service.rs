//! Always-on query service: serve biconnectivity queries *while the graph
//! is re-solved underneath* — the production shape the ROADMAP targets
//! (heavy query traffic over a periodically rebuilt graph), now driven by
//! the `fastbcc-serve` crate. A reader thread streams warm mixed batches
//! nonstop; the main thread plays the role of the ingestion pipeline,
//! publishing a fresh snapshot of an evolving road-like network every
//! round. Readers never block on a rebuild, every batch is tagged with the
//! snapshot version that answered it, and the final line prints the
//! service's JSON stats record (see `docs/serving.md` for how to read it).
//!
//! ```text
//! cargo run --release --example query_service -- [n] [batch] [rounds]
//!                                       # defaults 100000, 200000, 5
//! ```

use fast_bcc::graph::generators::{geometric::road_like_radius, random_geometric};
use fast_bcc::prelude::*;
use fast_bcc::serve::{start, ServeOpts};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("generating road-like network with {n} intersections…");
    let g = random_geometric(n, road_like_radius(n), 77);
    println!("n = {}, m = {} roads", g.n(), g.m_undirected());

    // Solve once and start serving it as snapshot version 1.
    let t = Instant::now();
    let (handle, mut rebuilder) = start(
        &g,
        ServeOpts {
            batch_capacity: batch,
            ..Default::default()
        },
    );
    println!("service up (version 1) in {:.1?}", t.elapsed());

    // The serving side: one dedicated reader streaming mixed batches — a
    // routing/reliability frontend asking same-BCC / articulation /
    // bridge / separating-cut-count questions. It stops when told, never
    // earlier and never because a rebuild got in the way.
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let handle = handle.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut reader = handle.reader();
            let queries = random_mixed_batch(n, batch, 0xD15);
            let mut batches = 0u64;
            let mut hits = 0u64; // same-BCC true answers, as a liveness signal
            let mut last_version = 0;
            while !stop.load(Ordering::Acquire) || batches == 0 {
                let served = reader.answer_batch(&queries);
                if served.version != last_version {
                    println!("  [reader] now serving snapshot version {}", served.version);
                    last_version = served.version;
                }
                hits += served
                    .answers
                    .iter()
                    .filter(|a| matches!(a, QueryAnswer::Bool(true)))
                    .count() as u64;
                batches += 1;
                assert_eq!(reader.fresh_alloc_bytes(), 0, "warm batch allocated");
            }
            (batches, hits)
        })
    };

    // The ingestion side: every round the road network evolves (here:
    // regenerated with a new seed) and the rebuilder publishes it. The
    // reader above keeps serving the previous version until the atomic
    // swap, then picks up the new one on its next batch.
    for round in 0..rounds {
        let g = random_geometric(n, road_like_radius(n), 78 + round as u64);
        let rep = rebuilder.rebuild(&g);
        println!(
            "published version {} in {:.1?} (solve {:.1?}, index {:.2} MB, {} snapshot(s) retired)",
            rep.version,
            rep.total,
            rep.solve,
            rep.index_bytes as f64 / (1 << 20) as f64,
            rep.retired_now,
        );
    }
    stop.store(true, Ordering::Release);
    let (batches, hits) = server.join().expect("reader panicked");

    let rep = handle.stats_report();
    println!(
        "served {} queries in {batches} batches across {} snapshot versions ({hits} positive answers)",
        rep.queries_served, rep.published_version,
    );
    println!("stats: {}", rep.to_json());
    assert_eq!(rep.snapshots_published, rounds as u64 + 1);
}
