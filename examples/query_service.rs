//! Build-then-serve: solve BCC once, build the query index, and answer a
//! large mixed batch of online queries — the production shape the ROADMAP
//! targets (heavy query traffic over a periodically re-solved graph).
//!
//! ```text
//! cargo run --release --example query_service -- [n] [batch]   # defaults 100000, 500000
//! ```

use fast_bcc::graph::generators::{geometric::road_like_radius, random_geometric};
use fast_bcc::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500_000);

    println!("generating road-like network with {n} intersections…");
    let g = random_geometric(n, road_like_radius(n), 77);
    println!("n = {}, m = {} roads", g.n(), g.m_undirected());

    // Solve once with the pooled engine, then freeze a query index.
    let mut engine = BccEngine::new(BccOpts::default());
    let t = Instant::now();
    let r = engine.solve(&g);
    let t_solve = t.elapsed();
    println!(
        "solved: {} BCCs, {} connected components in {:.1?}",
        r.num_bcc, r.num_cc, t_solve
    );
    let t = Instant::now();
    let index = engine.build_index();
    let t_build = t.elapsed();
    println!(
        "index: {} blocks + {} cut vertices, {:.2} MB, built in {:.1?}",
        index.num_blocks(),
        index.num_cuts(),
        index.bytes() as f64 / (1 << 20) as f64,
        t_build
    );

    // A mixed workload: reachability-robustness questions a routing or
    // reliability service would ask.
    let queries = random_mixed_batch(g.n(), batch, 0xD15);

    let mut scratch = QueryScratch::with_capacity(batch);
    index.answer_batch(&queries, &mut scratch); // warm the pool
    let t = Instant::now();
    let answers = index.answer_batch(&queries, &mut scratch);
    let t_batch = t.elapsed();

    let (mut same, mut art, mut bridge, mut sep_total, mut unreachable) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for (&q, &a) in queries.iter().zip(answers.iter()) {
        match (q, a) {
            (Query::SameBcc(..), QueryAnswer::Bool(true)) => same += 1,
            (Query::IsArticulation(_), QueryAnswer::Bool(true)) => art += 1,
            (Query::IsBridge(..), QueryAnswer::Bool(true)) => bridge += 1,
            (Query::CutVerticesOnPath(..), QueryAnswer::Count(Some(c))) => sep_total += c as u64,
            (Query::CutVerticesOnPath(..), QueryAnswer::Count(None)) => unreachable += 1,
            _ => {}
        }
    }
    println!(
        "served {batch} queries in {:.1?} ({:.2} Mquery/s, warm fresh bytes = {})",
        t_batch,
        batch as f64 / t_batch.as_secs_f64() / 1e6,
        scratch.fresh_alloc_bytes()
    );
    println!("  same-BCC hits: {same}, articulation hits: {art}, bridge hits: {bridge}");
    println!(
        "  path queries: {sep_total} total separating cut vertices, {unreachable} unreachable pairs"
    );
    assert_eq!(scratch.fresh_alloc_bytes(), 0, "warm batch allocated");
}
