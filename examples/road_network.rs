//! Road-network resilience: find the critical road segments (bridges) and
//! junctions (articulation points) of a large synthetic road network, and
//! compare FAST-BCC against the sequential algorithm — the paper's
//! motivating large-diameter scenario, where BFS-based parallel BCC breaks
//! down but FAST-BCC does not.
//!
//! ```text
//! cargo run --release --example road_network -- [n]        # default 200000
//! ```

use fast_bcc::baselines::{bfs_bcc, hopcroft_tarjan};
use fast_bcc::graph::generators::{geometric::road_like_radius, random_geometric};
use fast_bcc::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    println!("generating road-like network with {n} intersections…");
    let g = random_geometric(n, road_like_radius(n), 2024);
    let d = fast_bcc::graph::stats::approx_diameter(&g, 2);
    println!(
        "n = {}, m = {} roads, approx diameter = {d} (large-diameter regime)",
        g.n(),
        g.m_undirected()
    );

    // FAST-BCC, parallel.
    let t = Instant::now();
    let result = fast_bcc(&g, BccOpts::default());
    let t_fast = t.elapsed();

    // Sequential Hopcroft–Tarjan.
    let t = Instant::now();
    let ht = hopcroft_tarjan(&g, false);
    let t_seq = t.elapsed();

    // BFS-skeleton baseline (GBBS-style) for contrast.
    let t = Instant::now();
    let bfs = bfs_bcc(&g, 7);
    let t_bfs = t.elapsed();

    assert_eq!(result.num_bcc, ht.num_bcc);
    assert_eq!(bfs.num_bcc, ht.num_bcc);

    let aps = articulation_points(&result);
    let brs = bridges(&result);
    println!("\nanalysis:");
    println!("  connected components : {}", result.num_cc);
    println!("  biconnected components: {}", result.num_bcc);
    println!(
        "  critical junctions    : {} ({:.2}% of intersections)",
        aps.len(),
        100.0 * aps.len() as f64 / n as f64
    );
    println!("  critical road segments: {}", brs.len());
    println!(
        "  largest resilient zone: {} intersections",
        largest_bcc_size(&result)
    );

    println!("\ntimings:");
    println!("  FAST-BCC (parallel)      : {t_fast:?}");
    println!("  BFS-skeleton (parallel)  : {t_bfs:?}");
    println!("  Hopcroft–Tarjan (1 core) : {t_seq:?}");
    println!(
        "\nFAST-BCC vs BFS-skeleton: {:.2}x (the paper's large-diameter gap)",
        t_bfs.as_secs_f64() / t_fast.as_secs_f64()
    );
}
