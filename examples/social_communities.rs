//! Social-graph structure: biconnected cores of a power-law network.
//!
//! Reproduces the paper's observation that social networks have one giant
//! BCC covering most of the graph (the `|BCC1|%` column of Tab. 2: 75–98%
//! for social graphs) plus a fringe of small tree-like attachments — and
//! that this is exactly the regime where BFS-based BCC is competitive, so
//! FAST-BCC's edge is modest here and dramatic on the road/k-NN examples.
//!
//! ```text
//! cargo run --release --example social_communities -- [scale]   # default 16
//! ```

use fast_bcc::baselines::bfs_bcc;
use fast_bcc::graph::generators::rmat;
use fast_bcc::prelude::*;
use std::time::Instant;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let m_target = (1usize << scale) * 8;

    println!("generating R-MAT social graph (scale {scale}, ~{m_target} edge samples)…");
    let g = rmat(scale, m_target, 42);
    println!(
        "n = {}, m = {}, approx diameter = {} (low-diameter regime)",
        g.n(),
        g.m_undirected(),
        fast_bcc::graph::stats::approx_diameter(&g, 2)
    );

    let t = Instant::now();
    let r = fast_bcc(&g, BccOpts::default());
    let t_fast = t.elapsed();
    let t = Instant::now();
    let b = bfs_bcc(&g, 7);
    let t_bfs = t.elapsed();
    assert_eq!(r.num_bcc, b.num_bcc);

    let giant = largest_bcc_size(&r);
    let aps = articulation_points(&r);
    println!("\nstructure:");
    println!("  connected components  : {}", r.num_cc);
    println!("  biconnected components: {}", r.num_bcc);
    println!(
        "  giant BCC             : {} vertices = {:.1}% of the graph",
        giant,
        100.0 * giant as f64 / g.n() as f64
    );
    println!(
        "  articulation points   : {} ({:.1}%)",
        aps.len(),
        100.0 * aps.len() as f64 / g.n() as f64
    );

    // BCC size distribution (log-scale histogram).
    let mut sizes: Vec<usize> = canonical_bccs(&r).iter().map(|b| b.len()).collect();
    sizes.sort_unstable();
    let mut hist = std::collections::BTreeMap::new();
    for s in sizes {
        *hist.entry(s.next_power_of_two()).or_insert(0usize) += 1;
    }
    println!("\n  BCC size distribution (bucketed by next power of two):");
    for (bucket, count) in hist {
        println!("    ≤{bucket:>8}: {count}");
    }

    println!("\ntimings: FAST-BCC {t_fast:?} vs BFS-skeleton {t_bfs:?}");
    println!("(on low-diameter graphs the gap is small — the paper's Tab. 2 Social rows)");
}
