//! Property tests for schedule independence with the per-worker
//! (`WorkerLocal`) frontier arenas in play: LDD, BFS, and CC must produce
//! the same answers under worker budgets of 1, 2, and 8, and the
//! single-thread configuration must be bit-for-bit reproducible.
//!
//! What "the same" means per algorithm: BFS levels, component roots, and
//! round counts are schedule-independent facts of the graph, so they must
//! match *exactly*; CC labels pick racy representatives, so the induced
//! partition is compared in first-occurrence normal form; LDD cluster
//! ownership is decided by CAS races by design, so every budget must
//! yield a *valid* decomposition (full coverage, self-owned centers, one
//! tree arc per non-center, clusters within components).

use fastbcc_connectivity::bfs::{bfs_forest, bfs_forest_in, BfsScratch};
use fastbcc_connectivity::cc::{ldd_uf_jtb, CcOpts};
use fastbcc_connectivity::ldd::{ldd, LddOpts};
use fastbcc_graph::builder::from_edges;
use fastbcc_graph::stats::cc_labels_seq;
use fastbcc_graph::{Graph, NONE, V};
use fastbcc_primitives::edgemap::EdgeMapMode;
use fastbcc_primitives::with_threads;
use proptest::prelude::*;

const BUDGETS: [usize; 3] = [1, 2, 8];
const MODES: [EdgeMapMode; 3] = [EdgeMapMode::Sparse, EdgeMapMode::Dense, EdgeMapMode::Auto];

/// Run `f` while the submitting lane of a `join` spins busy, forcing the
/// pool's *steal* path to service `f`'s parallel pieces: the busy lane
/// occupies the submitter, so `f` (the deferred branch) and everything it
/// spawns must be picked up from the deques by other workers. The spin is
/// released as soon as `f` completes, with a 200 ms failsafe so a
/// schedule where no worker attaches (single-core boxes, or the worker
/// held by a concurrently running test) degrades to a bounded delay — the
/// deferred branch then runs inline after the spinner — not a hang.
fn under_busy_lane<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = AtomicBool::new(false);
    let (_, r) = rayon::join(
        || {
            let t0 = std::time::Instant::now();
            while !stop.load(Ordering::Acquire)
                && t0.elapsed() < std::time::Duration::from_millis(200)
            {
                std::hint::spin_loop();
            }
        },
        || {
            let r = f();
            stop.store(true, Ordering::Release);
            r
        },
    );
    r
}

fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (1..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as V, 0..n as V), 0..mmax)
            .prop_map(move |edges| from_edges(n, &edges))
    })
}

/// Rename labels by first occurrence so racy representative choices
/// cancel out; two labelings normalize equal iff they induce the same
/// partition.
fn normalize(labels: &[u32]) -> Vec<u32> {
    let mut rename = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = rename.len() as u32;
            *rename.entry(l).or_insert(next)
        })
        .collect()
}

fn check_ldd_valid(g: &Graph, cluster: &[u32], tree_edges: &[(V, V)]) {
    let n = g.n();
    assert!(cluster.iter().all(|&c| c != NONE), "vertex left uncovered");
    for v in 0..n {
        let c = cluster[v];
        assert_eq!(cluster[c as usize], c, "center of {v} not self-owned");
    }
    for &(p, c) in tree_edges {
        assert!(g.has_edge(p, c));
        assert_eq!(cluster[p as usize], cluster[c as usize]);
    }
    let centers = (0..n).filter(|&v| cluster[v] == v as u32).count();
    assert_eq!(tree_edges.len(), n - centers);
    let cc = cc_labels_seq(g);
    for v in 0..n {
        assert_eq!(cc[v], cc[cluster[v] as usize], "cluster spans components");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn cc_partition_identical_across_thread_budgets(g in arb_graph(64, 200)) {
        let runs: Vec<(Vec<u32>, usize)> = BUDGETS
            .iter()
            .map(|&k| {
                with_threads(k, || {
                    let out = ldd_uf_jtb(&g, CcOpts { want_forest: true, ..Default::default() });
                    let forest = out.forest.as_ref().unwrap();
                    prop_assert_eq!(forest.len(), g.n() - out.num_components);
                    Ok((normalize(&out.labels), out.num_components))
                })
            })
            .collect::<Result<_, TestCaseError>>()?;
        for (k, run) in BUDGETS.iter().zip(&runs) {
            prop_assert_eq!(run, &runs[0], "CC diverged at {} threads", k);
        }
    }

    #[test]
    fn bfs_levels_roots_and_rounds_are_schedule_independent(g in arb_graph(64, 200)) {
        let runs: Vec<_> = BUDGETS
            .iter()
            .map(|&k| with_threads(k, || {
                let f = bfs_forest(&g);
                (f.level, f.root, f.roots, f.rounds)
            }))
            .collect();
        for (k, run) in BUDGETS.iter().zip(&runs) {
            prop_assert_eq!(run, &runs[0], "BFS diverged at {} threads", k);
        }
    }

    #[test]
    fn cc_partition_identical_across_edgemap_modes_and_budgets(g in arb_graph(64, 200)) {
        // The CC partition is a fact of the graph: forcing the frontier
        // layer top-down or bottom-up at any worker budget must not
        // change it (and the forest stays spanning-sized).
        let mut runs: Vec<(Vec<u32>, usize)> = Vec::new();
        for &k in &BUDGETS {
            for mode in MODES {
                let run = with_threads(k, || {
                    let opts = CcOpts {
                        ldd: LddOpts { frontier_mode: mode, ..Default::default() },
                        want_forest: true,
                    };
                    let out = ldd_uf_jtb(&g, opts);
                    let forest = out.forest.as_ref().unwrap();
                    prop_assert_eq!(forest.len(), g.n() - out.num_components);
                    Ok((normalize(&out.labels), out.num_components))
                })?;
                runs.push(run);
            }
        }
        for run in &runs {
            prop_assert_eq!(run, &runs[0], "CC diverged across modes/budgets");
        }
    }

    #[test]
    fn bfs_levels_identical_across_edgemap_modes_and_budgets(g in arb_graph(64, 200)) {
        let mut runs = Vec::new();
        for &k in &BUDGETS {
            for mode in MODES {
                runs.push(with_threads(k, || {
                    let mut scratch = BfsScratch::new();
                    bfs_forest_in(&g, mode, &mut scratch);
                    let f = &scratch.forest;
                    (f.level.clone(), f.root.clone(), f.roots.clone(), f.rounds)
                }));
            }
        }
        for run in &runs {
            prop_assert_eq!(run, &runs[0], "BFS diverged across modes/budgets");
        }
    }

    #[test]
    fn ldd_is_valid_at_every_budget_and_reproducible_at_one(g in arb_graph(64, 200)) {
        for &k in &BUDGETS {
            let res = with_threads(k, || ldd(&g, LddOpts::default()));
            check_ldd_valid(&g, &res.cluster, &res.tree_edges);
        }
        // One worker runs fully inline: bit-identical across repeats.
        let a = with_threads(1, || ldd(&g, LddOpts::default()));
        let b = with_threads(1, || ldd(&g, LddOpts::default()));
        prop_assert_eq!(a.cluster, b.cluster);
        prop_assert_eq!(a.tree_edges, b.tree_edges);
        prop_assert_eq!(a.rounds, b.rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Steal-heavy schedules: with the submitting lane pinned busy, every
    /// parallel piece of CC and BFS is serviced through the work-stealing
    /// deques rather than the submitter's own drain loop — and the answers
    /// must still match the sequential budget exactly (BFS facts) or as a
    /// partition (CC labels).
    #[test]
    fn cc_and_bfs_identical_under_forced_steal_schedules(g in arb_graph(64, 200)) {
        let (base_cc, base_bfs) = with_threads(1, || {
            let out = ldd_uf_jtb(&g, CcOpts { want_forest: true, ..Default::default() });
            let f = bfs_forest(&g);
            ((normalize(&out.labels), out.num_components), (f.level, f.root, f.roots, f.rounds))
        });
        for &k in &[2usize, 8] {
            let (cc, bfs) = with_threads(k, || under_busy_lane(|| {
                let out = ldd_uf_jtb(&g, CcOpts { want_forest: true, ..Default::default() });
                let f = bfs_forest(&g);
                ((normalize(&out.labels), out.num_components), (f.level, f.root, f.roots, f.rounds))
            }));
            prop_assert_eq!(&cc, &base_cc, "CC diverged under steals at {} threads", k);
            prop_assert_eq!(&bfs, &base_bfs, "BFS diverged under steals at {} threads", k);
        }
    }
}
