//! Property-based tests for the connectivity substrate, including the
//! filtered variants FAST-BCC's Last-CC depends on: running CC on an
//! *implicit* subgraph (edge predicate) must agree with running it on the
//! explicitly materialized subgraph.

use fastbcc_connectivity::cc::{
    bfs_cc, cc_seq, ldd_uf_jtb, ldd_uf_jtb_filtered, uf_async, uf_async_filtered, CcOpts,
};
use fastbcc_connectivity::ldd::{ldd, LddOpts};
use fastbcc_connectivity::spanning_forest::verify_spanning_forest;
use fastbcc_graph::builder::from_edges;
use fastbcc_graph::stats::cc_labels_seq;
use fastbcc_graph::{Graph, V};
use fastbcc_primitives::rng::hash64_pair;
use proptest::prelude::*;

fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (1..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as V, 0..n as V), 0..mmax)
            .prop_map(move |edges| from_edges(n, &edges))
    })
}

fn same_partition(a: &[u32], b: &[u32]) -> bool {
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for i in 0..a.len() {
        if *fwd.entry(a[i]).or_insert(b[i]) != b[i] || *bwd.entry(b[i]).or_insert(a[i]) != a[i] {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_cc_algorithms_agree(g in arb_graph(64, 200)) {
        let oracle = cc_labels_seq(&g);
        for (name, out) in [
            ("ldd", ldd_uf_jtb(&g, CcOpts { want_forest: true, ..Default::default() })),
            ("uf", uf_async(&g, true)),
            ("bfs", bfs_cc(&g, true)),
            ("seq", cc_seq(&g, true)),
        ] {
            prop_assert!(same_partition(&out.labels, &oracle), "{} partition", name);
            verify_spanning_forest(&g, out.forest.as_ref().unwrap(), out.num_components);
        }
    }

    #[test]
    fn filtered_cc_equals_materialized_subgraph(g in arb_graph(48, 150), seed in any::<u64>()) {
        // Pseudo-random symmetric edge predicate.
        let keep = |u: V, v: V| !hash64_pair(seed, ((u.min(v) as u64) << 32) | u.max(v) as u64).is_multiple_of(3);
        // Materialize the subgraph.
        let kept: Vec<(V, V)> = g.iter_edges().filter(|&(u, v)| keep(u, v)).collect();
        let sub = from_edges(g.n(), &kept);
        let oracle = cc_labels_seq(&sub);

        let a = ldd_uf_jtb_filtered(&g, CcOpts::default(), &keep);
        prop_assert!(same_partition(&a.labels, &oracle), "ldd filtered");
        prop_assert_eq!(a.num_components, fastbcc_graph::stats::cc_count_seq(&sub));

        let b = uf_async_filtered(&g, false, &keep);
        prop_assert!(same_partition(&b.labels, &oracle), "uf filtered");
    }

    #[test]
    fn ldd_is_valid_decomposition(g in arb_graph(48, 150), seed in any::<u64>(), local in any::<bool>()) {
        let res = ldd(&g, LddOpts { beta: None, local_search: local, seed, ..Default::default() });
        let n = g.n();
        let cc = cc_labels_seq(&g);
        for v in 0..n {
            let c = res.cluster[v];
            prop_assert!(c != fastbcc_graph::NONE);
            prop_assert_eq!(res.cluster[c as usize], c);
            prop_assert_eq!(cc[v], cc[c as usize], "cluster crosses CC");
        }
        for &(p, c) in &res.tree_edges {
            prop_assert!(g.has_edge(p, c));
            prop_assert_eq!(res.cluster[p as usize], res.cluster[c as usize]);
        }
        let centers = (0..n).filter(|&v| res.cluster[v] == v as u32).count();
        prop_assert_eq!(res.tree_edges.len(), n - centers);
    }

    #[test]
    fn forest_counts_are_exact(g in arb_graph(64, 150)) {
        let out = ldd_uf_jtb(&g, CcOpts { want_forest: true, ..Default::default() });
        prop_assert_eq!(
            out.forest.as_ref().unwrap().len(),
            g.n() - out.num_components
        );
    }
}
