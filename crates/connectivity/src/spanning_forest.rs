//! Spanning-forest verification and adjacency construction.
//!
//! FAST-BCC's later phases consume the spanning forest produced by
//! *First-CC*. This module provides (a) the test-oracle verifier used
//! across the workspace and (b) a compact forest adjacency structure
//! (CSR over tree edges) for the Euler tour.

use crate::unionfind::SeqUnionFind;
use fastbcc_graph::{Graph, V};

/// Assert that `forest` is a spanning forest of `g` with
/// `g.n() - num_components` edges: every edge a graph edge, acyclic,
/// and connecting exactly the components of `g`. Panics on violation
/// (test helper).
pub fn verify_spanning_forest(g: &Graph, forest: &[(V, V)], num_components: usize) {
    assert_eq!(
        forest.len(),
        g.n() - num_components,
        "forest must have n - #CC edges"
    );
    let mut uf = SeqUnionFind::new(g.n());
    for &(u, v) in forest {
        assert!(g.has_edge(u, v), "forest edge {u}-{v} not in graph");
        assert!(uf.unite(u, v), "forest has a cycle through {u}-{v}");
    }
    // Same partition as the graph: every graph edge stays within one tree.
    for (u, v) in g.iter_edges() {
        assert!(uf.same(u, v), "graph edge {u}-{v} spans two trees");
    }
}

/// Build the forest's own CSR adjacency (undirected, both directions).
/// The Euler tour works on this structure.
///
/// Forest edges are already unique and loop-free, so instead of the
/// general sort-based CSR builder we count degrees, scan, scatter with
/// per-vertex atomic cursors, and sort each (tiny) neighbor list locally —
/// `O(n)` work with small constants, since this sits on FAST-BCC's
/// *Rooting* critical path.
pub fn forest_adjacency(n: usize, forest: &[(V, V)]) -> Graph {
    let mut offsets = Vec::new();
    let mut arcs = Vec::new();
    forest_adjacency_in(n, forest, &mut offsets, &mut arcs);
    Graph::from_raw_parts(offsets, arcs)
}

/// [`forest_adjacency`] writing the raw CSR arrays into caller-owned
/// buffers (cleared first, allocations reused). The caller assembles them
/// with [`Graph::from_raw_parts`] and can reclaim the buffers afterwards
/// via [`Graph::into_raw_parts`] — the engine's repeated-solve path.
pub fn forest_adjacency_in(
    n: usize,
    forest: &[(V, V)],
    offsets_out: &mut Vec<usize>,
    arcs_out: &mut Vec<V>,
) {
    use fastbcc_primitives::par::par_for;
    use fastbcc_primitives::scan::prefix_sums;
    use fastbcc_primitives::slice::{reuse_uninit, UnsafeSlice};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let m = forest.len();
    // Degree histogram.
    offsets_out.clear();
    offsets_out.resize(n + 1, 0);
    let degree = offsets_out;
    {
        // SAFETY: `AtomicUsize` has the same size/alignment as `usize`,
        // and the exclusive borrow of `degree` is handed over wholesale to
        // this atomic view, so no plain accesses race the fetch_adds.
        let deg: &[AtomicUsize] =
            unsafe { &*(degree.as_mut_slice() as *mut [usize] as *const [AtomicUsize]) };
        par_for(m, |i| {
            let (u, v) = forest[i];
            debug_assert_ne!(u, v, "forest edge is a self-loop");
            deg[u as usize].fetch_add(1, Ordering::Relaxed);
            deg[v as usize].fetch_add(1, Ordering::Relaxed);
        });
    }
    let total = prefix_sums(degree);
    debug_assert_eq!(total, 2 * m);
    let offsets = &*degree; // now exclusive offsets, length n+1 with [n] = 2m

    // Scatter both arc directions using atomic cursors.
    let cursors: Vec<AtomicUsize> = offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
    // SAFETY: every slot in 0..2m is written exactly once below.
    unsafe { reuse_uninit(arcs_out, 2 * m) };
    {
        let view = UnsafeSlice::new(arcs_out.as_mut_slice());
        let cur = &cursors;
        par_for(m, |i| {
            let (u, v) = forest[i];
            let pu = cur[u as usize].fetch_add(1, Ordering::Relaxed);
            let pv = cur[v as usize].fetch_add(1, Ordering::Relaxed);
            // SAFETY: fetch_add hands out distinct slots within each
            // vertex's disjoint range.
            unsafe {
                view.write(pu, v);
                view.write(pv, u);
            }
        });
    }
    drop(cursors);

    // Sort each neighbor list (binary-searchable, and the builder
    // invariant other code relies on). Lists are short for forests.
    {
        let view = UnsafeSlice::new(arcs_out.as_mut_slice());
        let offsets_ref = &offsets;
        par_for(n, |v| {
            let (lo, hi) = (offsets_ref[v], offsets_ref[v + 1]);
            if hi > lo {
                // SAFETY: each vertex owns its arc range exclusively.
                let list =
                    unsafe { std::slice::from_raw_parts_mut(view.get_mut(lo) as *mut V, hi - lo) };
                list.sort_unstable();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::generators::classic::*;

    #[test]
    fn verifier_accepts_valid_forest() {
        let g = cycle(5);
        verify_spanning_forest(&g, &[(0, 1), (1, 2), (2, 3), (3, 4)], 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn verifier_rejects_cycle() {
        let g = cycle(3);
        verify_spanning_forest(&g, &[(0, 1), (1, 2), (2, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "not in graph")]
    fn verifier_rejects_non_edge() {
        let g = path(4);
        verify_spanning_forest(&g, &[(0, 1), (1, 2), (0, 3)], 1);
    }

    #[test]
    #[should_panic(expected = "n - #CC")]
    fn verifier_rejects_wrong_count() {
        let g = path(4);
        verify_spanning_forest(&g, &[(0, 1)], 1);
    }

    #[test]
    fn forest_adjacency_roundtrip() {
        let forest = [(0u32, 1u32), (1, 2), (1, 3)];
        let t = forest_adjacency(4, &forest);
        assert_eq!(t.m_undirected(), 3);
        assert_eq!(t.neighbors(1), &[0, 2, 3]);
        assert!(t.is_symmetric());
    }
}
