//! # fastbcc-connectivity
//!
//! Parallel graph connectivity — the substrate FAST-BCC invokes twice
//! (paper Alg. 1: *First-CC* on the input graph, *Last-CC* on the implicit
//! skeleton).
//!
//! The paper's implementation (§5, Thm. 5.1) uses the **LDD-UF-JTB**
//! algorithm from the ConnectIt framework: a low-diameter decomposition
//! (Miller–Peng–Xu) to contract most of the graph in `O(log n)` BFS-style
//! rounds, followed by the lock-free union–find of Jayanti–Tarjan–Boix for
//! the `≤ βm` expected inter-cluster edges. With `β = 1/log n` this gives
//! `O(n + m)` expected work and `O(log³ n)` span w.h.p.
//!
//! Modules:
//!
//! * [`unionfind`] — sequential oracle UF + the concurrent JTB structure;
//! * [`ldd`] — low-diameter decomposition with exponential shifts, with the
//!   hash-bag + local-search optimization of Fig. 6 as an option;
//! * [`cc`] — the composed CC algorithms (`ldd_uf_jtb`, `uf_async`,
//!   `bfs_cc`, `cc_seq`) all returning labels and an optional spanning
//!   forest (the forest is the by-product FAST-BCC's *First-CC* needs);
//! * [`spanning_forest`] — forest verification helpers and the
//!   CC-contiguous relabeling permutation.

pub mod bfs;
pub mod cc;
pub mod ldd;
pub mod spanning_forest;
pub mod unionfind;

pub use bfs::{bfs_forest, bfs_forest_in, BfsForest, BfsScratch};
pub use cc::{bfs_cc, cc_seq, ldd_uf_jtb, uf_async, CcOpts, CcOutput, CcScratch};
pub use ldd::LddScratch;
pub use unionfind::{ConcurrentUnionFind, SeqUnionFind};
