//! Low-diameter decomposition (Miller–Peng–Xu, SPAA'13).
//!
//! A `(β, O(log n / β))` decomposition partitions the vertices into
//! clusters of diameter `O(log n / β)` such that at most `βm` edges cross
//! clusters in expectation. The practical shifted-start implementation
//! (also used by GBBS/ConnectIt) draws a per-vertex shift `δ_v ~ Exp(β)`;
//! an uncovered vertex becomes a new cluster **center** in round `⌊δ_v⌋`,
//! and all clusters grow synchronously one BFS hop per round. Ownership of
//! a contested vertex goes to whichever cluster claims it first (CAS).
//!
//! `O(n + m)` work; `O(log n / β)` rounds w.h.p., each `O(log n)` span.
//!
//! The **hash-bag + local-search** variant (paper §5 & Fig. 6, after Wang
//! et al.) is a granularity control: when the frontier is small relative to
//! the machine, each frontier vertex explores *multiple* hops before the
//! next synchronization, collapsing the many near-empty rounds that
//! dominate large-diameter graphs.
//!
//! Two entry points: [`ldd_filtered`] allocates its outputs (one-shot
//! callers), while [`ldd_filtered_in`] writes the per-vertex cluster and
//! BFS-parent arrays into a caller-owned [`LddScratch`], so repeated solves
//! (the core engine's `Workspace`) reuse the `O(n)` buffers.

use fastbcc_graph::{GraphView, NONE, V};
use fastbcc_primitives::atomics::as_atomic_u32;
use fastbcc_primitives::edgemap::{edge_map, EdgeMapMode, EdgeMapScratch, FrontierOp};
use fastbcc_primitives::hashbag::HashBag;
use fastbcc_primitives::pack::pack_map_into;
use fastbcc_primitives::par::{par_for, par_for_grain};
use fastbcc_primitives::rng::{exponential, hash64_pair};
use fastbcc_primitives::semisort::semisort_by_small_key_into;
use fastbcc_primitives::slice::{reserve_to, reuse_uninit, UnsafeSlice};
use fastbcc_primitives::worker_local::WorkerLocal;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Options controlling the decomposition.
#[derive(Clone, Copy, Debug)]
pub struct LddOpts {
    /// β parameter; `None` uses the paper's `1 / log₂ n`.
    pub beta: Option<f64>,
    /// Enable the hash-bag frontier + multi-hop local search optimization.
    pub local_search: bool,
    /// Randomness seed for the exponential shifts.
    pub seed: u64,
    /// Frontier traversal direction; [`EdgeMapMode::Auto`] switches
    /// between pre-counted sparse expansion and bottom-up dense rounds.
    pub frontier_mode: EdgeMapMode,
}

impl Default for LddOpts {
    fn default() -> Self {
        Self {
            beta: None,
            local_search: true,
            seed: 0x5EED_1DD,
            frontier_mode: EdgeMapMode::Auto,
        }
    }
}

/// Decomposition result (owned-output API).
pub struct LddResult {
    /// Cluster id of every vertex — the id of its center vertex.
    pub cluster: Vec<u32>,
    /// BFS-tree arcs `(parent, child)` of the cluster forest; one entry per
    /// non-center vertex. These are edges of `G`.
    pub tree_edges: Vec<(V, V)>,
    /// Number of synchronous rounds executed.
    pub rounds: usize,
}

/// Reusable per-solve buffers for the decomposition: the `O(n)`
/// cluster/parent arrays, the cluster-forest arc buffer, the frontier
/// double-buffer and start-round grouping buffers, the shared edgeMap
/// expansion scratch, and the lazily created local-search hash bag. Sized
/// on first use and reused verbatim by subsequent calls of any size.
///
/// Every buffer is reserved to a *deterministic* bound (a function of
/// `n`, `m`, and the options — never of the parallel schedule or the
/// worker ceiling), so [`heap_bytes`](Self::heap_bytes) is identical
/// across repeated solves of the same input even though which worker
/// claims which vertex is timing-dependent — the property the engine's
/// warm-solve `fresh_alloc_bytes == 0` guarantee rests on. Unlike the
/// per-worker-arena layout this replaced, nothing here scales with
/// [`fastbcc_primitives::max_workers`] except the constant-size
/// (65-entry) local-search DFS stacks.
#[derive(Default)]
pub struct LddScratch {
    /// Cluster id per vertex (output; valid after a `ldd_filtered_in` call).
    pub cluster: Vec<u32>,
    /// BFS parent per vertex, `NONE` for centers (output).
    pub parent: Vec<u32>,
    /// Cluster-forest arcs `(parent, child)` (output when requested).
    pub tree_edges: Vec<(V, V)>,
    /// Exponential-shift start round per vertex.
    start_round: Vec<u32>,
    /// Identity permutation fed to the start-round semisort; rebuilt only
    /// when the vertex count changes.
    ids: Vec<V>,
    bag: Option<HashBag>,
    /// Current frontier, double-buffered against `next_frontier`.
    frontier: Vec<V>,
    /// The edgeMap output frontier, swapped with `frontier` per round.
    next_frontier: Vec<V>,
    /// Surviving (not already swallowed) centers of the current round.
    centers: Vec<V>,
    /// Vertices grouped by start round, with group offsets (the pooled
    /// output of the start-round semisort).
    by_round: Vec<V>,
    round_offsets: Vec<usize>,
    /// Degree prefix sums, shared claim slots, and dense bitmaps of the
    /// pre-counted frontier expansion.
    em: EdgeMapScratch,
    /// Per-worker DFS stacks for the multi-hop local search (bounded to
    /// [`LOCAL_SEARCH_STACK`] entries each — the one deliberately
    /// per-worker buffer left in the frontier machinery).
    stacks: WorkerLocal<Vec<V>>,
}

/// Upper bound on a local-search DFS stack: the seed vertex plus at most
/// [`LOCAL_SEARCH_BUDGET`] claimed-and-pushed vertices.
const LOCAL_SEARCH_STACK: usize = 1 + LOCAL_SEARCH_BUDGET;

impl LddScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve the per-vertex and frontier-layer buffers for an
    /// `n`-vertex, `m_arcs`-arc input.
    pub fn reserve(&mut self, n: usize, m_arcs: usize) {
        self.cluster.reserve(n);
        self.parent.reserve(n);
        self.tree_edges.reserve(n);
        self.start_round.reserve(n);
        self.ids.reserve(n);
        self.frontier.reserve(n);
        self.next_frontier.reserve(n);
        self.centers.reserve(n);
        self.by_round.reserve(n);
        self.em.reserve(n, m_arcs);
        self.stacks.reserve_each(LOCAL_SEARCH_STACK);
    }

    /// Heap bytes currently reserved by the scratch buffers (capacity, not
    /// length), the frontier-layer staging included — the engine's
    /// fresh-allocation accounting reads this.
    pub fn heap_bytes(&self) -> usize {
        4 * (self.cluster.capacity()
            + self.parent.capacity()
            + self.start_round.capacity()
            + self.ids.capacity()
            + self.frontier.capacity()
            + self.next_frontier.capacity()
            + self.centers.capacity()
            + self.by_round.capacity())
            + 8 * self.round_offsets.capacity()
            + std::mem::size_of::<(V, V)>() * self.tree_edges.capacity()
            + self.bag.as_ref().map_or(0, HashBag::bytes)
            + self.arena_bytes()
    }

    /// Heap bytes held by the frontier-staging buffers alone: the shared
    /// edgeMap scratch (degree prefix sums, claim slots, dense bitmaps)
    /// plus the bounded per-worker local-search stacks.
    pub fn arena_bytes(&self) -> usize {
        self.em.heap_bytes() + self.stacks.heap_bytes()
    }

    /// Dense (bottom-up) frontier rounds run since the last solve started.
    pub fn dense_rounds(&self) -> usize {
        self.em.dense_rounds()
    }
}

/// Frontier size below which local search kicks in. The optimization is a
/// granularity control ("saturate all threads with sufficient work", §5),
/// so the threshold scales with the worker count: large frontiers already
/// saturate the machine and go through the per-worker-arena hop path.
fn local_search_threshold() -> usize {
    (256 * fastbcc_primitives::par::num_threads()).max(512)
}
/// Max vertices a single frontier vertex may claim in one local search.
const LOCAL_SEARCH_BUDGET: usize = 64;

/// Compute the decomposition of `g` (any [`GraphView`] backend).
pub fn ldd<G: GraphView>(g: &G, opts: LddOpts) -> LddResult {
    ldd_filtered(g, opts, &|_, _| true)
}

/// Compute the decomposition of the subgraph of `g` whose edges satisfy
/// `filter` (a symmetric predicate). This is how FAST-BCC's *Last-CC* runs
/// connectivity on the **implicit** skeleton without materializing it —
/// the `O(n)`-auxiliary-space property of the paper.
pub fn ldd_filtered<G, F>(g: &G, opts: LddOpts, filter: &F) -> LddResult
where
    G: GraphView,
    F: Fn(V, V) -> bool + Sync,
{
    let mut scratch = LddScratch::new();
    let rounds = ldd_filtered_in(g, opts, filter, &mut scratch, true);
    LddResult {
        cluster: scratch.cluster,
        tree_edges: scratch.tree_edges,
        rounds,
    }
}

/// [`ldd_filtered`] writing into caller-owned scratch. Returns the round
/// count; `scratch.cluster` / `scratch.parent` hold the decomposition and
/// `scratch.tree_edges` the cluster-forest arcs (when `collect_tree_edges`;
/// skipping the extraction saves a pack pass for pure-CC callers).
pub fn ldd_filtered_in<G, F>(
    g: &G,
    opts: LddOpts,
    filter: &F,
    scratch: &mut LddScratch,
    collect_tree_edges: bool,
) -> usize
where
    G: GraphView,
    F: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    scratch.cluster.clear();
    scratch.cluster.resize(n, NONE);
    scratch.parent.clear();
    scratch.parent.resize(n, NONE);
    scratch.tree_edges.clear();
    if n == 0 {
        return 0;
    }
    let beta = opts
        .beta
        .unwrap_or_else(|| 1.0 / ((n.max(4) as f64).log2()));

    // Shifted start rounds, capped so the bucket array stays O(n): the
    // probability of an Exp(β) sample exceeding 4 ln(n)/β is n^{-4}.
    let cap = ((4.0 * (n.max(2) as f64).ln() / beta).ceil() as usize).max(1);
    // SAFETY: every slot in 0..n is written by the scatter below.
    unsafe { reuse_uninit(&mut scratch.start_round, n) };
    {
        let view = UnsafeSlice::new(scratch.start_round.as_mut_slice());
        fastbcc_primitives::par::par_for(n, |v| {
            let e = exponential(hash64_pair(opts.seed, v as u64), beta);
            // SAFETY: disjoint writes.
            unsafe { view.write(v, (e as usize).min(cap) as u32) };
        });
    }
    // Group vertices by start round for O(1) center injection per round.
    // The identity array only needs rebuilding when `n` changes.
    if scratch.ids.len() != n {
        // SAFETY: fully written below.
        unsafe { reuse_uninit(&mut scratch.ids, n) };
        let view = UnsafeSlice::new(scratch.ids.as_mut_slice());
        par_for(n, |v| {
            // SAFETY: disjoint writes.
            unsafe { view.write(v, v as V) };
        });
    }
    {
        let LddScratch {
            ids,
            start_round,
            by_round,
            round_offsets,
            ..
        } = &mut *scratch;
        semisort_by_small_key_into(
            ids,
            cap + 1,
            |&v| start_round[v as usize] as usize,
            by_round,
            round_offsets,
        );
    }

    // Pre-size the frontier machinery to its deterministic envelope: a
    // vertex enters the frontier at most once ever (entering requires
    // winning its claim), so the frontier double-buffer is bounded by `n`
    // — and by the (deterministic) largest start-round group for the
    // center pack. The edgeMap scratch is bounded by `(n, m)` alone (the
    // shared claim-slot buffer never exceeds the dense-switch threshold
    // in `Auto` mode), which is what keeps `heap_bytes()` reproducible
    // and warm solves allocation-free at any worker budget.
    reserve_to(&mut scratch.frontier, n);
    reserve_to(&mut scratch.next_frontier, n);
    let max_group = scratch
        .round_offsets
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(0);
    reserve_to(&mut scratch.centers, max_group);
    scratch.em.reserve(n, g.m_arcs());
    scratch.em.reset_stats();
    scratch.stacks.reserve_each(LOCAL_SEARCH_STACK);
    if collect_tree_edges {
        reserve_to(&mut scratch.tree_edges, n);
    }

    let LddScratch {
        cluster,
        parent,
        tree_edges,
        bag: bag_slot,
        frontier,
        next_frontier,
        centers,
        by_round,
        round_offsets,
        em,
        stacks,
        ..
    } = &mut *scratch;
    let cluster: &[AtomicU32] = as_atomic_u32(cluster);
    let parent_a: &[AtomicU32] = as_atomic_u32(parent);
    // Coverage is tallied once per round at the (sequential) round barrier,
    // not with a shared per-claim atomic — one fetch_add per claimed vertex
    // would serialize the frontier expansion on the counter's cache line.
    let mut covered = 0usize;

    frontier.clear();
    // The bag lives in the scratch so repeat solves reuse its chunks; it is
    // allocated lazily on first use and sized for the boundary of a small
    // frontier only — when local search never engages (low diameter
    // graphs), its cost is zero.
    let bag_capacity = (local_search_threshold() * LOCAL_SEARCH_BUDGET).min(n.max(16));
    let mut rounds = 0usize;
    let mut r = 0usize;

    while covered < n || !frontier.is_empty() {
        // Inject this round's centers (those not already swallowed). No
        // expansion runs concurrently with injection, so plain loads/stores
        // suffice here.
        if r <= cap {
            let group = &by_round[round_offsets[r]..round_offsets[r + 1]];
            pack_map_into(
                group.len(),
                |i| cluster[group[i] as usize].load(Ordering::Relaxed) == NONE,
                |i| group[i],
                centers,
            );
            par_for(centers.len(), |i| {
                let v = centers[i];
                cluster[v as usize].store(v, Ordering::Relaxed);
            });
            covered += centers.len();
            frontier.extend_from_slice(centers);
        }
        r += 1;

        if frontier.is_empty() {
            // Nothing to grow; skip to the next round with pending centers.
            continue;
        }
        rounds += 1;

        // Expand. Large frontiers go through the per-worker-arena path
        // (one hop); small frontiers — where per-round scheduling overhead
        // dominates — use multi-hop local search with the hash bag
        // collecting the new boundary. The `rounds > 32` gate restricts the
        // optimization to the large-diameter regime it exists for:
        // low-diameter graphs finish in a handful of rounds and would only
        // pay the bag overhead.
        let use_local = frontier.len() < local_search_threshold() && rounds > 32;
        if opts.local_search && use_local {
            // A pooled bag from an earlier (smaller) solve may be under the
            // capacity this call computed; `HashBag` cannot grow after
            // construction (insert panics when every chunk is exhausted), so
            // rebuild it whenever it no longer fits. The bag is empty
            // between rounds (`extract_all_into` drains it), so replacement
            // never loses entries.
            let too_small = !matches!(&*bag_slot, Some(b) if b.fits(bag_capacity));
            if too_small {
                *bag_slot = Some(HashBag::with_capacity(bag_capacity));
            }
            let bag = bag_slot.as_mut().expect("bag ensured above");
            {
                let bag_ref = &*bag;
                let fr: &[V] = frontier;
                let stacks_ref = &*stacks;
                // One piece per seed: a local search runs a whole bounded
                // DFS, so per-index scheduling is already coarse enough.
                // Claims are tallied per *search* (not per claim), and the
                // DFS stack comes from the worker's arena.
                let claimed = &AtomicUsize::new(0);
                par_for_grain(fr.len(), 1, |i| {
                    let c = stacks_ref.with(|stack| {
                        expand_local(g, fr[i], cluster, parent_a, bag_ref, filter, stack)
                    });
                    claimed.fetch_add(c, Ordering::Relaxed);
                });
                covered += claimed.load(Ordering::Relaxed);
            }
            bag.extract_all_into(frontier);
        } else {
            // Pre-counted edgeMap expansion: claims land in prefix-summed
            // slots of one shared buffer (degree-balanced blocks), or —
            // when the frontier's degree sum crosses the density
            // threshold — in a CAS-free bottom-up sweep over a bitmap
            // frontier. No per-worker staging, no worker-id merge.
            let op = LddClaim {
                cluster,
                parent: parent_a,
                filter,
            };
            edge_map(
                g,
                frontier,
                n - covered,
                &op,
                opts.frontier_mode,
                em,
                next_frontier,
            );
            std::mem::swap(frontier, next_frontier);
            covered += frontier.len();
        }
    }

    // Quiescent now: read the plain arrays back from the scratch.
    if collect_tree_edges {
        let parent_now: &[u32] = parent;
        pack_map_into(
            n,
            |v| parent_now[v] != NONE,
            |v| (parent_now[v], v as V),
            tree_edges,
        );
    }
    rounds
}

/// The LDD claim protocol over the shared `cluster`/`parent` atomics:
/// a vertex joins the claiming endpoint's cluster.
struct LddClaim<'a, F> {
    cluster: &'a [AtomicU32],
    parent: &'a [AtomicU32],
    filter: &'a F,
}

impl<F: Fn(V, V) -> bool + Sync> FrontierOp for LddClaim<'_, F> {
    fn try_claim(&self, u: V, w: V) -> bool {
        if !(self.filter)(u, w) || self.cluster[w as usize].load(Ordering::Relaxed) != NONE {
            return false;
        }
        let cu = self.cluster[u as usize].load(Ordering::Relaxed);
        if self.cluster[w as usize]
            .compare_exchange(NONE, cu, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.parent[w as usize].store(u, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn claim_unique(&self, u: V, w: V) -> bool {
        // Dense rounds hand each vertex to exactly one task, so the claim
        // needs no CAS — the direction optimization's second win.
        if !(self.filter)(u, w) || self.cluster[w as usize].load(Ordering::Relaxed) != NONE {
            return false;
        }
        let cu = self.cluster[u as usize].load(Ordering::Relaxed);
        self.cluster[w as usize].store(cu, Ordering::Relaxed);
        self.parent[w as usize].store(u, Ordering::Relaxed);
        true
    }

    fn wants(&self, w: V) -> bool {
        self.cluster[w as usize].load(Ordering::Relaxed) == NONE
    }
}

/// Bounded multi-hop local search from `u`: claims up to
/// [`LOCAL_SEARCH_BUDGET`] vertices for `u`'s cluster, pushing the
/// unexplored boundary into `bag`. The DFS `stack` is the calling
/// worker's arena-owned buffer (entered empty, left empty), so repeated
/// searches never touch the allocator.
fn expand_local<G: GraphView, F: Fn(V, V) -> bool + Sync>(
    g: &G,
    u: V,
    cluster: &[AtomicU32],
    parent: &[AtomicU32],
    bag: &HashBag,
    filter: &F,
    stack: &mut Vec<V>,
) -> usize {
    let cu = cluster[u as usize].load(Ordering::Relaxed);
    debug_assert!(stack.is_empty());
    stack.push(u);
    let mut budget = LOCAL_SEARCH_BUDGET;
    let mut claims = 0;
    while let Some(x) = stack.pop() {
        g.for_neighbors(x, |w| {
            if filter(x, w)
                && cluster[w as usize].load(Ordering::Relaxed) == NONE
                && cluster[w as usize]
                    .compare_exchange(NONE, cu, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                parent[w as usize].store(x, Ordering::Relaxed);
                claims += 1;
                if budget > 0 {
                    budget -= 1;
                    stack.push(w);
                } else {
                    bag.insert(w);
                }
            }
        });
    }
    claims
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, rmat};
    use fastbcc_graph::stats::cc_labels_seq;
    use fastbcc_graph::Graph;

    fn check_valid_decomposition(g: &Graph, res: &LddResult) {
        let n = g.n();
        // Every vertex covered.
        assert!(res.cluster.iter().all(|&c| c != NONE));
        // Cluster id is a center that belongs to itself.
        for v in 0..n {
            let c = res.cluster[v];
            assert_eq!(res.cluster[c as usize], c, "center of {v} not self-owned");
        }
        // Tree arcs are real edges, child's cluster equals parent's cluster.
        for &(p, c) in &res.tree_edges {
            assert!(g.has_edge(p, c), "tree edge {p}-{c} not in graph");
            assert_eq!(res.cluster[p as usize], res.cluster[c as usize]);
        }
        // Exactly one tree arc per non-center vertex.
        let centers = (0..n).filter(|&v| res.cluster[v] == v as u32).count();
        assert_eq!(res.tree_edges.len(), n - centers);
        // Clusters never span different CCs.
        let cc = cc_labels_seq(g);
        for v in 0..n {
            assert_eq!(cc[v], cc[res.cluster[v] as usize]);
        }
    }

    #[test]
    fn covers_simple_graphs() {
        for g in [path(50), cycle(64), star(40), complete(20), windmill(7)] {
            for local in [false, true] {
                let res = ldd(
                    &g,
                    LddOpts {
                        local_search: local,
                        ..Default::default()
                    },
                );
                check_valid_decomposition(&g, &res);
            }
        }
    }

    #[test]
    fn covers_grid_and_rmat() {
        let g = grid2d(40, 40, true);
        let res = ldd(&g, LddOpts::default());
        check_valid_decomposition(&g, &res);

        let g = rmat(11, 10_000, 3);
        let res = ldd(&g, LddOpts::default());
        check_valid_decomposition(&g, &res);
    }

    #[test]
    fn isolated_vertices_become_centers() {
        let g = Graph::empty(100);
        let res = ldd(&g, LddOpts::default());
        assert!(res.tree_edges.is_empty());
        for v in 0..100 {
            assert_eq!(res.cluster[v], v as u32);
        }
    }

    #[test]
    fn beta_controls_cluster_count() {
        // Higher beta => more centers => more, smaller clusters.
        let g = grid2d(60, 60, false);
        let low = ldd(
            &g,
            LddOpts {
                beta: Some(0.02),
                seed: 1,
                local_search: false,
                ..Default::default()
            },
        );
        let high = ldd(
            &g,
            LddOpts {
                beta: Some(0.9),
                seed: 1,
                local_search: false,
                ..Default::default()
            },
        );
        let count = |r: &LddResult| (0..g.n()).filter(|&v| r.cluster[v] == v as u32).count();
        assert!(
            count(&high) > 2 * count(&low),
            "beta=0.9 gave {} clusters vs beta=0.02 {}",
            count(&high),
            count(&low)
        );
    }

    #[test]
    fn local_search_reduces_rounds_on_chain() {
        // β small enough that cluster radii exceed the 32-round engagement
        // gate (the gate exists so low-diameter graphs never pay for the
        // optimization).
        let g = path(100_000);
        let plain = ldd(
            &g,
            LddOpts {
                beta: Some(0.01),
                local_search: false,
                seed: 2,
                ..Default::default()
            },
        );
        let opt = ldd(
            &g,
            LddOpts {
                beta: Some(0.01),
                local_search: true,
                seed: 2,
                ..Default::default()
            },
        );
        check_valid_decomposition(&g, &plain);
        check_valid_decomposition(&g, &opt);
        assert!(
            plain.rounds > 32,
            "test premise: plain rounds {} > gate",
            plain.rounds
        );
        assert!(
            opt.rounds < plain.rounds,
            "local search did not reduce rounds: {} vs {}",
            opt.rounds,
            plain.rounds
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let res = ldd(&g, LddOpts::default());
        assert_eq!(res.cluster.len(), 0);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn scratch_reuse_produces_valid_decompositions() {
        // One scratch across differently-sized graphs, in both directions
        // (grow and shrink), with tree-edge collection toggled.
        let mut scratch = LddScratch::new();
        let graphs = [grid2d(30, 30, false), path(2_000), complete(25), path(50)];
        for (i, g) in graphs.iter().enumerate() {
            let collect = i % 2 == 0;
            let rounds =
                ldd_filtered_in(g, LddOpts::default(), &|_, _| true, &mut scratch, collect);
            assert!(rounds > 0 || g.m() == 0);
            assert_eq!(scratch.cluster.len(), g.n());
            if collect {
                let res = LddResult {
                    cluster: scratch.cluster.clone(),
                    tree_edges: scratch.tree_edges.clone(),
                    rounds,
                };
                check_valid_decomposition(g, &res);
            }
        }
    }

    #[test]
    fn pooled_bag_regrows_for_larger_local_search() {
        // First engage local search on a small graph (small pooled bag),
        // then on a much larger one whose computed bag capacity exceeds it:
        // the scratch must rebuild the bag instead of panicking on
        // "hash bag capacity exhausted".
        let mut scratch = LddScratch::new();
        let small_opts = LddOpts {
            beta: Some(0.01),
            local_search: true,
            seed: 2,
            ..Default::default()
        };
        ldd_filtered_in(&path(5_000), small_opts, &|_, _| true, &mut scratch, true);
        let big = path(150_000);
        let big_opts = LddOpts {
            beta: Some(0.005),
            local_search: true,
            seed: 2,
            ..Default::default()
        };
        let rounds = ldd_filtered_in(&big, big_opts, &|_, _| true, &mut scratch, true);
        assert!(rounds > 32, "test premise: local search must engage");
        let res = LddResult {
            cluster: scratch.cluster.clone(),
            tree_edges: scratch.tree_edges.clone(),
            rounds,
        };
        check_valid_decomposition(&big, &res);
    }

    #[test]
    fn scratch_capacity_is_stable_across_identical_runs() {
        let g = grid2d(50, 50, false);
        let mut scratch = LddScratch::new();
        ldd_filtered_in(&g, LddOpts::default(), &|_, _| true, &mut scratch, true);
        let bytes = scratch.heap_bytes();
        assert!(bytes >= 8 * g.n());
        for _ in 0..3 {
            ldd_filtered_in(&g, LddOpts::default(), &|_, _| true, &mut scratch, true);
            assert_eq!(scratch.heap_bytes(), bytes, "scratch buffers reallocated");
        }
    }

    #[test]
    fn forced_sparse_and_dense_agree_on_zoo() {
        // With local search off, the per-round frontier *sets* are a
        // schedule-independent fact of the graph, so the round count must
        // match between top-down and bottom-up traversal; cluster
        // ownership may differ (different claim winners) but both must be
        // valid decompositions.
        for g in [
            path(300),
            cycle(64),
            star(40),
            complete(20),
            windmill(7),
            grid2d(25, 25, true),
            rmat(9, 2_000, 13),
        ] {
            let run = |mode| {
                let res = ldd(
                    &g,
                    LddOpts {
                        local_search: false,
                        frontier_mode: mode,
                        ..Default::default()
                    },
                );
                check_valid_decomposition(&g, &res);
                res.rounds
            };
            let sparse = run(EdgeMapMode::Sparse);
            let dense = run(EdgeMapMode::Dense);
            let auto = run(EdgeMapMode::Auto);
            assert_eq!(sparse, dense, "round counts diverged on n={}", g.n());
            assert_eq!(sparse, auto, "auto diverged on n={}", g.n());
        }
    }

    #[test]
    fn auto_mode_runs_dense_rounds_on_dense_graphs() {
        // A clique's first expansion already exceeds the m/20 threshold.
        let g = complete(60);
        let mut scratch = LddScratch::new();
        ldd_filtered_in(&g, LddOpts::default(), &|_, _| true, &mut scratch, true);
        assert!(
            scratch.dense_rounds() > 0,
            "clique expansion stayed top-down"
        );
        // The counter resets per solve, and a trivial solve runs no dense
        // rounds at all.
        ldd_filtered_in(
            &Graph::empty(64),
            LddOpts::default(),
            &|_, _| true,
            &mut scratch,
            true,
        );
        assert_eq!(scratch.dense_rounds(), 0, "counter must reset per solve");
    }
}
