//! Union–find structures.
//!
//! [`SeqUnionFind`] is the textbook sequential structure (union by rank,
//! path halving) used as test oracle and inside the sequential baselines.
//!
//! [`ConcurrentUnionFind`] is the lock-free structure of Jayanti, Tarjan
//! and Boix-Adserà (PODC'19) that LDD-UF-JTB requires (paper §5): parents
//! stored in a single atomic array, `find` performs CAS **path splitting**
//! (the "try-split" of their Find-Two-Try-Split strategy), and `unite`
//! links by a random priority order so adversarial inputs cannot build long
//! chains. Each operation is `O(log n)` expected amortized; in the
//! binary fork–join translation the paper uses, processing `l` edges costs
//! `O(l log n)` work and `O(log² n)` span — dominated by the LDD bounds.

use fastbcc_primitives::rng::hash64;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential union–find with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct SeqUnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl SeqUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Representative of `u`'s set.
    pub fn find(&mut self, mut u: u32) -> u32 {
        while self.parent[u as usize] != u {
            let p = self.parent[u as usize];
            let gp = self.parent[p as usize];
            self.parent[u as usize] = gp; // path halving
            u = gp;
        }
        u
    }

    /// Merge the sets of `u` and `v`; true if they were distinct.
    pub fn unite(&mut self, u: u32, v: u32) -> bool {
        let (mut ru, mut rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        if self.rank[ru as usize] < self.rank[rv as usize] {
            std::mem::swap(&mut ru, &mut rv);
        }
        self.parent[rv as usize] = ru;
        if self.rank[ru as usize] == self.rank[rv as usize] {
            self.rank[ru as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Current number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// True if `u` and `v` share a set.
    pub fn same(&mut self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }
}

/// Lock-free concurrent union–find (Jayanti–Tarjan–Boix-Adserà).
///
/// Safe for fully concurrent `find` / `unite` / `same` from any number of
/// threads. Linking order is randomized by hashing ids, which (per JTB's
/// analysis) bounds tree heights at `O(log n)` w.h.p. even against
/// adversarial union orders.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl Default for ConcurrentUnionFind {
    /// An empty structure; size it with [`Self::reset`].
    fn default() -> Self {
        Self { parent: Vec::new() }
    }
}

impl ConcurrentUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Reset to `n` singleton sets, reusing the existing allocation when
    /// its capacity suffices (the scratch-pooled engine path).
    ///
    /// Re-initialization runs in parallel over the retained prefix; only
    /// genuinely new tail elements (growth beyond the previous length) are
    /// pushed sequentially, so evolving-graph workloads with fluctuating
    /// `n` stay parallel after the high-water mark is reached.
    pub fn reset(&mut self, n: usize) {
        let old = self.parent.len().min(n);
        self.parent.truncate(n);
        if self.parent.len() < n {
            let grow_from = self.parent.len() as u32;
            self.parent.reserve(n - self.parent.len());
            self.parent
                .extend((grow_from..n as u32).map(AtomicU32::new));
        }
        let parent = &self.parent;
        fastbcc_primitives::par::par_for(old, |v| {
            parent[v].store(v as u32, Ordering::Relaxed);
        });
    }

    /// Heap bytes currently reserved (capacity, not length) — used by the
    /// engine's fresh-allocation accounting.
    pub fn heap_bytes(&self) -> usize {
        self.parent.capacity() * 4
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Priority used for linking: random total order over ids.
    #[inline]
    fn prio(u: u32) -> u64 {
        // Mix then append the id to break hash ties deterministically.
        (hash64(u as u64) << 32) | u as u64
    }

    /// Representative of `u`'s set, with CAS path splitting.
    #[inline]
    pub fn find(&self, mut u: u32) -> u32 {
        loop {
            let p = self.parent[u as usize].load(Ordering::Relaxed);
            if p == u {
                return u;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp == p {
                return p;
            }
            // try-split: shortcut u -> gp (harmless if it races).
            let _ = self.parent[u as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            u = gp;
        }
    }

    /// Merge the sets of `u` and `v`; true if this call performed the link.
    pub fn unite(&self, u: u32, v: u32) -> bool {
        let mut ru = self.find(u);
        let mut rv = self.find(v);
        loop {
            if ru == rv {
                return false;
            }
            // Link lower priority under higher (randomized linking).
            let (lo, hi) = if Self::prio(ru) < Self::prio(rv) {
                (ru, rv)
            } else {
                (rv, ru)
            };
            if self.parent[lo as usize]
                .compare_exchange(lo, hi, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
            // Someone moved under us; refresh roots and retry.
            ru = self.find(lo);
            rv = self.find(hi);
        }
    }

    /// True if `u` and `v` currently share a set (exact under quiescence;
    /// during concurrent unites it may miss in-flight merges, which every
    /// caller in this repo retries via `unite`).
    pub fn same(&self, u: u32, v: u32) -> bool {
        loop {
            let ru = self.find(u);
            let rv = self.find(v);
            if ru == rv {
                return true;
            }
            // ru is a root snapshot; if it is still a root, the answer was
            // consistent at that instant.
            if self.parent[ru as usize].load(Ordering::Relaxed) == ru {
                return false;
            }
        }
    }

    /// Flatten to final labels: `label[v] = find(v)` for all `v`, in parallel.
    /// Call after all unites are done (quiescent).
    pub fn labels(&self) -> Vec<u32> {
        let n = self.parent.len();
        // SAFETY: the loop below writes every index `0..n` before use.
        let mut out: Vec<u32> = unsafe { fastbcc_primitives::slice::uninit_vec(n) };
        {
            let view = fastbcc_primitives::slice::UnsafeSlice::new(&mut out);
            fastbcc_primitives::par::par_for(n, |v| {
                // SAFETY: disjoint writes.
                unsafe { view.write(v, self.find(v as u32)) };
            });
        }
        out
    }

    /// [`Self::labels`] into a caller-provided buffer, reusing its
    /// allocation (quiescent).
    pub fn labels_into(&self, out: &mut Vec<u32>) {
        let n = self.parent.len();
        // SAFETY: every slot is written exactly once below.
        unsafe { fastbcc_primitives::slice::reuse_uninit(out, n) };
        let view = fastbcc_primitives::slice::UnsafeSlice::new(out.as_mut_slice());
        fastbcc_primitives::par::par_for(n, |v| {
            // SAFETY: disjoint writes.
            unsafe { view.write(v, self.find(v as u32)) };
        });
    }

    /// Number of distinct roots (quiescent).
    pub fn set_count(&self) -> usize {
        fastbcc_primitives::reduce::count(self.parent.len(), |v| {
            self.parent[v].load(Ordering::Relaxed) == v as u32
        })
    }

    /// Bytes of auxiliary memory.
    pub fn bytes(&self) -> usize {
        self.parent.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_primitives::par::par_for;
    use fastbcc_primitives::rng::Rng;

    #[test]
    fn seq_uf_basic() {
        let mut uf = SeqUnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.unite(0, 1));
        assert!(!uf.unite(1, 0));
        assert!(uf.unite(2, 3));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.unite(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.set_count(), 2); // {0,1,2,3}, {4}
    }

    #[test]
    fn concurrent_matches_sequential_on_random_unions() {
        let n = 20_000usize;
        let mut r = Rng::new(42);
        let pairs: Vec<(u32, u32)> = (0..3 * n)
            .map(|_| (r.index(n) as u32, r.index(n) as u32))
            .collect();
        let cuf = ConcurrentUnionFind::new(n);
        par_for(pairs.len(), |i| {
            cuf.unite(pairs[i].0, pairs[i].1);
        });
        let mut suf = SeqUnionFind::new(n);
        for &(u, v) in &pairs {
            suf.unite(u, v);
        }
        assert_eq!(cuf.set_count(), suf.set_count());
        // Partitions must agree exactly.
        let labels = cuf.labels();
        for &(u, v) in &pairs {
            assert_eq!(labels[u as usize] == labels[v as usize], suf.same(u, v));
        }
        // Random non-pair probes too.
        for _ in 0..5000 {
            let (u, v) = (r.index(n) as u32, r.index(n) as u32);
            assert_eq!(labels[u as usize] == labels[v as usize], suf.same(u, v));
        }
    }

    #[test]
    fn concurrent_unite_returns_true_exactly_n_minus_components_times() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 10_000usize;
        // A cycle: exactly n-1 successful unions despite n edges.
        let wins = AtomicUsize::new(0);
        let cuf = ConcurrentUnionFind::new(n);
        par_for(n, |i| {
            if cuf.unite(i as u32, ((i + 1) % n) as u32) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), n - 1);
        assert_eq!(cuf.set_count(), 1);
    }

    #[test]
    fn labels_are_representatives() {
        let cuf = ConcurrentUnionFind::new(6);
        cuf.unite(0, 1);
        cuf.unite(2, 3);
        cuf.unite(3, 4);
        let l = cuf.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[2], l[3]);
        assert_eq!(l[3], l[4]);
        assert_ne!(l[0], l[2]);
        assert_eq!(l[5], 5);
        // Labels are fixed points.
        for &x in &l {
            assert_eq!(cuf.find(x), x);
        }
    }

    #[test]
    fn stress_many_threads_one_component() {
        // All elements merged into one set from many random orders.
        let n = 50_000usize;
        let cuf = ConcurrentUnionFind::new(n);
        par_for(n - 1, |i| {
            // Star-ish + chain mix to stress linking.
            cuf.unite(i as u32, (i + 1) as u32);
            cuf.unite(0, (hash64(i as u64) % n as u64) as u32);
        });
        assert_eq!(cuf.set_count(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let cuf = ConcurrentUnionFind::new(0);
        assert!(cuf.is_empty());
        assert_eq!(cuf.set_count(), 0);
        let cuf = ConcurrentUnionFind::new(1);
        assert_eq!(cuf.find(0), 0);
        assert_eq!(cuf.set_count(), 1);
    }
}
