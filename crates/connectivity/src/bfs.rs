//! Frontier-synchronous parallel BFS.
//!
//! Not used by FAST-BCC itself (that is the whole point of the paper), but
//! required by the BFS-skeleton baselines (GBBS-style, SM'14-style) whose
//! span is `O(diam(G) · log n)`. Exposed here because it shares the
//! claim-by-CAS frontier machinery with the LDD: both run on the shared
//! [`fastbcc_primitives::edgemap`] layer, so level expansion is
//! pre-counted (one shared `O(frontier degree)` claim buffer,
//! degree-balanced blocks) and switches to a bottom-up bitmap sweep on
//! dense frontiers.
//!
//! Two entry points: [`bfs_forest`] allocates its outputs (one-shot
//! callers), while [`bfs_forest_in`] writes into a caller-owned
//! [`BfsScratch`], so repeated solves (warm baseline engines, benchmark
//! loops) reuse the three `O(n)` output arrays and the frontier staging
//! instead of reallocating them every call.

use fastbcc_graph::{GraphView, NONE, V};
use fastbcc_primitives::atomics::as_atomic_u32;
use fastbcc_primitives::edgemap::{edge_map, EdgeMapMode, EdgeMapScratch, FrontierOp};
use fastbcc_primitives::slice::reserve_to;
use std::sync::atomic::{AtomicU32, Ordering};

/// A rooted BFS forest over all components.
#[derive(Default)]
pub struct BfsForest {
    /// Parent of each vertex in its BFS tree; `NONE` for roots.
    pub parent: Vec<V>,
    /// BFS level (distance from the root of its tree).
    pub level: Vec<u32>,
    /// The root of each vertex's tree (doubles as a CC label).
    pub root: Vec<V>,
    /// One root per component, in discovery order.
    pub roots: Vec<V>,
    /// Total synchronous rounds across all components (the span driver).
    pub rounds: usize,
}

/// Reusable buffers for [`bfs_forest_in`]: the forest's three `O(n)`
/// output arrays, the frontier double-buffer, and the shared edgeMap
/// expansion scratch. Capacities are deterministic in `(n, m)`, so warm
/// re-solves of one input never touch the allocator.
#[derive(Default)]
pub struct BfsScratch {
    /// The forest of the most recent [`bfs_forest_in`] call.
    pub forest: BfsForest,
    frontier: Vec<V>,
    next_frontier: Vec<V>,
    em: EdgeMapScratch,
}

impl BfsScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve for an `n`-vertex / `m_arcs`-arc input.
    pub fn reserve(&mut self, n: usize, m_arcs: usize) {
        self.forest.parent.reserve(n);
        self.forest.level.reserve(n);
        self.forest.root.reserve(n);
        self.frontier.reserve(n);
        self.next_frontier.reserve(n);
        self.em.reserve(n, m_arcs);
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        4 * (self.forest.parent.capacity()
            + self.forest.level.capacity()
            + self.forest.root.capacity()
            + self.forest.roots.capacity()
            + self.frontier.capacity()
            + self.next_frontier.capacity())
            + self.em.heap_bytes()
    }

    /// Dense (bottom-up) rounds run by the most recent solve.
    pub fn dense_rounds(&self) -> usize {
        self.em.dense_rounds()
    }
}

/// The BFS claim protocol: first visit wins `root`/`parent`/`level`.
struct BfsClaim<'a> {
    parent: &'a [AtomicU32],
    level: &'a [AtomicU32],
    root: &'a [AtomicU32],
    src: V,
    depth: u32,
}

impl FrontierOp for BfsClaim<'_> {
    fn try_claim(&self, u: V, w: V) -> bool {
        if self.root[w as usize].load(Ordering::Relaxed) != NONE {
            return false;
        }
        if self.root[w as usize]
            .compare_exchange(NONE, self.src, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.parent[w as usize].store(u, Ordering::Relaxed);
            self.level[w as usize].store(self.depth, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn claim_unique(&self, u: V, w: V) -> bool {
        // Dense rounds own each vertex exclusively: plain stores suffice.
        if self.root[w as usize].load(Ordering::Relaxed) != NONE {
            return false;
        }
        self.root[w as usize].store(self.src, Ordering::Relaxed);
        self.parent[w as usize].store(u, Ordering::Relaxed);
        self.level[w as usize].store(self.depth, Ordering::Relaxed);
        true
    }

    fn wants(&self, w: V) -> bool {
        self.root[w as usize].load(Ordering::Relaxed) == NONE
    }
}

/// Build a BFS forest covering every vertex. Each component's BFS is
/// frontier-parallel; components are processed one after another (as in
/// the BFS-based BCC implementations the paper compares against). One-shot
/// wrapper over [`bfs_forest_in`].
pub fn bfs_forest<G: GraphView>(g: &G) -> BfsForest {
    let mut scratch = BfsScratch::new();
    bfs_forest_in(g, EdgeMapMode::Auto, &mut scratch);
    std::mem::take(&mut scratch.forest)
}

/// [`bfs_forest`] writing into caller-owned scratch (`scratch.forest`
/// holds the result afterwards). `mode` forces a traversal direction;
/// [`EdgeMapMode::Auto`] applies the density threshold per round.
pub fn bfs_forest_in<G: GraphView>(g: &G, mode: EdgeMapMode, scratch: &mut BfsScratch) {
    let n = g.n();
    scratch.em.reserve(n, g.m_arcs());
    scratch.em.reset_stats();
    reserve_to(&mut scratch.frontier, n);
    reserve_to(&mut scratch.next_frontier, n);
    let BfsScratch {
        forest,
        frontier,
        next_frontier,
        em,
    } = scratch;
    forest.parent.clear();
    forest.parent.resize(n, NONE);
    forest.level.clear();
    forest.level.resize(n, NONE);
    forest.root.clear();
    forest.root.resize(n, NONE);
    forest.roots.clear();
    let mut rounds = 0usize;
    // Vertices claimed so far across every component — the direction
    // switch's `remaining` hint.
    let mut visited = 0usize;
    {
        let parent = as_atomic_u32(&mut forest.parent);
        let level = as_atomic_u32(&mut forest.level);
        let root = as_atomic_u32(&mut forest.root);
        for s in 0..n as V {
            if root[s as usize].load(Ordering::Relaxed) != NONE {
                continue;
            }
            forest.roots.push(s);
            root[s as usize].store(s, Ordering::Relaxed);
            level[s as usize].store(0, Ordering::Relaxed);
            visited += 1;
            frontier.clear();
            frontier.push(s);
            let mut depth = 0u32;
            while !frontier.is_empty() {
                rounds += 1;
                depth += 1;
                let op = BfsClaim {
                    parent,
                    level,
                    root,
                    src: s,
                    depth,
                };
                edge_map(g, frontier, n - visited, &op, mode, em, next_frontier);
                std::mem::swap(frontier, next_frontier);
                visited += frontier.len();
            }
        }
    }
    forest.rounds = rounds;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::stats::bfs_distances;

    #[test]
    fn levels_match_sequential_bfs() {
        let g = windmill(10);
        let f = bfs_forest(&g);
        let d = bfs_distances(&g, f.roots[0]);
        for v in 0..g.n() {
            assert_eq!(f.level[v], d[v], "vertex {v}");
        }
    }

    #[test]
    fn forest_structure_is_valid() {
        let g = disjoint_union(&[&cycle(10), &path(7), &complete(5)]);
        let f = bfs_forest(&g);
        assert_eq!(f.roots.len(), 3);
        for v in 0..g.n() as V {
            let p = f.parent[v as usize];
            if p == NONE {
                assert!(f.roots.contains(&v));
                assert_eq!(f.level[v as usize], 0);
            } else {
                assert!(g.has_edge(p, v));
                assert_eq!(f.level[v as usize], f.level[p as usize] + 1);
                assert_eq!(f.root[v as usize], f.root[p as usize]);
            }
        }
    }

    #[test]
    fn rounds_proportional_to_diameter() {
        let chain = path(5000);
        let f = bfs_forest(&chain);
        assert!(f.rounds >= 4999, "rounds {} below diameter", f.rounds);
        let k = complete(500);
        let f = bfs_forest(&k);
        assert!(f.rounds <= 2, "complete graph should finish in ≤2 rounds");
    }

    #[test]
    fn root_labels_are_cc_labels() {
        let g = disjoint_union(&[&path(4), &path(4)]);
        let f = bfs_forest(&g);
        assert_eq!(f.root[0], f.root[3]);
        assert_eq!(f.root[4], f.root[7]);
        assert_ne!(f.root[0], f.root[4]);
    }

    #[test]
    fn forced_modes_agree_on_levels_and_roots() {
        for g in [
            path(400),
            cycle(64),
            star(60),
            complete(30),
            windmill(8),
            disjoint_union(&[&cycle(9), &star(15), &path(6)]),
        ] {
            let mut scratch = BfsScratch::new();
            let mut runs = Vec::new();
            for mode in [EdgeMapMode::Sparse, EdgeMapMode::Dense, EdgeMapMode::Auto] {
                bfs_forest_in(&g, mode, &mut scratch);
                let f = &scratch.forest;
                runs.push((f.level.clone(), f.root.clone(), f.roots.clone(), f.rounds));
            }
            assert_eq!(runs[0], runs[1], "sparse vs dense diverged, n={}", g.n());
            assert_eq!(runs[0], runs[2], "sparse vs auto diverged, n={}", g.n());
        }
    }

    #[test]
    fn dense_engages_on_hub_frontiers() {
        let g = star(4_000);
        let mut scratch = BfsScratch::new();
        bfs_forest_in(&g, EdgeMapMode::Auto, &mut scratch);
        assert!(scratch.dense_rounds() > 0, "hub expansion stayed top-down");
        let g = path(4_000);
        bfs_forest_in(&g, EdgeMapMode::Auto, &mut scratch);
        assert_eq!(scratch.dense_rounds(), 0, "path expansion went bottom-up");
    }

    #[test]
    fn warm_scratch_resolve_allocates_nothing() {
        let g = fastbcc_graph::generators::grid2d(40, 40, true);
        let mut scratch = BfsScratch::new();
        bfs_forest_in(&g, EdgeMapMode::Auto, &mut scratch);
        let bytes = scratch.heap_bytes();
        let rounds = scratch.forest.rounds;
        for _ in 0..3 {
            bfs_forest_in(&g, EdgeMapMode::Auto, &mut scratch);
            assert_eq!(scratch.heap_bytes(), bytes, "warm BFS grew the scratch");
            assert_eq!(scratch.forest.rounds, rounds);
        }
    }
}
