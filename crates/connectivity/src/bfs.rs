//! Frontier-synchronous parallel BFS.
//!
//! Not used by FAST-BCC itself (that is the whole point of the paper), but
//! required by the BFS-skeleton baselines (GBBS-style, SM'14-style) whose
//! span is `O(diam(G) · log n)`. Exposed here because it shares the
//! claim-by-CAS frontier machinery with the LDD.

use fastbcc_graph::{Graph, NONE, V};
use fastbcc_primitives::par::{num_blocks, par_for_grain};
use fastbcc_primitives::worker_local::WorkerLocal;
use std::sync::atomic::{AtomicU32, Ordering};

/// Frontier vertices per expansion block (see the LDD's grain choice).
const FRONTIER_GRAIN: usize = 64;

/// A rooted BFS forest over all components.
pub struct BfsForest {
    /// Parent of each vertex in its BFS tree; `NONE` for roots.
    pub parent: Vec<V>,
    /// BFS level (distance from the root of its tree).
    pub level: Vec<u32>,
    /// The root of each vertex's tree (doubles as a CC label).
    pub root: Vec<V>,
    /// One root per component, in discovery order.
    pub roots: Vec<V>,
    /// Total synchronous rounds across all components (the span driver).
    pub rounds: usize,
}

/// Build a BFS forest covering every vertex. Each component's BFS is
/// frontier-parallel; components are processed one after another (as in the
/// BFS-based BCC implementations the paper compares against).
pub fn bfs_forest(g: &Graph) -> BfsForest {
    let n = g.n();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();
    let root: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();
    let mut roots = Vec::new();
    let mut rounds = 0usize;

    // Per-worker next-frontier arenas, shared by every component's BFS:
    // each worker appends the vertices it claims to its own arena, and the
    // level barrier concatenates the arenas in worker-id order — no
    // allocation and no shared append inside the parallel region.
    let mut next = WorkerLocal::<Vec<V>>::default();
    let mut frontier: Vec<V> = Vec::new();

    for s in 0..n as V {
        if root[s as usize].load(Ordering::Relaxed) != NONE {
            continue;
        }
        roots.push(s);
        root[s as usize].store(s, Ordering::Relaxed);
        level[s as usize].store(0, Ordering::Relaxed);
        frontier.clear();
        frontier.push(s);
        let mut depth = 0u32;
        while !frontier.is_empty() {
            rounds += 1;
            depth += 1;
            {
                let fr: &[V] = &frontier;
                let arenas = &next;
                let (parent, level, root) = (&parent, &level, &root);
                let blocks = num_blocks(fr.len(), FRONTIER_GRAIN);
                par_for_grain(blocks, 1, |b| {
                    let lo = b * fr.len() / blocks;
                    let hi = (b + 1) * fr.len() / blocks;
                    arenas.with(|buf| {
                        for &u in &fr[lo..hi] {
                            for &w in g.neighbors(u) {
                                if root[w as usize].load(Ordering::Relaxed) == NONE
                                    && root[w as usize]
                                        .compare_exchange(
                                            NONE,
                                            s,
                                            Ordering::Relaxed,
                                            Ordering::Relaxed,
                                        )
                                        .is_ok()
                                {
                                    parent[w as usize].store(u, Ordering::Relaxed);
                                    level[w as usize].store(depth, Ordering::Relaxed);
                                    buf.push(w);
                                }
                            }
                        }
                    });
                });
            }
            frontier.clear();
            next.append_to(&mut frontier);
        }
    }

    BfsForest {
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        level: level.into_iter().map(AtomicU32::into_inner).collect(),
        root: root.into_iter().map(AtomicU32::into_inner).collect(),
        roots,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::stats::bfs_distances;

    #[test]
    fn levels_match_sequential_bfs() {
        let g = windmill(10);
        let f = bfs_forest(&g);
        let d = bfs_distances(&g, f.roots[0]);
        for v in 0..g.n() {
            assert_eq!(f.level[v], d[v], "vertex {v}");
        }
    }

    #[test]
    fn forest_structure_is_valid() {
        let g = disjoint_union(&[&cycle(10), &path(7), &complete(5)]);
        let f = bfs_forest(&g);
        assert_eq!(f.roots.len(), 3);
        for v in 0..g.n() as V {
            let p = f.parent[v as usize];
            if p == NONE {
                assert!(f.roots.contains(&v));
                assert_eq!(f.level[v as usize], 0);
            } else {
                assert!(g.has_edge(p, v));
                assert_eq!(f.level[v as usize], f.level[p as usize] + 1);
                assert_eq!(f.root[v as usize], f.root[p as usize]);
            }
        }
    }

    #[test]
    fn rounds_proportional_to_diameter() {
        let chain = path(5000);
        let f = bfs_forest(&chain);
        assert!(f.rounds >= 4999, "rounds {} below diameter", f.rounds);
        let k = complete(500);
        let f = bfs_forest(&k);
        assert!(f.rounds <= 2, "complete graph should finish in ≤2 rounds");
    }

    #[test]
    fn root_labels_are_cc_labels() {
        let g = disjoint_union(&[&path(4), &path(4)]);
        let f = bfs_forest(&g);
        assert_eq!(f.root[0], f.root[3]);
        assert_eq!(f.root[4], f.root[7]);
        assert_ne!(f.root[0], f.root[4]);
    }
}
