//! Connected-components algorithms.
//!
//! [`ldd_uf_jtb`] is the algorithm FAST-BCC uses (paper §5, Thm. 5.1):
//! `O(n + m)` expected work, `O(log³ n)` span w.h.p. It returns, besides
//! labels, the **spanning forest** by-product (LDD cluster-tree arcs plus
//! the inter-cluster edges whose union succeeded) that *First-CC* needs.
//!
//! [`uf_async`] is the simpler all-edges-into-union-find algorithm (the
//! default of recent GBBS); work-efficient in practice but without the LDD
//! span guarantee. [`bfs_cc`] is diameter-bound. [`cc_seq`] is the
//! sequential oracle.

use crate::bfs::bfs_forest;
use crate::ldd::LddOpts;
use crate::unionfind::{ConcurrentUnionFind, SeqUnionFind};
use fastbcc_graph::{Graph, V};
use fastbcc_primitives::pack::pack_map;
use rayon::prelude::*;

/// Options for [`ldd_uf_jtb`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CcOpts {
    /// LDD options (β, local search, seed).
    pub ldd: LddOpts,
    /// Collect the spanning forest (FAST-BCC needs it; pure CC callers can
    /// skip the extra allocation).
    pub want_forest: bool,
}

/// Result of a parallel CC run.
pub struct CcOutput {
    /// Component label per vertex (a representative vertex id — every
    /// vertex with the same label is connected and vice versa).
    pub labels: Vec<u32>,
    /// Spanning-forest edges of `G` (present iff requested): `n - #CC`
    /// edges forming a forest that spans every component.
    pub forest: Option<Vec<(V, V)>>,
    /// Number of components.
    pub num_components: usize,
}

/// The LDD-UF-JTB connectivity algorithm (ConnectIt; paper Thm. 5.1).
pub fn ldd_uf_jtb(g: &Graph, opts: CcOpts) -> CcOutput {
    ldd_uf_jtb_filtered(g, opts, &|_, _| true)
}

/// LDD-UF-JTB on the implicit subgraph of `g` whose edges satisfy `filter`
/// (a symmetric predicate). FAST-BCC's *Last-CC* calls this with the
/// `InSkeleton` predicate of Alg. 1, never materializing the skeleton.
pub fn ldd_uf_jtb_filtered<F>(g: &Graph, opts: CcOpts, filter: &F) -> CcOutput
where
    F: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    let dec = crate::ldd::ldd_filtered(g, opts.ldd, filter);
    let uf = ConcurrentUnionFind::new(n);

    // Union the clusters over inter-cluster edges, remembering which edges
    // performed a union — those join the spanning forest.
    let union_edges: Vec<(V, V)> = if opts.want_forest {
        (0..n as V)
            .into_par_iter()
            .fold(Vec::new, |mut acc: Vec<(V, V)>, u| {
                let cu = dec.cluster[u as usize];
                for &w in g.neighbors(u) {
                    if u < w && filter(u, w) {
                        let cw = dec.cluster[w as usize];
                        if cu != cw && uf.unite(cu, cw) {
                            acc.push((u, w));
                        }
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    } else {
        (0..n as V).into_par_iter().for_each(|u| {
            let cu = dec.cluster[u as usize];
            for &w in g.neighbors(u) {
                if u < w && filter(u, w) {
                    let cw = dec.cluster[w as usize];
                    if cu != cw {
                        uf.unite(cu, cw);
                    }
                }
            }
        });
        Vec::new()
    };

    // Final label: the UF representative of the vertex's cluster.
    let labels: Vec<u32> = (0..n)
        .into_par_iter()
        .map(|v| uf.find(dec.cluster[v]))
        .collect();
    let num_components = count_components(&labels);

    let forest = if opts.want_forest {
        let mut f = dec.tree_edges;
        f.extend_from_slice(&union_edges);
        debug_assert_eq!(f.len(), n - num_components);
        Some(f)
    } else {
        None
    };
    CcOutput { labels, forest, num_components }
}

/// Asynchronous union–find CC: throw every edge at the concurrent UF.
pub fn uf_async(g: &Graph, want_forest: bool) -> CcOutput {
    uf_async_filtered(g, want_forest, &|_, _| true)
}

/// [`uf_async`] on the implicit subgraph whose edges satisfy `filter`.
pub fn uf_async_filtered<F>(g: &Graph, want_forest: bool, filter: &F) -> CcOutput
where
    F: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    let uf = ConcurrentUnionFind::new(n);
    let forest_edges: Vec<(V, V)> = if want_forest {
        (0..n as V)
            .into_par_iter()
            .fold(Vec::new, |mut acc: Vec<(V, V)>, u| {
                for &w in g.neighbors(u) {
                    if u < w && filter(u, w) && uf.unite(u, w) {
                        acc.push((u, w));
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    } else {
        (0..n as V).into_par_iter().for_each(|u| {
            for &w in g.neighbors(u) {
                if u < w && filter(u, w) {
                    uf.unite(u, w);
                }
            }
        });
        Vec::new()
    };
    let labels = uf.labels();
    let num_components = count_components(&labels);
    CcOutput {
        labels,
        forest: want_forest.then_some(forest_edges),
        num_components,
    }
}

/// BFS-based CC (diameter-bound span); forest = BFS tree arcs.
pub fn bfs_cc(g: &Graph, want_forest: bool) -> CcOutput {
    let f = bfs_forest(g);
    let n = g.n();
    let num_components = f.roots.len();
    let forest = want_forest.then(|| {
        pack_map(
            n,
            |v| f.parent[v] != fastbcc_graph::NONE,
            |v| (f.parent[v], v as V),
        )
    });
    CcOutput { labels: f.root, forest, num_components }
}

/// Sequential union–find CC (test oracle / baseline building block).
pub fn cc_seq(g: &Graph, want_forest: bool) -> CcOutput {
    let n = g.n();
    let mut uf = SeqUnionFind::new(n);
    let mut forest_edges = Vec::new();
    for u in 0..n as V {
        for &w in g.neighbors(u) {
            if u < w && uf.unite(u, w) {
                if want_forest {
                    forest_edges.push((u, w));
                }
            }
        }
    }
    let labels: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
    let num_components = uf.set_count();
    CcOutput {
        labels,
        forest: want_forest.then_some(forest_edges),
        num_components,
    }
}

/// Count distinct labels (labels are representative ids: a label `l` is a
/// component root iff `labels[l] == l`).
fn count_components(labels: &[u32]) -> usize {
    fastbcc_primitives::reduce::count(labels.len(), |v| labels[v] == v as u32)
}

/// A permutation renaming vertices so every component is contiguous —
/// the CSR reordering of the paper's *Spanning Forest* step (§5).
pub fn cc_contiguous_perm(labels: &[u32]) -> Vec<V> {
    let n = labels.len();
    let ids: Vec<V> = (0..n as V).collect();
    // Semisort vertices by label; position in the sorted order is the new id.
    let (sorted, _) = fastbcc_primitives::semisort::semisort_by_small_key(
        &ids,
        n.max(1),
        |&v| labels[v as usize] as usize,
    );
    let mut perm: Vec<V> = unsafe { fastbcc_primitives::slice::uninit_vec(n) };
    {
        let view = fastbcc_primitives::slice::UnsafeSlice::new(&mut perm);
        fastbcc_primitives::par::par_for(n, |new| unsafe {
            view.write(sorted[new] as usize, new as V);
        });
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanning_forest::verify_spanning_forest;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, knn, random_geometric, rmat};
    use fastbcc_graph::stats::cc_labels_seq;

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        // map a-label -> b-label must be a bijection consistent everywhere.
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for i in 0..a.len() {
            if *fwd.entry(a[i]).or_insert(b[i]) != b[i] {
                return false;
            }
            if *bwd.entry(b[i]).or_insert(a[i]) != a[i] {
                return false;
            }
        }
        true
    }

    fn check_all_algorithms(g: &Graph) {
        let oracle = cc_labels_seq(g);
        for (name, out) in [
            ("ldd_uf_jtb", ldd_uf_jtb(g, CcOpts { want_forest: true, ..Default::default() })),
            ("uf_async", uf_async(g, true)),
            ("bfs_cc", bfs_cc(g, true)),
            ("cc_seq", cc_seq(g, true)),
        ] {
            assert!(
                same_partition(&out.labels, &oracle),
                "{name}: partition mismatch on n={} m={}",
                g.n(),
                g.m()
            );
            let forest = out.forest.as_ref().unwrap();
            verify_spanning_forest(g, forest, out.num_components);
        }
    }

    #[test]
    fn all_algorithms_agree_on_zoo() {
        for g in [
            path(100),
            cycle(64),
            star(50),
            complete(12),
            windmill(9),
            barbell(5, 4),
            petersen(),
            binary_tree(127),
            disjoint_union(&[&cycle(5), &path(9), &complete(4)]),
            Graph::empty(10),
            Graph::empty(0),
        ] {
            check_all_algorithms(&g);
        }
    }

    #[test]
    fn all_algorithms_agree_on_generated() {
        check_all_algorithms(&grid2d(30, 40, true));
        check_all_algorithms(&rmat(11, 6000, 7));
        check_all_algorithms(&knn(2000, 3, 11));
        check_all_algorithms(&random_geometric(2000, 0.03, 13));
    }

    #[test]
    fn component_counts() {
        let g = disjoint_union(&[&cycle(3), &cycle(4), &path(5), &Graph::empty(2)]);
        let out = ldd_uf_jtb(&g, CcOpts::default());
        assert_eq!(out.num_components, 3 + 2);
        assert!(out.forest.is_none());
    }

    #[test]
    fn forest_edge_count_excludes_cycles() {
        let g = complete(30);
        let out = ldd_uf_jtb(&g, CcOpts { want_forest: true, ..Default::default() });
        assert_eq!(out.forest.unwrap().len(), 29);
        assert_eq!(out.num_components, 1);
    }

    #[test]
    fn contiguous_perm_groups_components() {
        let g = disjoint_union(&[&cycle(4), &path(3), &cycle(5)]);
        let out = cc_seq(&g, false);
        let perm = cc_contiguous_perm(&out.labels);
        assert!(fastbcc_graph::permute::is_permutation(&perm));
        // After renaming, labels sorted by new id must be grouped.
        let n = g.n();
        let mut relabeled = vec![0u32; n];
        for old in 0..n {
            relabeled[perm[old] as usize] = out.labels[old];
        }
        assert!(fastbcc_primitives::semisort::is_grouped(&relabeled, |&l| l));
    }

    #[test]
    fn ldd_uf_without_local_search_matches() {
        let g = grid2d(50, 20, false);
        let opts = CcOpts {
            ldd: LddOpts { local_search: false, ..Default::default() },
            want_forest: true,
        };
        let out = ldd_uf_jtb(&g, opts);
        assert_eq!(out.num_components, 1);
        verify_spanning_forest(&g, out.forest.as_ref().unwrap(), 1);
    }
}
