//! Connected-components algorithms.
//!
//! [`ldd_uf_jtb`] is the algorithm FAST-BCC uses (paper §5, Thm. 5.1):
//! `O(n + m)` expected work, `O(log³ n)` span w.h.p. It returns, besides
//! labels, the **spanning forest** by-product (LDD cluster-tree arcs plus
//! the inter-cluster edges whose union succeeded) that *First-CC* needs.
//!
//! [`uf_async`] is the simpler all-edges-into-union-find algorithm (the
//! default of recent GBBS); work-efficient in practice but without the LDD
//! span guarantee. [`bfs_cc`] is diameter-bound. [`cc_seq`] is the
//! sequential oracle.

use crate::bfs::bfs_forest;
use crate::ldd::{ldd_filtered_in, LddOpts, LddScratch};
use crate::unionfind::{ConcurrentUnionFind, SeqUnionFind};
use fastbcc_graph::{GraphView, V};
use fastbcc_primitives::edgemap::for_arcs_balanced;
use fastbcc_primitives::pack::pack_map;
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::slice::{extend_uninit, reserve_to, reuse_uninit, UnsafeSlice};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum arcs per union block (cheap bodies; blocks are balanced by
/// arc count, splitting inside a high-degree vertex's neighbor list).
const UNION_GRAIN: usize = 512;

/// Options for [`ldd_uf_jtb`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CcOpts {
    /// LDD options (β, local search, seed).
    pub ldd: LddOpts,
    /// Collect the spanning forest (FAST-BCC needs it; pure CC callers can
    /// skip the extra allocation).
    pub want_forest: bool,
}

/// Result of a parallel CC run.
pub struct CcOutput {
    /// Component label per vertex (a representative vertex id — every
    /// vertex with the same label is connected and vice versa).
    pub labels: Vec<u32>,
    /// Spanning-forest edges of `G` (present iff requested): `n - #CC`
    /// edges forming a forest that spans every component.
    pub forest: Option<Vec<(V, V)>>,
    /// Number of components.
    pub num_components: usize,
}

/// Reusable buffers for the parallel CC algorithms: the LDD scratch and
/// the concurrent union–find. Union winners are staged directly into the
/// caller's forest buffer through pre-reserved slots and an atomic
/// cursor (at most `n - 1` winners ever exist), so no per-worker edge
/// arenas remain. One `CcScratch` serves both of FAST-BCC's connectivity
/// phases (First-CC and Last-CC) across repeated solves.
#[derive(Default)]
pub struct CcScratch {
    pub ldd: LddScratch,
    pub uf: ConcurrentUnionFind,
}

impl CcScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve every pooled buffer for an `n`-vertex, `m_arcs`-arc
    /// input.
    pub fn reserve(&mut self, n: usize, m_arcs: usize) {
        self.ldd.reserve(n, m_arcs);
        self.uf.reset(n);
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.ldd.heap_bytes() + self.uf.heap_bytes()
    }

    /// Heap bytes held by the frontier-staging buffers alone (the shared
    /// edgeMap scratch plus the bounded per-worker local-search stacks).
    pub fn arena_bytes(&self) -> usize {
        self.ldd.arena_bytes()
    }
}

/// The LDD-UF-JTB connectivity algorithm (ConnectIt; paper Thm. 5.1).
pub fn ldd_uf_jtb<G: GraphView>(g: &G, opts: CcOpts) -> CcOutput {
    ldd_uf_jtb_filtered(g, opts, &|_, _| true)
}

/// LDD-UF-JTB on the implicit subgraph of `g` whose edges satisfy `filter`
/// (a symmetric predicate). FAST-BCC's *Last-CC* calls this with the
/// `InSkeleton` predicate of Alg. 1, never materializing the skeleton.
pub fn ldd_uf_jtb_filtered<G: GraphView, F>(g: &G, opts: CcOpts, filter: &F) -> CcOutput
where
    F: Fn(V, V) -> bool + Sync,
{
    let mut scratch = CcScratch::new();
    let mut labels = Vec::new();
    let mut forest = opts.want_forest.then(Vec::new);
    let num_components = ldd_uf_jtb_filtered_in(
        g,
        opts.ldd,
        filter,
        &mut scratch,
        &mut labels,
        forest.as_mut(),
    );
    if let Some(f) = &forest {
        debug_assert_eq!(f.len(), g.n() - num_components);
    }
    CcOutput {
        labels,
        forest,
        num_components,
    }
}

/// [`ldd_uf_jtb_filtered`] writing into caller-owned buffers: component
/// labels into `labels_out`, and (when `forest_out` is `Some`) the spanning
/// forest into it. Returns the component count. All `O(n)` intermediates
/// live in `scratch` and are reused across calls — this is the engine's
/// repeated-solve path.
pub fn ldd_uf_jtb_filtered_in<G: GraphView, F>(
    g: &G,
    ldd_opts: LddOpts,
    filter: &F,
    scratch: &mut CcScratch,
    labels_out: &mut Vec<u32>,
    forest_out: Option<&mut Vec<(V, V)>>,
) -> usize
where
    F: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    let want_forest = forest_out.is_some();
    ldd_filtered_in(g, ldd_opts, filter, &mut scratch.ldd, want_forest);
    let CcScratch { ldd, uf } = scratch;
    uf.reset(n);
    let cluster = &ldd.cluster;
    let uf = &*uf;

    // Union the clusters over inter-cluster edges, remembering which
    // edges performed a union — those join the spanning forest. Arcs are
    // visited in degree-balanced blocks; winners go straight into
    // pre-reserved forest slots through an atomic cursor (successful
    // unions are rare — at most `#clusters - #components` across the
    // whole scan — so the cursor never becomes a serialization point).
    if let Some(forest) = forest_out {
        forest.clear();
        forest.extend_from_slice(&ldd.tree_edges);
        stage_union_winners(g, forest, |u, w| {
            if u < w && filter(u, w) {
                let (cu, cw) = (cluster[u as usize], cluster[w as usize]);
                cu != cw && uf.unite(cu, cw)
            } else {
                false
            }
        });
    } else {
        for_arcs_balanced(g, UNION_GRAIN, |u, w| {
            if u < w && filter(u, w) {
                let (cu, cw) = (cluster[u as usize], cluster[w as usize]);
                if cu != cw {
                    uf.unite(cu, cw);
                }
            }
        });
    }

    // Final label: the UF representative of the vertex's cluster.
    // SAFETY: every slot written exactly once below.
    unsafe { reuse_uninit(labels_out, n) };
    {
        let view = UnsafeSlice::new(labels_out.as_mut_slice());
        par_for(n, |v| {
            // SAFETY: disjoint writes.
            unsafe { view.write(v, uf.find(cluster[v])) };
        });
    }
    count_components(labels_out)
}

/// Asynchronous union–find CC: throw every edge at the concurrent UF.
pub fn uf_async<G: GraphView>(g: &G, want_forest: bool) -> CcOutput {
    uf_async_filtered(g, want_forest, &|_, _| true)
}

/// [`uf_async`] on the implicit subgraph whose edges satisfy `filter`.
pub fn uf_async_filtered<G: GraphView, F>(g: &G, want_forest: bool, filter: &F) -> CcOutput
where
    F: Fn(V, V) -> bool + Sync,
{
    let mut scratch = CcScratch::new();
    let mut labels = Vec::new();
    let mut forest = want_forest.then(Vec::new);
    let num_components =
        uf_async_filtered_in(g, filter, &mut scratch, &mut labels, forest.as_mut());
    CcOutput {
        labels,
        forest,
        num_components,
    }
}

/// [`uf_async_filtered`] writing into caller-owned buffers (the engine's
/// repeated-solve path; only the union–find and the per-worker edge
/// arenas of the scratch are touched). Returns the component count.
pub fn uf_async_filtered_in<G: GraphView, F>(
    g: &G,
    filter: &F,
    scratch: &mut CcScratch,
    labels_out: &mut Vec<u32>,
    forest_out: Option<&mut Vec<(V, V)>>,
) -> usize
where
    F: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    let CcScratch { uf, .. } = scratch;
    uf.reset(n);
    let uf_ref = &*uf;
    if let Some(forest) = forest_out {
        forest.clear();
        stage_union_winners(g, forest, |u, w| {
            u < w && filter(u, w) && uf_ref.unite(u, w)
        });
    } else {
        for_arcs_balanced(g, UNION_GRAIN, |u, w| {
            if u < w && filter(u, w) {
                uf_ref.unite(u, w);
            }
        });
    }
    uf_ref.labels_into(labels_out);
    count_components(labels_out)
}

/// Scan every arc of `g` in degree-balanced blocks, appending `(u, w)` to
/// `forest` for each arc on which `win(u, w)` returns `true` (a
/// successful union). Winners land in pre-reserved slots claimed by an
/// atomic cursor: a spanning structure admits at most `n - len` winners
/// on top of the `len` entries already present, so the buffer's `n`-slot
/// reserve is a deterministic envelope and the parallel region performs
/// no allocation. Winner order between blocks follows claim order (at a
/// worker budget of 1 this is ascending arc order, keeping single-thread
/// solves bit-reproducible).
fn stage_union_winners<G: GraphView, W>(g: &G, forest: &mut Vec<(V, V)>, win: W)
where
    W: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    let base = forest.len();
    debug_assert!(base <= n);
    reserve_to(forest, n);
    // SAFETY: the appended slots are written only through the cursor
    // below, and `win` admits at most `n - base - 1` winners when n > 0:
    // the `base` entries plus the winners together stay acyclic over `n`
    // vertices (tree edges + successful unions), so their total is below
    // `n`. Every slot up to the final cursor value is written exactly
    // once, and `truncate` discards the rest.
    unsafe { extend_uninit(forest, n - base) };
    let cursor = AtomicUsize::new(0);
    {
        let view = UnsafeSlice::new(&mut forest[base..]);
        for_arcs_balanced(g, UNION_GRAIN, |u, w| {
            if win(u, w) {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                // SAFETY: `i` is uniquely claimed and in bounds (see above).
                unsafe { view.write(i, (u, w)) };
            }
        });
    }
    forest.truncate(base + cursor.into_inner());
}

/// BFS-based CC (diameter-bound span); forest = BFS tree arcs.
pub fn bfs_cc<G: GraphView>(g: &G, want_forest: bool) -> CcOutput {
    let f = bfs_forest(g);
    let n = g.n();
    let num_components = f.roots.len();
    let forest = want_forest.then(|| {
        pack_map(
            n,
            |v| f.parent[v] != fastbcc_graph::NONE,
            |v| (f.parent[v], v as V),
        )
    });
    CcOutput {
        labels: f.root,
        forest,
        num_components,
    }
}

/// Sequential union–find CC (test oracle / baseline building block).
pub fn cc_seq<G: GraphView>(g: &G, want_forest: bool) -> CcOutput {
    let n = g.n();
    let mut uf = SeqUnionFind::new(n);
    let mut forest_edges = Vec::new();
    for u in 0..n as V {
        g.for_neighbors(u, |w| {
            if u < w && uf.unite(u, w) && want_forest {
                forest_edges.push((u, w));
            }
        });
    }
    let labels: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
    let num_components = uf.set_count();
    CcOutput {
        labels,
        forest: want_forest.then_some(forest_edges),
        num_components,
    }
}

/// Count distinct labels (labels are representative ids: a label `l` is a
/// component root iff `labels[l] == l`).
fn count_components(labels: &[u32]) -> usize {
    fastbcc_primitives::reduce::count(labels.len(), |v| labels[v] == v as u32)
}

/// A permutation renaming vertices so every component is contiguous —
/// the CSR reordering of the paper's *Spanning Forest* step (§5).
pub fn cc_contiguous_perm(labels: &[u32]) -> Vec<V> {
    let n = labels.len();
    let ids: Vec<V> = (0..n as V).collect();
    // Semisort vertices by label; position in the sorted order is the new id.
    let (sorted, _) = fastbcc_primitives::semisort::semisort_by_small_key(&ids, n.max(1), |&v| {
        labels[v as usize] as usize
    });
    // SAFETY: `sorted` is a permutation of `0..n`, so the inversion scatter
    // below writes every index exactly once before `perm` is read.
    let mut perm: Vec<V> = unsafe { fastbcc_primitives::slice::uninit_vec(n) };
    {
        let view = fastbcc_primitives::slice::UnsafeSlice::new(&mut perm);
        // SAFETY: disjoint writes — `sorted` is injective (a permutation).
        fastbcc_primitives::par::par_for(n, |new| unsafe {
            view.write(sorted[new] as usize, new as V);
        });
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanning_forest::verify_spanning_forest;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, knn, random_geometric, rmat};
    use fastbcc_graph::stats::cc_labels_seq;
    use fastbcc_graph::Graph;

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        // map a-label -> b-label must be a bijection consistent everywhere.
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for i in 0..a.len() {
            if *fwd.entry(a[i]).or_insert(b[i]) != b[i] {
                return false;
            }
            if *bwd.entry(b[i]).or_insert(a[i]) != a[i] {
                return false;
            }
        }
        true
    }

    fn check_all_algorithms(g: &Graph) {
        let oracle = cc_labels_seq(g);
        for (name, out) in [
            (
                "ldd_uf_jtb",
                ldd_uf_jtb(
                    g,
                    CcOpts {
                        want_forest: true,
                        ..Default::default()
                    },
                ),
            ),
            ("uf_async", uf_async(g, true)),
            ("bfs_cc", bfs_cc(g, true)),
            ("cc_seq", cc_seq(g, true)),
        ] {
            assert!(
                same_partition(&out.labels, &oracle),
                "{name}: partition mismatch on n={} m={}",
                g.n(),
                g.m()
            );
            let forest = out.forest.as_ref().unwrap();
            verify_spanning_forest(g, forest, out.num_components);
        }
    }

    #[test]
    fn all_algorithms_agree_on_zoo() {
        for g in [
            path(100),
            cycle(64),
            star(50),
            complete(12),
            windmill(9),
            barbell(5, 4),
            petersen(),
            binary_tree(127),
            disjoint_union(&[&cycle(5), &path(9), &complete(4)]),
            Graph::empty(10),
            Graph::empty(0),
        ] {
            check_all_algorithms(&g);
        }
    }

    #[test]
    fn all_algorithms_agree_on_generated() {
        check_all_algorithms(&grid2d(30, 40, true));
        check_all_algorithms(&rmat(11, 6000, 7));
        check_all_algorithms(&knn(2000, 3, 11));
        check_all_algorithms(&random_geometric(2000, 0.03, 13));
    }

    #[test]
    fn component_counts() {
        let g = disjoint_union(&[&cycle(3), &cycle(4), &path(5), &Graph::empty(2)]);
        let out = ldd_uf_jtb(&g, CcOpts::default());
        assert_eq!(out.num_components, 3 + 2);
        assert!(out.forest.is_none());
    }

    #[test]
    fn forest_edge_count_excludes_cycles() {
        let g = complete(30);
        let out = ldd_uf_jtb(
            &g,
            CcOpts {
                want_forest: true,
                ..Default::default()
            },
        );
        assert_eq!(out.forest.unwrap().len(), 29);
        assert_eq!(out.num_components, 1);
    }

    #[test]
    fn contiguous_perm_groups_components() {
        let g = disjoint_union(&[&cycle(4), &path(3), &cycle(5)]);
        let out = cc_seq(&g, false);
        let perm = cc_contiguous_perm(&out.labels);
        assert!(fastbcc_graph::permute::is_permutation(&perm));
        // After renaming, labels sorted by new id must be grouped.
        let n = g.n();
        let mut relabeled = vec![0u32; n];
        for old in 0..n {
            relabeled[perm[old] as usize] = out.labels[old];
        }
        assert!(fastbcc_primitives::semisort::is_grouped(&relabeled, |&l| l));
    }

    #[test]
    fn ldd_uf_without_local_search_matches() {
        let g = grid2d(50, 20, false);
        let opts = CcOpts {
            ldd: LddOpts {
                local_search: false,
                ..Default::default()
            },
            want_forest: true,
        };
        let out = ldd_uf_jtb(&g, opts);
        assert_eq!(out.num_components, 1);
        verify_spanning_forest(&g, out.forest.as_ref().unwrap(), 1);
    }
}
