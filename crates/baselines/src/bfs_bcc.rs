//! BFS-skeleton BCC in the style of GBBS [Dhulipala–Blelloch–Shun, TOPC'21]
//! — the **GBBS** baseline of the paper's tables.
//!
//! Same skeleton-connectivity structure as FAST-BCC, with the two phases
//! that the paper shows dominating on large-diameter graphs swapped in:
//!
//! * **First-CC** — connectivity only (no forest by-product);
//! * **Rooting** — a *BFS* of the input graph to build the spanning forest
//!   (`O(diam(G) · log n)` span — this is the red bar of Fig. 5);
//! * **Tagging** — level-synchronous sweeps over the BFS tree
//!   ([`crate::bfs_tags`], also diameter-bound);
//! * **Last-CC** — identical implicit-skeleton connectivity (UF-Async, as
//!   recent GBBS uses) plus head assignment.
//!
//! Because the BFS tree admits no back edges, the `InSkeleton` test
//! degenerates to the sparse-certificate rule of the BFS-based algorithms;
//! the predicates are shared with FAST-BCC for exact output compatibility.

use crate::bfs_tags::bfs_tags;
use fastbcc_connectivity::bfs::{bfs_forest_in, BfsScratch};
use fastbcc_connectivity::cc::{ldd_uf_jtb, uf_async_filtered, CcOpts};
use fastbcc_connectivity::ldd::LddOpts;
use fastbcc_core::algo::{assign_heads, BccResult, Breakdown};
use fastbcc_graph::{Graph, V};
use fastbcc_primitives::edgemap::EdgeMapMode;
use std::time::Instant;

/// Run the BFS-skeleton BCC algorithm (one-shot; see [`bfs_bcc_in`] for
/// the warm-rooting variant).
pub fn bfs_bcc(g: &Graph, seed: u64) -> BccResult {
    let mut scratch = BfsScratch::new();
    bfs_bcc_in(g, seed, &mut scratch)
}

/// [`bfs_bcc`] with a caller-owned [`BfsScratch`]: the rooting phase's
/// three `O(n)` forest arrays and its frontier staging are reused across
/// calls, so a warm repeated-query loop pays no rooting allocations (the
/// tagging and CC phases still allocate — the baseline pools nothing
/// else, as the paper's GBBS configuration doesn't either).
pub fn bfs_bcc_in(g: &Graph, seed: u64, scratch: &mut BfsScratch) -> BccResult {
    let n = g.n();

    // ---- First-CC: labels only ------------------------------------------
    let t0 = Instant::now();
    let cc = ldd_uf_jtb(
        g,
        CcOpts {
            ldd: LddOpts {
                seed,
                ..Default::default()
            },
            want_forest: false,
        },
    );
    let first_cc = t0.elapsed();

    // ---- Rooting: BFS forest (the diameter-bound phase) -------------------
    let t1 = Instant::now();
    bfs_forest_in(g, EdgeMapMode::Auto, scratch);
    let forest = &scratch.forest;
    let rooting = t1.elapsed();

    // ---- Tagging: level-synchronous sweeps -------------------------------
    let t2 = Instant::now();
    let tags = bfs_tags(g, forest);
    let tagging = t2.elapsed();

    // ---- Last-CC: implicit skeleton + heads -------------------------------
    let t3 = Instant::now();
    let filter = |u: V, v: V| tags.in_skeleton(u, v);
    let sk = uf_async_filtered(g, false, &filter);
    let labels = sk.labels;
    let (head, label_count, num_bcc) = assign_heads(&labels, &tags);
    let last_cc = t3.elapsed();

    BccResult {
        labels,
        head,
        label_count,
        tags,
        num_bcc,
        num_cc: cc.num_components,
        breakdown: Breakdown {
            first_cc,
            rooting,
            tagging,
            last_cc,
        },
        // Analytic accounting, comparable to FAST-BCC's: CC + skeleton
        // labels (8n), BFS forest parent/level/root (12n), tags (20n),
        // bfs_tags working set — children + offsets + sizes + level groups
        // (≈28n) — all Θ(n); the paper reports GBBS ≈20 % leaner than
        // FAST-BCC, which carries the tour and two RMQ structures extra.
        aux_peak_bytes: 4 * n * 17,
        // The baselines allocate everything fresh on every call.
        fresh_alloc_bytes: 4 * n * 17,
        // ... and stage nothing in per-worker arenas.
        arena_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_tarjan::hopcroft_tarjan;
    use fastbcc_core::postprocess::canonical_bccs;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, knn, random_geometric, rmat};

    fn check(g: &Graph) {
        let got = canonical_bccs(&bfs_bcc(g, 11));
        let want = hopcroft_tarjan(g, true).bccs.unwrap();
        assert_eq!(got, want, "n={} m={}", g.n(), g.m());
    }

    #[test]
    fn matches_hopcroft_tarjan_on_zoo() {
        for g in [
            path(25),
            cycle(14),
            star(11),
            complete(8),
            windmill(7),
            barbell(5, 2),
            petersen(),
            theta(3, 1, 2),
            clique_chain(6, 3),
            wheel(9),
            ladder(7),
            disjoint_union(&[&cycle(6), &windmill(3), &path(4)]),
            Graph::empty(6),
        ] {
            check(&g);
        }
    }

    #[test]
    fn matches_on_generated() {
        check(&grid2d(11, 13, true));
        check(&rmat(9, 2500, 3));
        check(&knn(500, 4, 21));
        check(&random_geometric(700, 0.05, 5));
    }

    #[test]
    fn warm_scratch_reuse_matches_and_stays_allocation_free() {
        let g = grid2d(20, 20, true);
        let mut scratch = BfsScratch::new();
        let first = canonical_bccs(&bfs_bcc_in(&g, 11, &mut scratch));
        let bytes = scratch.heap_bytes();
        assert!(bytes > 0);
        for _ in 0..2 {
            let again = canonical_bccs(&bfs_bcc_in(&g, 11, &mut scratch));
            assert_eq!(again, first);
            assert_eq!(
                scratch.heap_bytes(),
                bytes,
                "warm rooting grew the BFS scratch"
            );
        }
        // The same scratch serves the SM'14 baseline too.
        let r = crate::sm14::sm14_in(&g, &mut scratch).expect("grid is connected");
        assert_eq!(canonical_bccs(&r), first);
    }

    #[test]
    fn breakdown_rooting_dominates_on_chains() {
        // The GBBS signature: on a chain, BFS rooting + tagging dwarf the
        // CC phases. We only assert the phases are populated (timing ratios
        // are asserted in the benchmark harness, not unit tests).
        let g = path(20_000);
        let r = bfs_bcc(&g, 1);
        assert_eq!(r.num_bcc, 19_999);
        assert!(r.breakdown.rooting.as_nanos() > 0);
    }
}
