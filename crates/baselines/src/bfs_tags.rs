//! Level-synchronous tag computation over a BFS forest — the tagging
//! scheme of the BFS-skeleton baselines (GBBS-style, SM'14-style).
//!
//! Produces the same [`Tags`] as FAST-BCC's ETT/RMQ pipeline, but with
//! *preorder numbers* instead of Euler-tour positions and with bottom-up /
//! top-down sweeps over BFS levels instead of list ranking and RMQ:
//!
//! * subtree sizes — one bottom-up sweep (children sum);
//! * preorder `first` and `last = first + size - 1` — one top-down sweep;
//! * `low`/`high` — seed `w1`/`w2` from non-tree edges, then a bottom-up
//!   min/max sweep.
//!
//! Every sweep synchronizes once per BFS level, so the span is
//! `O(diam(G) · log n)` — exactly the bottleneck the paper attributes to
//! GBBS in Fig. 5 ("GBBS computes them by a bottom-up traversal on the
//! BFS tree").
//!
//! The interval predicates (`Fence`, `Back`, `InSkeleton`) only need the
//! laminar-interval property, which preorder intervals share with Euler
//! intervals, so [`Tags`] works unchanged.

use fastbcc_connectivity::bfs::BfsForest;
use fastbcc_core::tags::Tags;
use fastbcc_graph::{Graph, V};
use fastbcc_primitives::atomics::{as_atomic_u32, write_max_u32, write_min_u32};
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::scan::prefix_sums;
use fastbcc_primitives::semisort::semisort_by_small_key;
use fastbcc_primitives::slice::{uninit_vec, UnsafeSlice};

/// Compute BCC tags from a BFS forest by level-synchronous sweeps.
pub fn bfs_tags(g: &Graph, f: &BfsForest) -> Tags {
    let n = g.n();
    if n == 0 {
        return Tags {
            parent: Vec::new(),
            first: Vec::new(),
            last: Vec::new(),
            low: Vec::new(),
            high: Vec::new(),
        };
    }
    let max_level = f.level.iter().copied().max().unwrap_or(0) as usize;

    // Vertices grouped by level, and children grouped by parent.
    let ids: Vec<V> = (0..n as V).collect();
    let (by_level, level_off) =
        semisort_by_small_key(&ids, max_level + 1, |&v| f.level[v as usize] as usize);
    let non_roots: Vec<V> =
        fastbcc_primitives::pack::pack_index(n, |v| f.parent[v] != fastbcc_graph::NONE);
    let (children, child_off) =
        semisort_by_small_key(&non_roots, n, |&v| f.parent[v as usize] as usize);

    // --- subtree sizes: bottom-up ----------------------------------------
    let mut size = vec![1u32; n];
    for d in (0..=max_level).rev() {
        let level = &by_level[level_off[d]..level_off[d + 1]];
        let sview = UnsafeSlice::new(&mut size);
        par_for(level.len(), |i| {
            let v = level[i] as usize;
            let mut s = 1u32;
            for &c in &children[child_off[v]..child_off[v + 1]] {
                // SAFETY: children are at level d+1, already final; v is
                // written only by this iteration.
                s += unsafe { sview.read(c as usize) };
            }
            unsafe { sview.write(v, s) };
        });
    }

    // --- preorder numbers: top-down, trees laid out back-to-back ---------
    let mut tree_off: Vec<usize> = f.roots.iter().map(|&r| size[r as usize] as usize).collect();
    let total = prefix_sums(&mut tree_off);
    debug_assert_eq!(total, n);
    // SAFETY: every vertex gets a preorder number in the top-down sweep
    // below (roots first, then each level), so all of `first` is written
    // before it is read.
    let mut first: Vec<u32> = unsafe { uninit_vec(n) };
    {
        let fview = UnsafeSlice::new(&mut first);
        let roots_ref = &f.roots;
        let off_ref = &tree_off;
        // SAFETY: roots are distinct vertices, so the writes are disjoint.
        par_for(roots_ref.len(), |t| unsafe {
            fview.write(roots_ref[t] as usize, off_ref[t] as u32);
        });
        for d in 0..=max_level {
            let level = &by_level[level_off[d]..level_off[d + 1]];
            let size_ref = &size;
            let children_ref = &children;
            let child_off_ref = &child_off;
            par_for(level.len(), |i| {
                let v = level[i] as usize;
                // SAFETY: first[v] was finalized when level d was reached
                // (roots above, parents in the previous iteration).
                let mut cursor = unsafe { fview.read(v) } + 1;
                for &c in &children_ref[child_off_ref[v]..child_off_ref[v + 1]] {
                    // SAFETY: each child has exactly one parent, so `c` is
                    // written by exactly one iteration of this level loop.
                    unsafe { fview.write(c as usize, cursor) };
                    cursor += size_ref[c as usize];
                }
            });
        }
    }
    // SAFETY: the scatter below writes every index `0..n` before use.
    let mut last: Vec<u32> = unsafe { uninit_vec(n) };
    {
        let view = UnsafeSlice::new(&mut last);
        let first_ref = &first;
        let size_ref = &size;
        // SAFETY: one write per distinct index `v` — disjoint by construction.
        par_for(n, |v| unsafe {
            view.write(v, first_ref[v] + size_ref[v] - 1)
        });
    }

    // --- w1/w2 from non-tree edges ----------------------------------------
    let parent = f.parent.clone();
    let mut low = first.clone();
    let mut high = first.clone();
    {
        let a1 = as_atomic_u32(&mut low);
        let a2 = as_atomic_u32(&mut high);
        let parent_ref = &parent;
        let first_ref = &first;
        par_for(n, |ui| {
            let u = ui as V;
            for &v in g.neighbors(u) {
                if parent_ref[ui] != v && parent_ref[v as usize] != u {
                    write_min_u32(&a1[ui], first_ref[v as usize]);
                    write_max_u32(&a2[ui], first_ref[v as usize]);
                }
            }
        });
    }

    // --- low/high: bottom-up min/max over children -----------------------
    for d in (0..=max_level).rev() {
        let level = &by_level[level_off[d]..level_off[d + 1]];
        let lview = UnsafeSlice::new(&mut low);
        let hview = UnsafeSlice::new(&mut high);
        let children_ref = &children;
        let child_off_ref = &child_off;
        par_for(level.len(), |i| {
            let v = level[i] as usize;
            // SAFETY: children finalized in the previous (deeper) round;
            // v written only here.
            let mut lo = unsafe { lview.read(v) };
            let mut hi = unsafe { hview.read(v) };
            for &c in &children_ref[child_off_ref[v]..child_off_ref[v + 1]] {
                lo = lo.min(unsafe { lview.read(c as usize) });
                hi = hi.max(unsafe { hview.read(c as usize) });
            }
            // SAFETY: `v` appears once in this level, so no other thread
            // touches index `v` during this round.
            unsafe {
                lview.write(v, lo);
                hview.write(v, hi);
            }
        });
    }

    Tags {
        parent,
        first,
        last,
        low,
        high,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_connectivity::bfs::bfs_forest;
    use fastbcc_graph::generators::classic::*;

    fn tags_of(g: &Graph) -> Tags {
        bfs_tags(g, &bfs_forest(g))
    }

    #[test]
    fn preorder_intervals_are_laminar() {
        for g in [
            cycle(12),
            windmill(5),
            barbell(4, 2),
            complete(6),
            binary_tree(31),
        ] {
            let tags = tags_of(&g);
            let n = g.n();
            // Parent interval contains child interval strictly.
            for v in 0..n {
                let p = tags.parent[v];
                if p != fastbcc_graph::NONE {
                    assert!(tags.first[p as usize] < tags.first[v]);
                    assert!(tags.last[p as usize] >= tags.last[v]);
                }
            }
            // first values are a permutation of 0..n.
            let mut fs: Vec<u32> = tags.first.clone();
            fs.sort_unstable();
            assert_eq!(fs, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn low_high_match_brute_force() {
        for g in [
            cycle(9),
            windmill(4),
            petersen(),
            theta(1, 2, 3),
            complete(6),
        ] {
            let tags = tags_of(&g);
            let n = g.n();
            let in_subtree = |anc: usize, v: usize| {
                tags.first[anc] <= tags.first[v] && tags.last[anc] >= tags.last[v]
            };
            for v in 0..n {
                let mut lo = u32::MAX;
                let mut hi = 0u32;
                for u in 0..n {
                    if in_subtree(v, u) {
                        lo = lo.min(tags.first[u]);
                        hi = hi.max(tags.first[u]);
                        for &x in g.neighbors(u as V) {
                            if !tags.is_tree_edge(u as V, x) {
                                lo = lo.min(tags.first[x as usize]);
                                hi = hi.max(tags.first[x as usize]);
                            }
                        }
                    }
                }
                assert_eq!(tags.low[v], lo, "low[{v}]");
                assert_eq!(tags.high[v], hi, "high[{v}]");
            }
        }
    }

    #[test]
    fn multi_component_layout_disjoint() {
        let g = disjoint_union(&[&cycle(5), &path(4), &star(6)]);
        let tags = tags_of(&g);
        // Tree intervals of different components must not overlap.
        let f = bfs_forest(&g);
        for (i, &r1) in f.roots.iter().enumerate() {
            for &r2 in f.roots.iter().skip(i + 1) {
                let a = (tags.first[r1 as usize], tags.last[r1 as usize]);
                let b = (tags.first[r2 as usize], tags.last[r2 as usize]);
                assert!(
                    a.1 < b.0 || b.1 < a.0,
                    "tree intervals overlap: {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn bfs_tree_has_no_back_edges() {
        // Structural property the baselines rely on: with a BFS tree every
        // non-tree edge is a cross edge.
        for g in [cycle(10), complete(7), windmill(5), grid_like()] {
            let tags = tags_of(&g);
            for (u, v) in g.iter_edges() {
                if !tags.is_tree_edge(u, v) {
                    assert!(
                        !tags.back(u, v) && !tags.back(v, u),
                        "back edge {u}-{v} under a BFS tree"
                    );
                }
            }
        }
    }

    fn grid_like() -> Graph {
        fastbcc_graph::generators::grid2d(7, 9, true)
    }
}
