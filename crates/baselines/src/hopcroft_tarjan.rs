//! The sequential Hopcroft–Tarjan BCC algorithm (CACM 1973) — **SEQ**.
//!
//! Classic DFS with `disc`/`low` values and an edge stack: when a child `w`
//! of `u` finishes with `low[w] ≥ disc[u]`, the edges above (and including)
//! `u–w` on the stack form one biconnected component.
//!
//! Implemented **iteratively** with explicit stacks: the paper benchmarks
//! chains of 10⁷–10⁸ vertices, where recursion would overflow any thread
//! stack. `O(n + m)` work, `O(n + m)` space for the DFS/edge stacks.

use fastbcc_graph::{Graph, NONE, V};

/// Result of a Hopcroft–Tarjan run.
pub struct HtResult {
    /// Number of biconnected components.
    pub num_bcc: usize,
    /// Canonical BCC vertex sets (sorted sets, sorted list) when requested.
    pub bccs: Option<Vec<Vec<V>>>,
    /// Articulation points, ascending.
    pub articulation_points: Vec<V>,
    /// Bridge edges `(min, max)`, ascending.
    pub bridges: Vec<(V, V)>,
}

/// Run Hopcroft–Tarjan. With `collect = false` only counts and the
/// articulation/bridge lists are produced (the benchmark configuration);
/// `collect = true` additionally materializes every BCC's vertex set.
pub fn hopcroft_tarjan(g: &Graph, collect: bool) -> HtResult {
    let n = g.n();
    let mut disc = vec![NONE; n]; // discovery (preorder) number
    let mut low = vec![0u32; n];
    let mut parent = vec![NONE; n];
    let mut is_art = vec![false; n];
    let mut bridges = Vec::new();
    let mut bccs: Vec<Vec<V>> = Vec::new();
    let mut num_bcc = 0usize;

    // Iterative DFS state.
    let mut timer = 0u32;
    let mut stack: Vec<V> = Vec::new(); // DFS vertex stack
    let mut edge_it: Vec<usize> = vec![0; n]; // per-vertex adjacency cursor
    let mut edge_stack: Vec<(V, V)> = Vec::new();
    // Scratch for collecting a BCC's vertices without a hash set.
    let mut mark = vec![u32::MAX; n];
    let mut bcc_epoch = 0u32;

    for s in 0..n as V {
        if disc[s as usize] != NONE {
            continue;
        }
        disc[s as usize] = timer;
        low[s as usize] = timer;
        timer += 1;
        stack.push(s);
        let mut root_children = 0usize;

        while let Some(&u) = stack.last() {
            let ui = u as usize;
            let range = g.arc_range(u);
            let cursor = range.start + edge_it[ui];
            if cursor < range.end {
                edge_it[ui] += 1;
                let w = g.arcs()[cursor];
                let wi = w as usize;
                if disc[wi] == NONE {
                    // Tree edge.
                    parent[wi] = u;
                    disc[wi] = timer;
                    low[wi] = timer;
                    timer += 1;
                    edge_stack.push((u, w));
                    stack.push(w);
                    if u == s {
                        root_children += 1;
                    }
                } else if w != parent[ui] && disc[wi] < disc[ui] {
                    // Back edge (pushed once, in the deeper-to-shallower
                    // direction).
                    edge_stack.push((u, w));
                    low[ui] = low[ui].min(disc[wi]);
                }
            } else {
                // u exhausted: retreat.
                stack.pop();
                if let Some(&p) = stack.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[ui]);
                    if low[ui] >= disc[pi] {
                        // p closes a BCC through child u. Non-root p is an
                        // articulation point; the root's rule (≥ 2 DFS
                        // children) is applied after the component loop.
                        if p != s {
                            is_art[pi] = true;
                        }
                        if low[ui] > disc[pi] {
                            bridges.push((p.min(u), p.max(u)));
                        }
                        num_bcc += 1;
                        if collect {
                            bcc_epoch += 1;
                            let mut members = Vec::new();
                            loop {
                                let (a, b) = edge_stack.pop().expect("edge stack underflow");
                                for x in [a, b] {
                                    if mark[x as usize] != bcc_epoch {
                                        mark[x as usize] = bcc_epoch;
                                        members.push(x);
                                    }
                                }
                                if (a, b) == (p, u) {
                                    break;
                                }
                            }
                            members.sort_unstable();
                            bccs.push(members);
                        } else {
                            while let Some(&top) = edge_stack.last() {
                                edge_stack.pop();
                                if top == (p, u) {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Root articulation rule: ≥ 2 DFS children.
        if root_children >= 2 {
            is_art[s as usize] = true;
        }
    }

    let articulation_points: Vec<V> = (0..n as V).filter(|&v| is_art[v as usize]).collect();
    bridges.sort_unstable();
    let bccs = collect.then(|| {
        let mut b = bccs;
        b.sort_unstable();
        b
    });
    HtResult {
        num_bcc,
        bccs,
        articulation_points,
        bridges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::generators::classic::*;

    #[test]
    fn known_counts() {
        assert_eq!(hopcroft_tarjan(&path(10), false).num_bcc, 9);
        assert_eq!(hopcroft_tarjan(&cycle(10), false).num_bcc, 1);
        assert_eq!(hopcroft_tarjan(&star(8), false).num_bcc, 7);
        assert_eq!(hopcroft_tarjan(&complete(8), false).num_bcc, 1);
        assert_eq!(hopcroft_tarjan(&windmill(6), false).num_bcc, 6);
        assert_eq!(hopcroft_tarjan(&petersen(), false).num_bcc, 1);
        assert_eq!(hopcroft_tarjan(&theta(2, 3, 4), false).num_bcc, 1);
        assert_eq!(hopcroft_tarjan(&clique_chain(5, 4), false).num_bcc, 5);
        assert_eq!(hopcroft_tarjan(&barbell(5, 4), false).num_bcc, 6);
    }

    #[test]
    fn collects_vertex_sets() {
        let r = hopcroft_tarjan(&windmill(3), true);
        assert_eq!(
            r.bccs.unwrap(),
            vec![vec![0, 1, 2], vec![0, 3, 4], vec![0, 5, 6]]
        );
    }

    #[test]
    fn articulation_and_bridges() {
        let r = hopcroft_tarjan(&path(5), false);
        assert_eq!(r.articulation_points, vec![1, 2, 3]);
        assert_eq!(r.bridges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);

        let r = hopcroft_tarjan(&cycle(7), false);
        assert!(r.articulation_points.is_empty());
        assert!(r.bridges.is_empty());

        let r = hopcroft_tarjan(&windmill(4), false);
        assert_eq!(r.articulation_points, vec![0]);
        assert!(r.bridges.is_empty());

        let r = hopcroft_tarjan(&barbell(4, 1), false);
        assert_eq!(r.bridges, vec![(3, 4)]);
    }

    #[test]
    fn disconnected_inputs() {
        let g = disjoint_union(&[&cycle(4), &path(3), &fastbcc_graph::Graph::empty(2)]);
        let r = hopcroft_tarjan(&g, true);
        assert_eq!(r.num_bcc, 1 + 2);
        assert_eq!(r.bccs.unwrap().len(), 3);
        assert_eq!(
            hopcroft_tarjan(&fastbcc_graph::Graph::empty(0), false).num_bcc,
            0
        );
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 2M-vertex chain: recursion would blow the stack; iteration must not.
        let g = path(2_000_000);
        let r = hopcroft_tarjan(&g, false);
        assert_eq!(r.num_bcc, 1_999_999);
        assert_eq!(r.articulation_points.len(), 1_999_998);
    }

    #[test]
    fn root_articulation_rule() {
        // Two triangles sharing vertex 0; DFS rooted at 0 has 0 as an
        // articulation point via the two-children rule.
        let g = windmill(2);
        let r = hopcroft_tarjan(&g, false);
        assert_eq!(r.articulation_points, vec![0]);
        // A cycle rooted anywhere: root has 1 child, not articulation.
        let r = hopcroft_tarjan(&cycle(4), false);
        assert!(r.articulation_points.is_empty());
    }
}
