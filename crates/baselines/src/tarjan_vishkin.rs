//! The Tarjan–Vishkin algorithm (SIAM J. Comput. 1985) with the explicit
//! `O(m)` skeleton of the paper's Appendix A — **TV**.
//!
//! TV maps every edge of `G` to a vertex of an auxiliary graph
//! `G' = (E, E')` and connects two edge-vertices `(e₁, e₂)` iff one of:
//!
//! 1. `e₁ = (u, p(u))`, `e₂ = (u, v) ∈ G∖T` and `first[v] < first[u]`;
//! 2. `e₁ = (u, p(u))`, `e₂ = (v, p(v))` and `(u, v)` is a cross edge;
//! 3. `e₁ = (u, v)` with `v = p(u)` not the root, `e₂ = (v, p(v))`, and a
//!    non-tree edge `(x, y)` exists with `x ∈ T_u`, `y ∉ T_v`
//!    (equivalently `low[u] < first[v] ∨ high[u] > last[v]`).
//!
//! Connected components of `G'` are the BCCs of `G`. The skeleton is
//! **materialized** — that is the point: Fig. 7 measures the `O(m)` space
//! blow-up against FAST-BCC's `O(n)`, and Tab. 3 its runtime overhead.
//!
//! This implementation shares First-CC/Rooting/Tagging with FAST-BCC (the
//! tags are identical — TV is where they come from historically) and
//! differs exactly in the connectivity phase.

use fastbcc_connectivity::cc::{ldd_uf_jtb, CcOpts};
use fastbcc_connectivity::ldd::LddOpts;
use fastbcc_connectivity::spanning_forest::forest_adjacency;
use fastbcc_connectivity::ConcurrentUnionFind;
use fastbcc_core::tags::compute_tags;
use fastbcc_ett::root_forest;
use fastbcc_graph::{Graph, NONE, V};
use fastbcc_primitives::pack::pack_index_usize;
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::slice::{uninit_vec, UnsafeSlice};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Tarjan–Vishkin result.
pub struct TvResult {
    /// BCC label per undirected edge (a representative edge index).
    pub edge_labels: Vec<u32>,
    /// The undirected edge list indexed by those labels.
    pub edges: Vec<(V, V)>,
    /// Number of BCCs.
    pub num_bcc: usize,
    /// Peak auxiliary bytes — dominated by the explicit skeleton.
    pub aux_peak_bytes: usize,
    /// Number of skeleton edges |E'| actually materialized.
    pub skeleton_edges: usize,
    /// End-to-end time.
    pub elapsed: Duration,
}

impl TvResult {
    /// Canonical BCC vertex sets (for cross-algorithm comparison).
    pub fn canonical_bccs(&self) -> Vec<Vec<V>> {
        let mut groups: std::collections::HashMap<u32, Vec<V>> = std::collections::HashMap::new();
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let l = self.edge_labels[i];
            let g = groups.entry(l).or_default();
            g.push(u);
            g.push(v);
        }
        let mut out: Vec<Vec<V>> = groups
            .into_values()
            .map(|mut g| {
                g.sort_unstable();
                g.dedup();
                g
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// Run Tarjan–Vishkin.
pub fn tarjan_vishkin(g: &Graph, seed: u64) -> TvResult {
    let t_start = Instant::now();
    let n = g.n();
    if n == 0 {
        return TvResult {
            edge_labels: Vec::new(),
            edges: Vec::new(),
            num_bcc: 0,
            aux_peak_bytes: 0,
            skeleton_edges: 0,
            elapsed: t_start.elapsed(),
        };
    }

    // --- shared prefix: spanning forest, rooting, tags -------------------
    let cc = ldd_uf_jtb(
        g,
        CcOpts {
            ldd: LddOpts {
                seed,
                ..Default::default()
            },
            want_forest: true,
        },
    );
    let forest = cc.forest.as_ref().unwrap();
    let tree = forest_adjacency(n, forest);
    let rf = root_forest(&tree, &cc.labels, seed ^ 0xE77);
    let (tags, table_bytes) = compute_tags(g, &rf);
    drop(rf);
    drop(tree);

    // --- undirected edge ids ---------------------------------------------
    // Edge i is the i-th arc with src < dst; eid_of_arc maps every arc to
    // its undirected id.
    let arcs = g.arcs();
    let src = arc_sources(g);
    let fwd_arcs = pack_index_usize(g.m(), |a| src[a] < arcs[a]);
    let m_edges = fwd_arcs.len();
    // SAFETY: every arc is either a forward arc or the twin of one, so the
    // scatter below writes all of `eid_of_arc` before it is read.
    let mut eid_of_arc: Vec<u32> = unsafe { uninit_vec(g.m()) };
    {
        let view = UnsafeSlice::new(&mut eid_of_arc);
        let src_ref = &src;
        par_for(m_edges, |e| {
            let a = fwd_arcs[e];
            let (u, v) = (src_ref[a], arcs[a]);
            // Reverse arc located by binary search in v's sorted list.
            let rev =
                g.arc_range(v).start + g.neighbors(v).binary_search(&u).expect("missing twin arc");
            // SAFETY: each arc written exactly once (once as forward, once
            // as the reverse of its twin).
            unsafe {
                view.write(a, e as u32);
                view.write(rev, e as u32);
            }
        });
    }
    let edges: Vec<(V, V)> = fwd_arcs.iter().map(|&a| (src[a], arcs[a])).collect();

    // Edge id of (v, p(v)) per non-root vertex.
    let mut tree_eid = vec![u32::MAX; n];
    {
        let view = UnsafeSlice::new(&mut tree_eid);
        let tags_ref = &tags;
        par_for(m_edges, |e| {
            let (u, v) = edges[e];
            if tags_ref.parent[u as usize] == v {
                // SAFETY: unique tree edge per child u.
                unsafe { view.write(u as usize, e as u32) };
            } else if tags_ref.parent[v as usize] == u {
                unsafe { view.write(v as usize, e as u32) };
            }
        });
    }

    // --- build E' (the explicit skeleton) --------------------------------
    let skeleton: Vec<(u32, u32)> = (0..g.m())
        .into_par_iter()
        .fold(Vec::new, |mut acc: Vec<(u32, u32)>, a| {
            let u = src[a];
            let v = arcs[a];
            let (ui, vi) = (u as usize, v as usize);
            let e_uv = eid_of_arc[a];
            if tags.parent[ui] == v {
                // a = (child u -> parent v): rule 3.
                if tags.parent[vi] != NONE {
                    let escapes = tags.low[ui] < tags.first[vi] || tags.high[ui] > tags.last[vi];
                    if escapes {
                        acc.push((e_uv, tree_eid[vi]));
                    }
                }
            } else if tags.parent[vi] != u {
                // Non-tree edge, processed from each endpoint once (u side).
                // Rule 1: connect (u, p(u)) with (u, v) when first[v] < first[u].
                if tags.first[vi] < tags.first[ui] && tags.parent[ui] != NONE {
                    acc.push((tree_eid[ui], e_uv));
                }
                // Rule 2: cross edges (u, v) with u < v connect the two
                // parent edges.
                if u < v && !tags.back(u, v) && !tags.back(v, u) {
                    debug_assert!(tags.parent[ui] != NONE && tags.parent[vi] != NONE);
                    acc.push((tree_eid[ui], tree_eid[vi]));
                }
            }
            acc
        })
        .reduce(Vec::new, |mut x, mut y| {
            x.append(&mut y);
            x
        });

    // --- CC over the edge-vertices ----------------------------------------
    let uf = ConcurrentUnionFind::new(m_edges);
    skeleton.par_iter().for_each(|&(e1, e2)| {
        uf.unite(e1, e2);
    });
    let edge_labels = uf.labels();
    let num_bcc = fastbcc_primitives::reduce::count(m_edges, |e| edge_labels[e] == e as u32);

    // Space: the skeleton edge list + edge-id maps + UF + tags + tables.
    let aux_peak_bytes = skeleton.len() * 8
        + eid_of_arc.len() * 4
        + edges.len() * 8
        + tree_eid.len() * 4
        + uf.bytes()
        + tags.bytes()
        + table_bytes
        + 4 * n;

    TvResult {
        edge_labels,
        edges,
        num_bcc,
        aux_peak_bytes,
        skeleton_edges: skeleton.len(),
        elapsed: t_start.elapsed(),
    }
}

/// Per-arc source vertex (flat expansion of the CSR offsets).
fn arc_sources(g: &Graph) -> Vec<V> {
    // SAFETY: the CSR arc ranges partition `0..m`, so the scatter below
    // writes every index before it is read.
    let mut src: Vec<V> = unsafe { uninit_vec(g.m()) };
    {
        let view = UnsafeSlice::new(&mut src);
        par_for(g.n(), |u| {
            for a in g.arc_range(u as V) {
                // SAFETY: arc ranges partition 0..m.
                unsafe { view.write(a, u as V) };
            }
        });
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_tarjan::hopcroft_tarjan;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, knn, rmat};

    fn check_against_ht(g: &Graph) {
        let tv = tarjan_vishkin(g, 42);
        let ht = hopcroft_tarjan(g, true);
        assert_eq!(tv.num_bcc, ht.num_bcc, "count mismatch");
        assert_eq!(tv.canonical_bccs(), ht.bccs.unwrap(), "set mismatch");
    }

    #[test]
    fn matches_hopcroft_tarjan_on_zoo() {
        for g in [
            path(20),
            cycle(12),
            star(9),
            complete(7),
            windmill(5),
            barbell(4, 3),
            petersen(),
            theta(2, 0, 4),
            clique_chain(4, 4),
            ladder(5),
            wheel(8),
            disjoint_union(&[&cycle(4), &path(5), &complete(4)]),
        ] {
            check_against_ht(&g);
        }
    }

    #[test]
    fn matches_on_generated_graphs() {
        check_against_ht(&grid2d(12, 17, true));
        check_against_ht(&rmat(9, 3000, 5));
        check_against_ht(&knn(600, 3, 8));
    }

    #[test]
    fn skeleton_is_order_m() {
        // TV's signature: skeleton edges scale with m, not n.
        let g = complete(40); // n = 40, m = 780
        let tv = tarjan_vishkin(&g, 1);
        assert!(
            tv.skeleton_edges > 2 * g.n(),
            "skeleton should be Θ(m): {} edges for n={}",
            tv.skeleton_edges,
            g.n()
        );
    }

    #[test]
    fn empty_and_trivial() {
        let tv = tarjan_vishkin(&Graph::empty(5), 0);
        assert_eq!(tv.num_bcc, 0);
        let tv = tarjan_vishkin(&path(2), 0);
        assert_eq!(tv.num_bcc, 1);
    }
}
