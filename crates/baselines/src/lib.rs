//! # fastbcc-baselines
//!
//! Every algorithm the paper evaluates against, re-implemented in full:
//!
//! * [`hopcroft_tarjan()`](hopcroft_tarjan::hopcroft_tarjan) — the sequential `O(n + m)` DFS algorithm
//!   (**SEQ** in Tab. 2). Iterative (explicit stacks), so it survives the
//!   10⁷-vertex chain inputs.
//! * [`tarjan_vishkin()`](tarjan_vishkin::tarjan_vishkin) — the canonical parallel algorithm with the
//!   **explicit `O(m)` skeleton** of Appendix A (**TV** in Tab. 3/Fig. 7);
//!   used chiefly to measure the space blow-up FAST-BCC eliminates.
//! * [`bfs_bcc()`](bfs_bcc::bfs_bcc) — a BFS-skeleton space-efficient BCC in the style of
//!   GBBS \[DBS21\] (**GBBS** in the tables): BFS spanning tree, preorder
//!   tags by level-synchronous traversals (`O(diam · log n)` span), then
//!   the same implicit-skeleton Last-CC as FAST-BCC.
//! * [`sm14()`](sm14::sm14) — a Slota–Madduri-style variant (**SM'14**): BFS tree plus
//!   iterative label-propagation connectivity; requires a connected input
//!   (the paper reports `n` = "no support" otherwise) and its round count
//!   scales with the diameter, reproducing the scalability collapse the
//!   paper observes on chains and grids.
//!
//! All four produce either the core crate's [`fastbcc_core::BccResult`]
//! representation or canonical BCC vertex sets, so the cross-algorithm
//! agreement tests compare them directly against FAST-BCC.

pub mod bfs_bcc;
pub mod bfs_tags;
pub mod hopcroft_tarjan;
pub mod sm14;
pub mod tarjan_vishkin;

pub use bfs_bcc::{bfs_bcc, bfs_bcc_in};
pub use hopcroft_tarjan::{hopcroft_tarjan, HtResult};
pub use sm14::{sm14, sm14_in};
pub use tarjan_vishkin::{tarjan_vishkin, TvResult};
