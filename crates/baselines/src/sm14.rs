//! Slota–Madduri-style BCC (HiPC'14) — the **SM'14** baseline.
//!
//! Behavioural stand-in for the better of the two SM'14 algorithms (see
//! DESIGN.md §3): a BFS spanning tree provides the skeleton exactly as in
//! [`crate::bfs_bcc()`](crate::bfs_bcc::bfs_bcc), but the skeleton's connected components are found by
//! **iterative min-label propagation** instead of union–find — the
//! coloring style of SM'14's BCC-Color. Two fidelity-relevant properties
//! are preserved:
//!
//! 1. **Connected inputs only.** The real implementation assumes one
//!    component ("through correspondence with the authors … requires the
//!    input graph to be connected"); disconnected inputs return
//!    [`Sm14Unsupported`], which the harness prints as the paper's `n`.
//! 2. **Propagation rounds ∝ component diameter.** On chains/grids the
//!    round count explodes — reproducing the scalability collapse of
//!    Tab. 2 (red entries) and Fig. 4.

use crate::bfs_tags::bfs_tags;
use fastbcc_connectivity::bfs::{bfs_forest_in, BfsScratch};
use fastbcc_core::algo::{assign_heads, BccResult, Breakdown};
use fastbcc_graph::{Graph, V};
use fastbcc_primitives::atomics::{as_atomic_u32, write_min_u32};
use fastbcc_primitives::edgemap::EdgeMapMode;
use fastbcc_primitives::par::par_for;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Error returned on disconnected input (reported as `n` in Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sm14Unsupported;

impl std::fmt::Display for Sm14Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SM'14 requires a connected input graph")
    }
}

impl std::error::Error for Sm14Unsupported {}

/// Run the SM'14-style BCC algorithm. Errors on disconnected inputs.
pub fn sm14(g: &Graph) -> Result<BccResult, Sm14Unsupported> {
    let mut scratch = BfsScratch::new();
    sm14_in(g, &mut scratch)
}

/// [`sm14`] with a caller-owned [`BfsScratch`] for the rooting phase
/// (warm repeated calls reuse the BFS forest arrays and frontier
/// staging).
pub fn sm14_in(g: &Graph, scratch: &mut BfsScratch) -> Result<BccResult, Sm14Unsupported> {
    let n = g.n();
    if n == 0 {
        return Err(Sm14Unsupported);
    }

    // ---- Rooting: BFS tree (also detects disconnectedness) ---------------
    let t1 = Instant::now();
    bfs_forest_in(g, EdgeMapMode::Auto, scratch);
    let forest = &scratch.forest;
    if forest.roots.len() != 1 {
        return Err(Sm14Unsupported);
    }
    let rooting = t1.elapsed();

    // ---- Tagging ----------------------------------------------------------
    let t2 = Instant::now();
    let tags = bfs_tags(g, forest);
    let tagging = t2.elapsed();

    // ---- Last-CC: min-label propagation over the implicit skeleton -------
    let t3 = Instant::now();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    {
        let lab = as_atomic_u32(&mut labels);
        let changed = AtomicBool::new(true);
        while changed.swap(false, Ordering::Relaxed) {
            par_for(n, |ui| {
                let u = ui as V;
                let lu = lab[ui].load(Ordering::Relaxed);
                for &v in g.neighbors(u) {
                    if tags.in_skeleton(u, v) {
                        // Pull the neighbor's smaller label.
                        let lv = lab[v as usize].load(Ordering::Relaxed);
                        if lv < lu && write_min_u32(&lab[ui], lv) {
                            changed.store(true, Ordering::Relaxed);
                        } else if lu < lv && write_min_u32(&lab[v as usize], lu) {
                            changed.store(true, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    }
    let (head, label_count, num_bcc) = assign_heads(&labels, &tags);
    let last_cc = t3.elapsed();

    Ok(BccResult {
        labels,
        head,
        label_count,
        tags,
        num_bcc,
        num_cc: 1,
        breakdown: Breakdown {
            first_cc: std::time::Duration::ZERO,
            rooting,
            tagging,
            last_cc,
        },
        aux_peak_bytes: 4 * n * 8,
        // The baselines allocate everything fresh on every call.
        fresh_alloc_bytes: 4 * n * 8,
        // ... and stage nothing in per-worker arenas.
        arena_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_tarjan::hopcroft_tarjan;
    use fastbcc_core::postprocess::canonical_bccs;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::grid2d;

    fn check(g: &Graph) {
        let got = canonical_bccs(&sm14(g).expect("connected input"));
        let want = hopcroft_tarjan(g, true).bccs.unwrap();
        assert_eq!(got, want, "n={} m={}", g.n(), g.m());
    }

    #[test]
    fn matches_hopcroft_tarjan_on_connected_zoo() {
        for g in [
            path(25),
            cycle(14),
            star(11),
            complete(8),
            windmill(7),
            barbell(5, 2),
            petersen(),
            clique_chain(6, 3),
            grid2d(9, 12, true),
        ] {
            check(&g);
        }
    }

    #[test]
    fn rejects_disconnected() {
        let g = disjoint_union(&[&cycle(4), &cycle(5)]);
        assert_eq!(sm14(&g).err(), Some(Sm14Unsupported));
        assert_eq!(sm14(&Graph::empty(3)).err(), Some(Sm14Unsupported));
        assert_eq!(sm14(&Graph::empty(0)).err(), Some(Sm14Unsupported));
    }

    #[test]
    fn single_vertex_is_connected() {
        let r = sm14(&Graph::empty(1)).unwrap();
        assert_eq!(r.num_bcc, 0);
    }
}
