//! The FAST-BCC algorithm (paper Alg. 1).
//!
//! ```text
//! 1 Compute the spanning forest F of G                      ⊳ First-CC
//! 2 Root all trees in F using the Euler tour technique      ⊳ Rooting
//! 3 Compute tags (low, high, …) of each vertex              ⊳ Tagging
//! 4 Compute the vertex label l[·] using connectivity on G
//!   with edges satisfying InSkeleton(u,v) = true            ⊳ Last-CC
//! 5 ParallelForEach u ∈ V with l[u] ≠ l[p(u)]
//! 6     Set the component head of l[u] as p(u)
//! ```
//!
//! Cost (Thm. 4.13): `O(n + m)` expected work, `O(log³ n)` span w.h.p.,
//! `O(n)` auxiliary space. Every phase is timed individually — the Fig. 5
//! breakdown experiment reads the [`Breakdown`] directly.

use crate::tags::Tags;
use fastbcc_graph::{Graph, NONE, V};
use fastbcc_primitives::par::par_for;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Which connectivity algorithm powers First-CC and Last-CC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CcScheme {
    /// LDD-UF-JTB — the paper's theoretically efficient choice (Thm. 5.1).
    #[default]
    LddUfJtb,
    /// Plain concurrent union–find over all edges (ablation; the scheme
    /// used by recent GBBS for its connectivity phase).
    UfAsync,
}

/// Options for [`fast_bcc`].
#[derive(Clone, Copy, Debug)]
pub struct BccOpts {
    /// Connectivity scheme for both CC phases.
    pub scheme: CcScheme,
    /// Hash-bag + local-search granularity control inside the LDD (the
    /// Fig. 6 "Opt."/"Orig." toggle). Ignored by [`CcScheme::UfAsync`].
    pub local_search: bool,
    /// Seed for all randomized substeps (LDD shifts, list-ranking samples).
    pub seed: u64,
}

impl Default for BccOpts {
    fn default() -> Self {
        Self {
            scheme: CcScheme::LddUfJtb,
            local_search: true,
            seed: 0xFA57_BCC,
        }
    }
}

/// Wall-clock time per phase (the Fig. 5 series).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    pub first_cc: Duration,
    pub rooting: Duration,
    pub tagging: Duration,
    pub last_cc: Duration,
}

impl Breakdown {
    /// End-to-end time.
    pub fn total(&self) -> Duration {
        self.first_cc + self.rooting + self.tagging + self.last_cc
    }
}

/// FAST-BCC output: the paper's `O(n)` BCC representation plus metadata.
pub struct BccResult {
    /// Skeleton-connectivity label per vertex. Vertices sharing a label are
    /// biconnected (Thm. 4.11).
    pub labels: Vec<u32>,
    /// Component head per label (indexed by label value, which is a vertex
    /// id); `NONE` when the label has no head (the root's own component).
    pub head: Vec<V>,
    /// Number of members per label (histogram over `labels`).
    pub label_count: Vec<u32>,
    /// The tags — kept because postprocessing (edge→BCC mapping,
    /// articulation points, bridges) reads `parent`/`first`.
    pub tags: Tags,
    /// Number of biconnected components.
    pub num_bcc: usize,
    /// Number of connected components.
    pub num_cc: usize,
    /// Per-phase wall-clock times.
    pub breakdown: Breakdown,
    /// Peak auxiliary memory (analytic accounting of the major arrays).
    pub aux_peak_bytes: usize,
    /// Buffer capacity newly allocated during this solve. A one-shot
    /// [`fast_bcc`] pays for every array; a repeated
    /// [`crate::engine::BccEngine::solve`] on a same-shaped input reports 0
    /// here (all major arrays served from the pooled [`crate::engine::Workspace`]).
    pub fresh_alloc_bytes: usize,
    /// Bytes held by the per-worker scratch arenas
    /// (`fastbcc_primitives::WorkerLocal`: LDD frontier buffers,
    /// local-search stacks, union-edge staging). Grows with the worker
    /// ceiling, not the schedule — `O(n)` per possible worker — and is
    /// included in [`aux_peak_bytes`](Self::aux_peak_bytes).
    pub arena_bytes: usize,
}

impl BccResult {
    /// The BCC id of an edge: the label of the endpoint farther from the
    /// root (for a tree edge this is the child; for a non-tree edge the
    /// descendant-most endpoint, which Thm. 4.2 places in the right BCC).
    ///
    /// Decided from `labels`/`head` alone (no tags, so it stays valid
    /// after [`crate::engine::BccEngine::apply_batch`]): co-labeled
    /// endpoints share the edge's BCC outright; otherwise exactly one
    /// endpoint is the head of the other's label class — a tree edge's
    /// child and a back edge's descendant both carry the block's label
    /// while the far endpoint heads it.
    #[inline]
    pub fn bcc_of_edge(&self, u: V, v: V) -> u32 {
        let lu = self.labels[u as usize];
        let lv = self.labels[v as usize];
        if lu == lv || self.head[lu as usize] == v {
            lu
        } else {
            debug_assert_eq!(self.head[lv as usize], u);
            lv
        }
    }

    /// True iff label `l` denotes a real BCC (≥ 1 edge).
    #[inline]
    pub fn is_bcc_label(&self, l: u32) -> bool {
        self.label_count[l as usize] >= 2 || self.head[l as usize] != NONE
    }

    /// `O(1)` biconnectivity query: do distinct vertices `u` and `v` share
    /// a BCC?
    ///
    /// The BCCs containing a vertex `x` are exactly its own label class
    /// (when that class is a real BCC) plus every label it heads. A label
    /// has exactly one head, so for any two co-members at least one carries
    /// the label itself — three comparisons decide the query.
    ///
    /// Requires `u != v`; for single-vertex membership use
    /// [`crate::postprocess::bcc_membership_counts`].
    #[inline]
    pub fn same_bcc(&self, u: V, v: V) -> bool {
        debug_assert_ne!(u, v, "same_bcc is defined for distinct vertices");
        let lu = self.labels[u as usize];
        let lv = self.labels[v as usize];
        (lu == lv && self.is_bcc_label(lu))
            || self.head[lu as usize] == v
            || self.head[lv as usize] == u
    }
}

/// Alg. 1 lines 5–6 plus the BCC census: assign the component head of each
/// label (the parent across the label's fence edges) and count BCCs.
///
/// Shared by FAST-BCC and the BFS-skeleton baselines, which produce labels
/// by a different connectivity scheme but use the same representation.
/// Writers racing on one label all store the same head (Lemma 4.9: the BCC
/// head is unique per label), but atomics keep the race well-defined.
///
/// Returns `(head, label_count, num_bcc)`.
pub fn assign_heads(labels: &[u32], tags: &Tags) -> (Vec<V>, Vec<u32>, usize) {
    let mut head = Vec::new();
    let mut label_count = Vec::new();
    let num_bcc = assign_heads_in(labels, tags, &mut head, &mut label_count);
    (head, label_count, num_bcc)
}

/// [`assign_heads`] writing into caller-owned buffers (the engine's result
/// slot). Returns the BCC count.
pub fn assign_heads_in(
    labels: &[u32],
    tags: &Tags,
    head_out: &mut Vec<V>,
    count_out: &mut Vec<u32>,
) -> usize {
    let n = labels.len();
    head_out.clear();
    head_out.resize(n, NONE);
    {
        let head_atomic = fastbcc_primitives::atomics::as_atomic_u32(head_out);
        let parent_ref = &tags.parent;
        par_for(n, |u| {
            let p = parent_ref[u];
            if p != NONE && labels[u] != labels[p as usize] {
                head_atomic[labels[u] as usize].store(p, Ordering::Relaxed);
            }
        });
    }

    // Label histogram → BCC count: a label is a BCC iff it has ≥ 2 members
    // or a head (i.e. it contains at least one edge).
    count_out.clear();
    count_out.resize(n, 0);
    {
        let counts = fastbcc_primitives::atomics::as_atomic_u32(count_out);
        par_for(n, |v| {
            counts[labels[v] as usize].fetch_add(1, Ordering::Relaxed);
        });
    }
    let head_ref = &*head_out;
    let count_ref = &*count_out;
    fastbcc_primitives::reduce::count(n, |l| count_ref[l] >= 2 || head_ref[l] != NONE)
}

/// Run FAST-BCC on `g`.
///
/// One-shot wrapper over [`crate::engine::BccEngine`]: builds a throwaway
/// scratch [`crate::engine::Workspace`], solves once, and moves the result
/// out. Callers answering repeated queries should hold a `BccEngine`
/// instead, which amortizes every major-array allocation across solves.
pub fn fast_bcc(g: &Graph, opts: BccOpts) -> BccResult {
    crate::engine::BccEngine::new(opts).solve_into(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::generators::classic::*;

    fn nbcc(g: &Graph) -> usize {
        fast_bcc(g, BccOpts::default()).num_bcc
    }

    #[test]
    fn known_bcc_counts() {
        assert_eq!(nbcc(&path(10)), 9);
        assert_eq!(nbcc(&cycle(10)), 1);
        assert_eq!(nbcc(&star(8)), 7);
        assert_eq!(nbcc(&complete(8)), 1);
        assert_eq!(nbcc(&windmill(6)), 6);
        assert_eq!(nbcc(&theta(2, 3, 4)), 1);
        assert_eq!(nbcc(&petersen()), 1);
        assert_eq!(nbcc(&binary_tree(31)), 30);
        assert_eq!(nbcc(&clique_chain(5, 4)), 5);
        assert_eq!(nbcc(&ladder(6)), 1);
        assert_eq!(nbcc(&wheel(9)), 1);
        assert_eq!(nbcc(&complete_bipartite(3, 4)), 1);
    }

    #[test]
    fn barbell_counts() {
        // Two cliques + a bridge path of length L: 2 + L BCCs.
        assert_eq!(nbcc(&barbell(5, 1)), 3);
        assert_eq!(nbcc(&barbell(5, 4)), 6);
    }

    #[test]
    fn disconnected_and_degenerate() {
        assert_eq!(nbcc(&Graph::empty(0)), 0);
        assert_eq!(nbcc(&Graph::empty(7)), 0);
        assert_eq!(
            nbcc(&disjoint_union(&[&cycle(4), &path(3), &complete(5)])),
            1 + 2 + 1
        );
        // Single edge.
        let g = path(2);
        assert_eq!(nbcc(&g), 1);
    }

    #[test]
    fn num_cc_reported() {
        let g = disjoint_union(&[&cycle(3), &cycle(3), &Graph::empty(2)]);
        let r = fast_bcc(&g, BccOpts::default());
        assert_eq!(r.num_cc, 4);
        assert_eq!(r.num_bcc, 2);
    }

    #[test]
    fn heads_are_articulation_or_root() {
        // Windmill: every component head is either the center (the unique
        // articulation point) or the spanning-tree root — the root is the
        // BCC head of whichever BCC contains it (its tree edges are always
        // fences).
        let g = windmill(4);
        let r = fast_bcc(&g, BccOpts::default());
        let root = (0..g.n() as V)
            .find(|&v| r.tags.parent[v as usize] == NONE)
            .unwrap();
        let mut heads: Vec<V> = (0..g.n())
            .filter_map(|l| (r.head[l] != NONE).then_some(r.head[l]))
            .collect();
        heads.sort_unstable();
        heads.dedup();
        assert!(
            heads.iter().all(|&h| h == 0 || h == root),
            "heads = {heads:?}, root = {root}"
        );
        assert!(
            heads.contains(&0),
            "center must head the non-root triangles"
        );
    }

    #[test]
    fn both_schemes_agree() {
        for g in [windmill(5), barbell(4, 2), cycle(30), clique_chain(4, 5)] {
            let a = fast_bcc(
                &g,
                BccOpts {
                    scheme: CcScheme::LddUfJtb,
                    ..Default::default()
                },
            );
            let b = fast_bcc(
                &g,
                BccOpts {
                    scheme: CcScheme::UfAsync,
                    ..Default::default()
                },
            );
            assert_eq!(a.num_bcc, b.num_bcc);
            assert_eq!(a.num_cc, b.num_cc);
        }
    }

    #[test]
    fn local_search_toggle_agrees() {
        let g = clique_chain(10, 5);
        let a = fast_bcc(
            &g,
            BccOpts {
                local_search: true,
                ..Default::default()
            },
        );
        let b = fast_bcc(
            &g,
            BccOpts {
                local_search: false,
                ..Default::default()
            },
        );
        assert_eq!(a.num_bcc, b.num_bcc);
    }

    #[test]
    fn breakdown_sums_to_total_and_space_positive() {
        let g = cycle(1000);
        let r = fast_bcc(&g, BccOpts::default());
        assert!(r.breakdown.total() > Duration::ZERO);
        assert!(r.aux_peak_bytes >= 4 * 1000);
    }

    #[test]
    fn edge_bcc_mapping_consistent() {
        let g = windmill(3);
        let r = fast_bcc(&g, BccOpts::default());
        // Edges of one triangle map to one BCC id; different triangles to
        // different ids.
        let mut ids = std::collections::HashSet::new();
        for t in 0..3u32 {
            let (a, b) = (1 + 2 * t, 2 + 2 * t);
            let id1 = r.bcc_of_edge(0, a);
            let id2 = r.bcc_of_edge(0, b);
            let id3 = r.bcc_of_edge(a, b);
            assert_eq!(id1, id2);
            assert_eq!(id2, id3);
            assert!(r.is_bcc_label(id1));
            ids.insert(id1);
        }
        assert_eq!(ids.len(), 3);
    }
}
