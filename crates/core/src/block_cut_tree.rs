//! Block–cut tree construction from the `O(n)` BCC representation.
//!
//! The block–cut tree (Harary–Prins) is the canonical downstream structure
//! of biconnectivity: one node per BCC ("block"), one node per articulation
//! point, and an edge whenever the articulation point belongs to the block.
//! It is a forest (one tree per connected component that contains at least
//! one edge) and drives the applications the paper's introduction cites —
//! planarity testing, centrality computation, network reliability.
//!
//! Construction is a pure postprocessing pass over [`BccResult`]:
//! `O(n)` work, `O(log n)` span.

use crate::algo::BccResult;
use crate::postprocess::bcc_membership_counts;
use fastbcc_graph::{NONE, V};
use fastbcc_primitives::pack::pack_index;

/// A node of the block–cut tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BcNode {
    /// A biconnected component, identified by its label (a vertex id).
    Block(u32),
    /// An articulation point (vertex id).
    Cut(V),
}

/// The block–cut forest of a graph.
pub struct BlockCutTree {
    /// All block nodes (labels of real BCCs), ascending.
    pub blocks: Vec<u32>,
    /// All cut nodes (articulation points), ascending.
    pub cuts: Vec<V>,
    /// Edges `(block label, articulation vertex)`; sorted.
    pub edges: Vec<(u32, V)>,
    /// CSR offsets of the cut-side adjacency: the blocks containing the cut
    /// vertex `cuts[i]` are `cut_adj[cut_offsets[i] .. cut_offsets[i + 1]]`.
    /// Length `cuts.len() + 1`. The query index
    /// ([`crate::query::BccIndex`]) consumes the same arrays when it builds
    /// the full forest CSR.
    pub cut_offsets: Vec<u32>,
    /// Block labels grouped by cut vertex (the arcs of the cut-side CSR),
    /// ascending within each group.
    pub cut_adj: Vec<u32>,
}

impl BlockCutTree {
    /// Rank of `v` in the (ascending) cut-vertex list, or `None` when `v`
    /// is not an articulation point. `O(log #cuts)`.
    #[inline]
    pub fn cut_rank(&self, v: V) -> Option<usize> {
        self.cuts.binary_search(&v).ok()
    }

    /// Degree of a cut vertex in the tree = number of blocks it belongs to.
    /// `O(log #cuts)` via the cut-side CSR offsets (0 for non-cut vertices).
    pub fn cut_degree(&self, v: V) -> usize {
        match self.cut_rank(v) {
            Some(i) => (self.cut_offsets[i + 1] - self.cut_offsets[i]) as usize,
            None => 0,
        }
    }

    /// The labels of every block containing the cut vertex `v` (empty for
    /// non-cut vertices). `O(log #cuts)`.
    pub fn blocks_of_cut(&self, v: V) -> &[u32] {
        match self.cut_rank(v) {
            Some(i) => {
                &self.cut_adj[self.cut_offsets[i] as usize..self.cut_offsets[i + 1] as usize]
            }
            None => &[],
        }
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.blocks.len() + self.cuts.len()
    }

    /// Verify the defining forest property: #edges = #nodes − #trees, and
    /// acyclicity via union–find. Panics on violation (test helper).
    pub fn verify_forest(&self) {
        use std::collections::HashMap;
        let mut id: HashMap<BcNode, u32> = HashMap::new();
        for &b in &self.blocks {
            let next = id.len() as u32;
            id.insert(BcNode::Block(b), next);
        }
        for &c in &self.cuts {
            let next = id.len() as u32;
            id.insert(BcNode::Cut(c), next);
        }
        let mut uf = fastbcc_connectivity::SeqUnionFind::new(id.len());
        for &(b, c) in &self.edges {
            let x = id[&BcNode::Block(b)];
            let y = id[&BcNode::Cut(c)];
            assert!(uf.unite(x, y), "block-cut tree has a cycle at ({b}, {c})");
        }
    }
}

/// Build the block–cut forest from a BCC result.
pub fn block_cut_tree(r: &BccResult) -> BlockCutTree {
    let n = r.labels.len();
    let counts = bcc_membership_counts(r);
    let cuts: Vec<V> = pack_index(n, |v| counts[v] >= 2);
    let is_cut = {
        let mut b = vec![false; n];
        for &c in &cuts {
            b[c as usize] = true;
        }
        b
    };
    let blocks: Vec<u32> = pack_index(n, |l| r.is_bcc_label(l as u32));

    // Edges: for every cut vertex v, connect it to (a) its own label's
    // block, and (b) every block it heads.
    let mut edges: Vec<(u32, V)> = Vec::new();
    for &v in &cuts {
        let l = r.labels[v as usize];
        if r.is_bcc_label(l) {
            edges.push((l, v));
        }
    }
    for l in 0..n {
        let h = r.head[l];
        if h != NONE && r.is_bcc_label(l as u32) && is_cut[h as usize] {
            edges.push((l as u32, h));
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Cut-side CSR: group the edges by cut rank with the shared parallel
    // counting sort (one binary-search rank per edge, computed up front).
    // Keeps `cut_degree` a two-load offset difference instead of an
    // `O(#edges)` scan per call.
    let by_rank: Vec<(usize, u32)> = edges
        .iter()
        .map(|&(b, c)| (cuts.binary_search(&c).expect("edge endpoint not a cut"), b))
        .collect();
    let (grouped, offsets) =
        fastbcc_primitives::sort::counting_sort_by(&by_rank, cuts.len(), |&(r, _)| r);
    // (The sort clamps its bucket count to >= 1; with no cuts the CSR is
    // the single sentinel offset.)
    let cut_offsets: Vec<u32> = if cuts.is_empty() {
        vec![0]
    } else {
        offsets.iter().map(|&o| o as u32).collect()
    };
    let cut_adj: Vec<u32> = grouped.iter().map(|&(_, b)| b).collect();

    BlockCutTree {
        blocks,
        cuts,
        edges,
        cut_offsets,
        cut_adj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{fast_bcc, BccOpts};
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::Graph;

    fn tree_of(g: &Graph) -> BlockCutTree {
        block_cut_tree(&fast_bcc(g, BccOpts::default()))
    }

    #[test]
    fn windmill_is_a_star() {
        let t = tree_of(&windmill(5));
        assert_eq!(t.blocks.len(), 5);
        assert_eq!(t.cuts, vec![0]);
        assert_eq!(t.edges.len(), 5);
        assert_eq!(t.cut_degree(0), 5);
        t.verify_forest();
    }

    #[test]
    fn path_alternates_blocks_and_cuts() {
        let n = 8;
        let t = tree_of(&path(n));
        assert_eq!(t.blocks.len(), n - 1); // each edge a block
        assert_eq!(t.cuts.len(), n - 2); // internal vertices
        assert_eq!(t.edges.len(), 2 * (n - 2)); // each cut joins 2 blocks
        t.verify_forest();
    }

    #[test]
    fn biconnected_graph_single_block() {
        for g in [cycle(9), complete(7), petersen()] {
            let t = tree_of(&g);
            assert_eq!(t.blocks.len(), 1);
            assert!(t.cuts.is_empty());
            assert!(t.edges.is_empty());
            t.verify_forest();
        }
    }

    #[test]
    fn barbell_shape() {
        // clique - cut - bridge-block - cut - clique
        let t = tree_of(&barbell(4, 1));
        assert_eq!(t.blocks.len(), 3);
        assert_eq!(t.cuts.len(), 2);
        assert_eq!(t.edges.len(), 4);
        t.verify_forest();
    }

    #[test]
    fn forest_property_on_disconnected() {
        let g = disjoint_union(&[&windmill(3), &path(5), &cycle(4), &Graph::empty(3)]);
        let t = tree_of(&g);
        t.verify_forest();
        // Components: windmill tree (3 blocks + 1 cut), path tree
        // (4 blocks + 3 cuts), cycle (1 block), isolated vertices (none).
        assert_eq!(t.blocks.len(), 3 + 4 + 1);
        assert_eq!(t.cuts.len(), 1 + 3);
    }

    #[test]
    fn cut_csr_mirrors_the_edge_list() {
        for g in [
            windmill(5),
            barbell(4, 2),
            clique_chain(5, 4),
            disjoint_union(&[&windmill(3), &path(6), &cycle(4)]),
        ] {
            let t = tree_of(&g);
            assert_eq!(t.cut_offsets.len(), t.cuts.len() + 1);
            assert_eq!(*t.cut_offsets.last().unwrap() as usize, t.edges.len());
            assert_eq!(t.cut_adj.len(), t.edges.len());
            for (i, &c) in t.cuts.iter().enumerate() {
                assert_eq!(t.cut_rank(c), Some(i));
                // O(#edges) oracle the CSR replaced.
                let want: Vec<u32> = t
                    .edges
                    .iter()
                    .filter(|&&(_, x)| x == c)
                    .map(|&(b, _)| b)
                    .collect();
                assert_eq!(t.blocks_of_cut(c), &want[..], "cut {c}");
                assert_eq!(t.cut_degree(c), want.len());
            }
            // Non-cut vertices: degree 0, empty block list.
            for v in 0..g.n() as V {
                if t.cut_rank(v).is_none() {
                    assert_eq!(t.cut_degree(v), 0);
                    assert!(t.blocks_of_cut(v).is_empty());
                }
            }
        }
    }

    #[test]
    fn node_and_edge_counts_satisfy_forest_equation() {
        // For each connected component with ≥1 edge, the block-cut tree is
        // a tree: edges = nodes - 1. Check aggregate over a mixture.
        let g = disjoint_union(&[&clique_chain(4, 3), &star(6)]);
        let t = tree_of(&g);
        t.verify_forest();
        let trees = 2; // one per non-trivial component
        assert_eq!(t.edges.len(), t.node_count() - trees);
    }
}
