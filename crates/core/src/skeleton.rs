//! Edge classification — the four categories of Table 1.
//!
//! FAST-BCC partitions the edges of `G` (relative to the rooted spanning
//! forest) into **plain tree edges**, **fence tree edges**, **back edges**
//! and **cross edges**; the implicit skeleton `G'` consists of the plain
//! and cross edges. The predicates live on [`crate::tags::Tags`] (they are
//! the hot path of *Last-CC*); this module adds the explicit enum view used
//! by diagnostics, tests and the benchmark harness.

use crate::tags::Tags;
use fastbcc_graph::{GraphView, V};
use fastbcc_primitives::reduce::reduce_with;

/// The category of an edge under a rooted spanning forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeClass {
    /// Tree edge kept in the skeleton.
    PlainTree,
    /// Tree edge fencing a BCC boundary (skipped by Last-CC).
    FenceTree,
    /// Non-tree edge between an ancestor/descendant pair (skipped).
    Back,
    /// Non-tree edge between unrelated vertices (kept).
    Cross,
}

/// Classify one edge.
pub fn classify(tags: &Tags, u: V, v: V) -> EdgeClass {
    if tags.is_tree_edge(u, v) {
        if tags.fence(u, v) || tags.fence(v, u) {
            EdgeClass::FenceTree
        } else {
            EdgeClass::PlainTree
        }
    } else if tags.back(u, v) || tags.back(v, u) {
        EdgeClass::Back
    } else {
        EdgeClass::Cross
    }
}

/// Histogram of edge classes over all undirected edges:
/// `[plain, fence, back, cross]`.
pub fn class_counts<G: GraphView>(g: &G, tags: &Tags) -> [usize; 4] {
    let n = g.n();
    reduce_with(
        n,
        [0usize; 4],
        |ui| {
            let u = ui as V;
            let mut acc = [0usize; 4];
            g.for_neighbors(u, |v| {
                if u < v {
                    let k = match classify(tags, u, v) {
                        EdgeClass::PlainTree => 0,
                        EdgeClass::FenceTree => 1,
                        EdgeClass::Back => 2,
                        EdgeClass::Cross => 3,
                    };
                    acc[k] += 1;
                }
            });
            acc
        },
        |a, b| [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_connectivity::cc::cc_seq;
    use fastbcc_connectivity::spanning_forest::forest_adjacency;
    use fastbcc_ett::root_forest;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::Graph;

    fn tags_of(g: &Graph) -> Tags {
        let cc = cc_seq(g, true);
        let t = forest_adjacency(g.n(), cc.forest.as_ref().unwrap());
        let rf = root_forest(&t, &cc.labels, 3);
        crate::tags::compute_tags(g, &rf).0
    }

    #[test]
    fn counts_partition_all_edges() {
        for g in [
            cycle(10),
            complete(7),
            windmill(6),
            barbell(4, 3),
            petersen(),
        ] {
            let tags = tags_of(&g);
            let c = class_counts(&g, &tags);
            assert_eq!(c.iter().sum::<usize>(), g.m_undirected());
            // Tree edges = plain + fence = n - #CC.
            assert_eq!(c[0] + c[1], g.n() - 1);
        }
    }

    #[test]
    fn path_is_all_fence() {
        let g = path(8);
        let tags = tags_of(&g);
        assert_eq!(class_counts(&g, &tags), [0, 7, 0, 0]);
    }

    #[test]
    fn complete_graph_fences_only_at_root() {
        // Root-incident tree edges are always fences (nothing can escape
        // the root's subtree — Lemma 4.9 case 1); every other tree edge of
        // K8 must be plain.
        let g = complete(8);
        let tags = tags_of(&g);
        for (u, v) in g.iter_edges() {
            if tags.is_tree_edge(u, v) {
                let parent_is_root = (tags.parent[v as usize] == u
                    && tags.parent[u as usize] == fastbcc_graph::NONE)
                    || (tags.parent[u as usize] == v
                        && tags.parent[v as usize] == fastbcc_graph::NONE);
                assert_eq!(
                    !tags.in_skeleton(u, v),
                    parent_is_root,
                    "tree edge {u}-{v}: fence iff root-incident"
                );
            }
        }
    }

    #[test]
    fn windmill_fence_count_is_two_per_triangle() {
        // Rooted at the center (the CC representative is vertex 0 for the
        // windmill as built), each triangle contributes two tree edges from
        // the center; exactly those are fences... unless the root is inside
        // a triangle. Structure-independent invariant: #fence = #BCC
        // boundaries crossed = 2 per triangle if root is center, else
        // 2(t-1) + 2. We assert the partition invariant instead.
        let t = 5;
        let g = windmill(t);
        let tags = tags_of(&g);
        let c = class_counts(&g, &tags);
        assert_eq!(c.iter().sum::<usize>(), 3 * t);
        assert_eq!(c[0] + c[1], 2 * t); // spanning tree edges
        assert!(c[1] >= 2, "at least one BCC boundary fenced: {c:?}");
    }
}
