//! Batch-dynamic BCC maintenance: [`BccEngine::apply_batch`].
//!
//! A full [`BccEngine::solve`] re-derives the spanning forest, Euler tour,
//! tags, and skeleton connectivity from scratch. When consecutive graph
//! versions differ by a small edge batch, almost all of that work re-derives
//! what is already known. `apply_batch` instead maintains the engine's
//! `O(n)` BCC representation (`labels` / `head` / `label_count` plus the
//! spanning-tree `parent` orientation) directly under the batch:
//!
//! * **Graph delta** — the CSR is updated in one pooled
//!   [`fastbcc_graph::delta::apply_delta`] pass; the superseded CSR is kept
//!   for the duration of the batch (deleted-but-unprocessed edges are still
//!   structurally present mid-batch) and then recycled.
//! * **Deletions** — a bridge deletion is `O(1)` (the child class becomes a
//!   new root). A deletion inside a larger block first tries a *two
//!   vertex-disjoint paths* certificate (Menger, `k = 2`, decided exactly by
//!   one augmenting BFS over the vertex-split residual graph): if the block
//!   minus the edge still carries two internally disjoint paths between the
//!   endpoints it remains biconnected and **no label changes at all** — for
//!   a tree edge only the stale `parent` pointer is left for the batch-end
//!   re-hang. If the certificate fails (the block splits) the block's
//!   members are collected by a bounded BFS and re-solved locally, anchored
//!   at the block head so the result splices into the global orientation.
//! * **Insertions** — an edge inside one block is a no-op. Otherwise the
//!   two head chains are walked up to their first common block and every
//!   block strictly between merges (the classic block-cut-path contraction),
//!   implemented with a label DSU so a batch of insertions is near-linear.
//! * **Re-hang** — after certificate-passed tree deletions the `parent`
//!   array is rebuilt by one multi-source BFS from the existing roots over
//!   the new graph. Any BFS parent edge of `c` lies in the block of `c`'s
//!   old parent edge (the block's vertices other than its head are all
//!   strictly below the head, so a search from the roots must enter through
//!   the head side), hence `labels`/`head` stay exactly valid.
//! * **Finalize** — three `O(n)` passes compress the DSU into `labels`,
//!   clear heads of retired classes (so downstream full-array scans like
//!   `BccIndex::build` never see ghost blocks), recount the label histogram
//!   and the BCC/CC census.
//!
//! Anything outside the fast paths — churn above [`DynOpts::max_churn_frac`],
//! a cross-component insertion, a budget overrun, or a re-hang that fails to
//! reach every vertex — falls back to a full warm `solve` on the already
//! updated graph, so `apply_batch` is *always* exact; the fallback reason is
//! reported in [`ApplyReport`] for operator visibility.
//!
//! **Tag staleness contract**: after an incremental batch the result's
//! `tags.parent` is maintained, but `first`/`last`/`low`/`high` are stale.
//! Every shipped consumer (`bcc_of_edge`, `same_bcc`, `canonical_bccs`,
//! `articulation_points`, `bridges`, `block_cut_tree`, `BccIndex::build`)
//! reads only `labels`/`head`/`label_count`/`parent`.

use crate::algo::BccResult;
use crate::engine::{result_heap_bytes, BccEngine};
use fastbcc_graph::delta::{apply_delta, DeltaScratch, GraphDelta};
use fastbcc_graph::{Graph, NONE, V};

/// Tuning knobs for [`BccEngine::apply_batch`].
#[derive(Clone, Copy, Debug)]
pub struct DynOpts {
    /// Batches larger than this fraction of the current edge count fall
    /// back to a full solve (the crossover where re-deriving everything is
    /// cheaper than per-event maintenance).
    pub max_churn_frac: f64,
    /// Vertex-visit budget for each disjoint-paths certificate BFS. The
    /// whole batch additionally shares an aggregate visit budget of
    /// `max(cert_cap, m / 4)`, so a run of expensive certificates (long
    /// thin blocks) degrades into a fallback instead of outspending the
    /// full solve it is meant to avoid.
    pub cert_cap: usize,
    /// Maximum block size (vertices) a local region re-solve may handle.
    pub sub_cap: usize,
    /// Arc-scan budget while collecting a region (guards high-degree
    /// block heads).
    pub sub_arc_cap: usize,
    /// Maximum combined head-chain length walked per insertion.
    pub chain_cap: usize,
}

impl Default for DynOpts {
    fn default() -> Self {
        Self {
            max_churn_frac: 0.05,
            cert_cap: 65536,
            sub_cap: 4096,
            sub_arc_cap: 65536,
            chain_cap: 512,
        }
    }
}

/// What the last [`BccEngine::apply_batch`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ApplyReport {
    /// True when the batch was absorbed incrementally; false when it fell
    /// back to a full solve.
    pub incremental: bool,
    /// Why the batch fell back (`None` on the incremental path).
    pub fallback: Option<&'static str>,
    /// Normalized insertions / deletions actually applied to the graph.
    pub adds: usize,
    /// Normalized deletions applied.
    pub dels: usize,
    /// Deletions absorbed in `O(1)` as bridge cuts.
    pub dels_bridge: usize,
    /// Deletions proven label-preserving by the disjoint-paths certificate.
    pub dels_cert_pass: usize,
    /// Deletions resolved by an anchored region re-solve.
    pub dels_sub_solve: usize,
    /// Deletions that were already covered by an earlier region re-solve.
    pub dels_skipped: usize,
    /// Insertions that landed inside an existing block.
    pub adds_noop: usize,
    /// Insertions that merged blocks along a block-cut path.
    pub adds_merged: usize,
    /// Insertions that linked two trees in `O(1)` (one endpoint was a
    /// tree root — e.g. an isolated vertex — hung under the other).
    pub adds_linked: usize,
    /// Cross-tree insertions absorbed by re-rooting one tree along an
    /// all-bridge root path (no label changes; `head`/`parent` flips only).
    pub adds_rerooted: usize,
    /// Whether the batch ended with a parent re-hang BFS.
    pub rehang: bool,
}

/// Per-engine batch-dynamic state. Everything is pooled and era-stamped so
/// a warm batch performs no clearing passes and no allocations.
#[derive(Default)]
pub struct DynState {
    /// Tuning knobs (see [`DynOpts`]).
    pub opts: DynOpts,
    graph: Option<Graph>,
    delta: GraphDelta,
    delta_scratch: DeltaScratch,
    report: Option<ApplyReport>,
    // Label DSU (identity outside a batch; `touched` undoes unions).
    dsu: Vec<u32>,
    touched: Vec<u32>,
    // Era-stamped scratch shared by the BFS passes.
    era: u32,
    mark: Vec<u32>,       // n: member / re-hang visitation
    queue: Vec<V>,        // vertex queue
    bfs_mark: Vec<u32>,   // n: certificate BFS1
    bfs_parent: Vec<V>,   // n
    state_mark: Vec<u32>, // 2n: residual-BFS states
    state_queue: Vec<u32>,
    p1_era: Vec<u32>, // n: membership of the first path
    p1_next: Vec<V>,
    p1_prev: Vec<V>,
    cert_era: u32,
    // Remaining aggregate incremental work (certificate visits, region
    // vertices/arcs) for the current batch; exhaustion => FB_BUDGET.
    work_budget: usize,
    // Chain-walk scratch (label -> side/pos/entry, era-stamped).
    chain_era: u32,
    seen_era: Vec<u32>,
    seen_side: Vec<u8>,
    seen_pos: Vec<u32>,
    seen_entry: Vec<V>,
    chain_a: Vec<(u32, V)>,
    chain_b: Vec<(u32, V)>,
    // Region re-solve scratch.
    members: Vec<V>,
    local_id: Vec<u32>,
    sub_pairs: Vec<(u32, u32)>,
    sub_offsets: Vec<usize>,
    sub_cursor: Vec<usize>,
    sub_arcs: Vec<V>,
    sub: Option<Box<BccEngine>>,
}

/// [`ApplyReport::fallback`] reason: the batch exceeded
/// [`DynOpts::max_churn_frac`].
pub const FB_CHURN: &str = "churn";
/// [`ApplyReport::fallback`] reason: an insertion joined two connected
/// components (the block-cut chain walk found no common block).
pub const FB_CROSS: &str = "cross_component";
/// [`ApplyReport::fallback`] reason: a block-cut chain walk exceeded
/// [`DynOpts::chain_cap`].
pub const FB_CHAIN: &str = "chain_cap";
/// [`ApplyReport::fallback`] reason: an affected region exceeded
/// [`DynOpts::sub_cap`] / [`DynOpts::sub_arc_cap`] (or had no anchor).
pub const FB_REGION: &str = "region_cap";
/// [`ApplyReport::fallback`] reason: the post-deletion re-hang BFS did not
/// reach every vertex (a certificate raced a same-batch disconnection).
pub const FB_REHANG: &str = "rehang_incomplete";
/// [`ApplyReport::fallback`] reason: the batch's aggregate incremental
/// work (certificates, region re-solves, component re-roots) exhausted the
/// per-batch work budget — a round this expensive cannot beat the full
/// solve it is racing, so it stops paying twice and takes it directly.
pub const FB_BUDGET: &str = "work_budget";

/// Every [`ApplyReport::fallback`] reason, for exhaustive stats mapping.
pub const FALLBACK_REASONS: [&str; 6] = [
    FB_CHURN, FB_CROSS, FB_CHAIN, FB_REGION, FB_REHANG, FB_BUDGET,
];

/// Outcome of one [`BccEngine::try_region_reroot`] probe.
enum RegionReroot {
    /// Region spliced; the insertion is fully absorbed.
    Done,
    /// The flood exceeded the current vertex/arc cap — retry at a larger
    /// cap or on the other side.
    TooBig,
    /// The flood completed but the region has a second tie to the anchor;
    /// no cap level can change this, so the side is dead for this edge.
    Invalid,
}

impl DynState {
    /// Drop the attached graph (if any), returning it. The engine's
    /// view-generic solve path calls this: after solving a graph the
    /// engine does not own, keeping a stale attached CSR around would let
    /// [`BccEngine::apply_batch`] silently evolve the *wrong* graph —
    /// detaching instead makes the next `apply_batch` panic with its
    /// "requires a prior attach()" message.
    pub(crate) fn detach_graph(&mut self) -> Option<Graph> {
        self.graph.take()
    }

    fn reset_for(&mut self, n: usize) {
        self.dsu.clear();
        self.dsu.extend(0..n as u32);
        self.touched.clear();
        self.touched.reserve(n);
        self.era = 0;
        self.cert_era = 0;
        self.chain_era = 0;
        self.mark.clear();
        self.mark.resize(n, 0);
        self.bfs_mark.clear();
        self.bfs_mark.resize(n, 0);
        self.bfs_parent.clear();
        self.bfs_parent.resize(n, NONE);
        self.state_mark.clear();
        self.state_mark.resize(2 * n, 0);
        self.p1_era.clear();
        self.p1_era.resize(n, 0);
        self.p1_next.clear();
        self.p1_next.resize(n, NONE);
        self.p1_prev.clear();
        self.p1_prev.resize(n, NONE);
        self.seen_era.clear();
        self.seen_era.resize(n, 0);
        self.seen_side.clear();
        self.seen_side.resize(n, 0);
        self.seen_pos.clear();
        self.seen_pos.resize(n, 0);
        self.seen_entry.clear();
        self.seen_entry.resize(n, NONE);
        self.queue.clear();
        self.queue.reserve(n);
        self.state_queue.clear();
        self.state_queue.reserve(2 * n);
        self.members.clear();
        self.members.reserve(self.opts.sub_cap.min(n) + 1);
        self.local_id.clear();
        self.local_id.resize(n, 0);
        self.chain_a.clear();
        self.chain_a.reserve(self.opts.chain_cap + 1);
        self.chain_b.clear();
        self.chain_b.reserve(self.opts.chain_cap + 1);
        self.sub_pairs.clear();
        self.sub_pairs.reserve(self.opts.sub_arc_cap);
        self.sub_offsets.clear();
        self.sub_offsets.reserve(self.opts.sub_cap.min(n) + 2);
        self.sub_cursor.clear();
        self.sub_cursor.reserve(self.opts.sub_cap.min(n) + 2);
        self.sub_arcs.clear();
        self.sub_arcs.reserve(self.opts.sub_arc_cap);
        self.report = None;
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.dsu[x as usize] != x {
            let gp = self.dsu[self.dsu[x as usize] as usize];
            self.dsu[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn heap_bytes(&self) -> usize {
        let vb = |c: usize| c * 4;
        self.graph.as_ref().map_or(0, |g| g.capacity_bytes())
            + (self.delta.adds.capacity() + self.delta.dels.capacity()) * 8
            + self.delta_scratch.heap_bytes()
            + vb(self.dsu.capacity())
            + vb(self.touched.capacity())
            + vb(self.mark.capacity())
            + vb(self.queue.capacity())
            + vb(self.bfs_mark.capacity())
            + vb(self.bfs_parent.capacity())
            + vb(self.state_mark.capacity())
            + vb(self.state_queue.capacity())
            + vb(self.p1_era.capacity())
            + vb(self.p1_next.capacity())
            + vb(self.p1_prev.capacity())
            + vb(self.seen_era.capacity())
            + self.seen_side.capacity()
            + vb(self.seen_pos.capacity())
            + vb(self.seen_entry.capacity())
            + (self.chain_a.capacity() + self.chain_b.capacity()) * 8
            + vb(self.members.capacity())
            + vb(self.local_id.capacity())
            + self.sub_pairs.capacity() * 8
            + self.sub_offsets.capacity() * 8
            + self.sub_cursor.capacity() * 8
            + vb(self.sub_arcs.capacity())
            + self.sub.as_ref().map_or(0, |s| {
                s.workspace().heap_bytes() + result_heap_bytes(&s.result)
            })
    }

    /// Exact Menger `k = 2` test: are there two internally vertex-disjoint
    /// `u`–`v` paths in `g`? `Some(true)` / `Some(false)` are definitive;
    /// `None` means the visit budget ran out.
    fn cert_two_disjoint(&mut self, g: &Graph, u: V, v: V) -> Option<bool> {
        // Fast path: two common neighbors are two internally vertex-disjoint
        // u→v paths outright (Menger, k = 2, sufficiency). Adjacency is
        // sorted, so one merge pass over the two lists decides it — this
        // settles almost every deletion inside a dense block without
        // touching the BFS machinery below, and is free of budget charge.
        {
            let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
            let mut common = 0usize;
            while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => a = &a[1..],
                    std::cmp::Ordering::Greater => b = &b[1..],
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        if common >= 2 {
                            return Some(true);
                        }
                        a = &a[1..];
                        b = &b[1..];
                    }
                }
            }
        }
        let r = self.cert_bfs(g, u, v);
        let spent = self.queue.len() + self.state_queue.len() / 2;
        self.work_budget = self.work_budget.saturating_sub(spent.max(1));
        r
    }

    /// The exact (BFS) part of the certificate; charged against the
    /// per-batch aggregate visit budget by the wrapper above.
    fn cert_bfs(&mut self, g: &Graph, u: V, v: V) -> Option<bool> {
        let cap = self.opts.cert_cap.min(self.work_budget);
        self.state_queue.clear();
        if cap == 0 {
            return None;
        }
        self.cert_era = self.cert_era.wrapping_add(1);
        let era = self.cert_era;

        // BFS1: any u → v path (the flow's first unit). The target test
        // runs at push time so the search stops without expanding the
        // whole final frontier.
        self.queue.clear();
        self.queue.push(u);
        self.bfs_mark[u as usize] = era;
        let mut qi = 0;
        let mut found = u == v;
        'bfs1: while qi < self.queue.len() {
            let x = self.queue[qi];
            qi += 1;
            if self.queue.len() > cap {
                return None;
            }
            for &w in g.neighbors(x) {
                if self.bfs_mark[w as usize] != era {
                    self.bfs_mark[w as usize] = era;
                    self.bfs_parent[w as usize] = x;
                    if w == v {
                        found = true;
                        break 'bfs1;
                    }
                    self.queue.push(w);
                }
            }
        }
        if !found {
            return Some(false);
        }

        // Record P1 (successor/predecessor along the path, era-stamped).
        let mut cur = v;
        while cur != u {
            let pr = self.bfs_parent[cur as usize];
            self.p1_era[cur as usize] = era;
            self.p1_era[pr as usize] = era;
            self.p1_next[pr as usize] = cur;
            self.p1_prev[cur as usize] = pr;
            cur = pr;
        }
        let on_p1 = |s: &Self, w: V| s.p1_era[w as usize] == era;
        let p1_arc = |s: &Self, w: V, x: V| on_p1(s, w) && w != v && s.p1_next[w as usize] == x;

        // Augmenting BFS over the vertex-split residual graph. States are
        // `2w` (w_in) / `2w + 1` (w_out); internal P1 vertices have their
        // in→out arc saturated, P1 edge arcs are traversable only backward.
        self.state_queue.clear();
        self.state_queue.push(2 * u + 1);
        self.state_mark[(2 * u + 1) as usize] = era;
        let mut qi = 0;
        while qi < self.state_queue.len() {
            if self.state_queue.len() > 2 * cap {
                return None;
            }
            let s = self.state_queue[qi];
            qi += 1;
            let w = s / 2;
            let internal = on_p1(self, w) && w != u && w != v;
            if s & 1 == 1 {
                // w_out: forward edge arcs not used by P1, plus the
                // residual of the vertex arc when saturated.
                if internal && self.state_mark[(2 * w) as usize] != era {
                    self.state_mark[(2 * w) as usize] = era;
                    self.state_queue.push(2 * w);
                }
                for &x in g.neighbors(w) {
                    if p1_arc(self, w, x) {
                        continue;
                    }
                    if x == v {
                        return Some(true);
                    }
                    if self.state_mark[(2 * x) as usize] != era {
                        self.state_mark[(2 * x) as usize] = era;
                        self.state_queue.push(2 * x);
                    }
                }
            } else {
                // w_in: the vertex arc when unsaturated, or the residual of
                // the saturated P1 edge arc entering w.
                if internal {
                    let pr = self.p1_prev[w as usize];
                    let t = 2 * pr + 1;
                    if self.state_mark[t as usize] != era {
                        self.state_mark[t as usize] = era;
                        self.state_queue.push(t);
                    }
                } else if self.state_mark[(2 * w + 1) as usize] != era {
                    self.state_mark[(2 * w + 1) as usize] = era;
                    self.state_queue.push(2 * w + 1);
                }
            }
        }
        Some(false)
    }
}

/// Deterministic circulant ring with `n` vertices and at least
/// `arcs_target` directed arcs (each vertex adjacent to its `d` nearest
/// ring neighbors on both sides): the warm-up workload for the region
/// sub-engine, dense enough to settle every m-scaled table at the region
/// arc budget.
fn warm_circulant(n: usize, arcs_target: usize) -> Graph {
    let d = arcs_target.div_ceil(2 * n).clamp(1, (n - 1) / 2);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut arcs = Vec::with_capacity(2 * d * n);
    let mut row: Vec<V> = Vec::with_capacity(2 * d);
    offsets.push(0);
    for i in 0..n {
        row.clear();
        for k in 1..=d {
            row.push(((i + k) % n) as V);
            row.push(((i + n - k) % n) as V);
        }
        row.sort_unstable();
        arcs.extend_from_slice(&row);
        offsets.push(arcs.len());
    }
    Graph::from_raw_parts(offsets, arcs)
}

impl BccEngine {
    /// Attach `g` as the engine's maintained graph and solve it fully.
    /// Subsequent [`apply_batch`](Self::apply_batch) calls evolve this
    /// graph in place. Sizes and pre-warms every batch-dynamic buffer
    /// (including the boxed region sub-engine) so warm incremental batches
    /// report `fresh_alloc_bytes == 0`.
    pub fn attach(&mut self, g: &Graph) -> &BccResult {
        let n = g.n();
        let opts = self.opts();
        self.dynamic.reset_for(n);
        // Re-attaching reuses the previous graph's CSR buffers (a serving
        // rebuilder attaches on every full rebuild; warm re-attaches of a
        // same-sized graph must not allocate).
        self.dynamic.graph = Some(match self.dynamic.graph.take() {
            Some(old) => {
                let (mut offsets, mut arcs) = old.into_raw_parts();
                offsets.clear();
                offsets.extend_from_slice(g.offsets());
                arcs.clear();
                arcs.extend_from_slice(g.arcs());
                Graph::from_raw_parts(offsets, arcs)
            }
            None => g.clone(),
        });
        if self.dynamic.sub.is_none() && n > 0 {
            let warm_n = self.dynamic.opts.sub_cap.min(n).max(8);
            let warm_arcs = self.dynamic.opts.sub_arc_cap.min(g.m()).max(2 * warm_n);
            let mut sub = Box::new(BccEngine::with_capacity(
                self.dynamic.opts.sub_cap.min(n) + 1,
                self.dynamic.opts.sub_arc_cap,
                opts,
            ));
            // Two throwaway solves settle the lazily sized tables at full
            // region scale: the circulant (one giant block, arc count at
            // the region budget — deterministic, unlike a sampled
            // generator, so it never dedupes below the target) covers the
            // m-scaled edge arrays, and the path (`warm_n - 1` single-edge
            // blocks) covers everything scaled by block or articulation
            // counts, which the single-block circulant leaves cold.
            sub.solve(&warm_circulant(warm_n, warm_arcs));
            sub.solve(&fastbcc_graph::generators::classic::path(warm_n));
            self.dynamic.sub = Some(sub);
        }
        self.solve(g)
    }

    /// The graph the engine currently maintains (set by
    /// [`attach`](Self::attach), evolved by [`apply_batch`](Self::apply_batch)).
    pub fn graph(&self) -> Option<&Graph> {
        self.dynamic.graph.as_ref()
    }

    /// What the most recent [`apply_batch`](Self::apply_batch) did.
    pub fn last_apply_report(&self) -> Option<ApplyReport> {
        self.dynamic.report
    }

    /// The batch-dynamic tuning knobs (mutable; takes effect next batch).
    pub fn dyn_opts_mut(&mut self) -> &mut DynOpts {
        &mut self.dynamic.opts
    }

    /// Apply an undirected edge batch to the attached graph and bring the
    /// BCC result up to date, incrementally when the batch allows it (see
    /// the [module docs](crate::dynamic)). Insertions of present edges and
    /// deletions of absent ones are ignored. Panics if no graph is
    /// attached. Returns the updated result; query the taken path via
    /// [`last_apply_report`](Self::last_apply_report).
    pub fn apply_batch(&mut self, adds: &[(V, V)], dels: &[(V, V)]) -> &BccResult {
        let old = self
            .dynamic
            .graph
            .take()
            .expect("apply_batch requires a prior attach()");
        let n = old.n();
        let heap_before = self.workspace().heap_bytes()
            + result_heap_bytes(&self.result)
            + self.dynamic.heap_bytes()
            + old.capacity_bytes();

        // Normalize against the current graph: effective deletions are
        // present edges, effective insertions are absent non-loop pairs —
        // plus present pairs that this same batch also deletes, so a
        // delete-then-readd lands back at "edge present" (the
        // [`GraphDelta`] contract) instead of letting the delete win.
        let dy = &mut self.dynamic;
        dy.delta.adds.clear();
        dy.delta.dels.clear();
        for &(a, b) in dels {
            let (u, v) = (a.min(b), a.max(b));
            if u != v && (v as usize) < n && old.has_edge(u, v) {
                dy.delta.dels.push((u, v));
            }
        }
        dy.delta.dels.sort_unstable();
        dy.delta.dels.dedup();
        for &(a, b) in adds {
            let (u, v) = (a.min(b), a.max(b));
            if u != v
                && (v as usize) < n
                && (!old.has_edge(u, v) || dy.delta.dels.binary_search(&(u, v)).is_ok())
            {
                dy.delta.adds.push((u, v));
            }
        }
        dy.delta.adds.sort_unstable();
        dy.delta.adds.dedup();

        let mut report = ApplyReport {
            adds: dy.delta.adds.len(),
            dels: dy.delta.dels.len(),
            ..Default::default()
        };

        if dy.delta.is_empty() {
            self.dynamic.graph = Some(old);
            report.incremental = true;
            self.dynamic.report = Some(report);
            self.result.fresh_alloc_bytes = 0;
            return &self.result;
        }

        let new = {
            let dy = &mut self.dynamic;
            apply_delta(&old, &dy.delta, &mut dy.delta_scratch)
        };

        let budget = ((old.m_undirected() as f64) * self.dynamic.opts.max_churn_frac).max(1.0);
        if (report.adds + report.dels) as f64 > budget {
            return self.fallback(old, new, report, FB_CHURN, heap_before);
        }

        // Aggregate work budget for the whole batch — certificates,
        // region re-solves, and component re-roots all draw on it. Scaled
        // to one structural pass over the graph: generous enough that
        // cheap local repairs never notice it, but a round this machinery
        // cannot actually win stops paying twice (incremental attempt
        // plus the fallback solve) long before matching the full solve's
        // cost.
        self.dynamic.work_budget = (old.n() + old.m()).max(self.dynamic.opts.cert_cap);

        // ---- Deletions --------------------------------------------------
        let mut need_rehang = false;
        for i in 0..self.dynamic.delta.dels.len() {
            if self.dynamic.work_budget == 0 {
                return self.fallback(old, new, report, FB_BUDGET, heap_before);
            }
            let (u, v) = self.dynamic.delta.dels[i];
            let res = &mut self.result;
            let (pu, pv) = (res.tags.parent[u as usize], res.tags.parent[v as usize]);
            let tree_child = if pv == u {
                Some(v)
            } else if pu == v {
                Some(u)
            } else {
                None
            };
            if let Some(c) = tree_child {
                let p = if c == u { v } else { u };
                if res.labels[c as usize] == c
                    && res.head[c as usize] == p
                    && res.label_count[c as usize] == 1
                {
                    // Bridge: the child class becomes a root; no other
                    // label moves. CC/BCC counts are fixed by finalize.
                    res.head[c as usize] = NONE;
                    res.tags.parent[c as usize] = NONE;
                    report.dels_bridge += 1;
                    continue;
                }
                let region = res.labels[c as usize];
                if self.dynamic.cert_two_disjoint(&new, u, v) == Some(true) {
                    // Block stays biconnected; only parent[c] went stale.
                    report.dels_cert_pass += 1;
                    need_rehang = true;
                    continue;
                }
                if !self.sub_solve(&old, &new, region) {
                    return self.fallback(old, new, report, FB_REGION, heap_before);
                }
                report.dels_sub_solve += 1;
            } else {
                let res = &self.result;
                let (lu, lv) = (res.labels[u as usize], res.labels[v as usize]);
                let region = if lu == lv || res.head[lu as usize] == v {
                    lu
                } else if res.head[lv as usize] == u {
                    lv
                } else {
                    // An earlier region re-solve already separated the
                    // endpoints; this deletion is structurally done.
                    report.dels_skipped += 1;
                    continue;
                };
                if self.dynamic.cert_two_disjoint(&new, u, v) == Some(true) {
                    report.dels_cert_pass += 1;
                    continue;
                }
                if !self.sub_solve(&old, &new, region) {
                    return self.fallback(old, new, report, FB_REGION, heap_before);
                }
                report.dels_sub_solve += 1;
            }
        }

        // ---- Insertions -------------------------------------------------
        for i in 0..self.dynamic.delta.adds.len() {
            if self.dynamic.work_budget == 0 {
                return self.fallback(old, new, report, FB_BUDGET, heap_before);
            }
            let (u, v) = self.dynamic.delta.adds[i];
            let lu = self.dynamic.find(self.result.labels[u as usize]);
            let lv = self.dynamic.find(self.result.labels[v as usize]);
            if lu == lv || self.result.head[lu as usize] == v || self.result.head[lv as usize] == u
            {
                report.adds_noop += 1;
                continue;
            }
            // Forest link: an endpoint that is itself a tree root hangs
            // directly under the other endpoint in O(1) — the new edge is
            // then a bridge between two trees (the common shape for
            // insertions touching isolated vertices). A head-chain root
            // walk from the other endpoint guards the same-tree case (an
            // edge up to the own root closes a cycle and must go through
            // the block-path merge below instead).
            let (pu, pv) = (
                self.result.tags.parent[u as usize],
                self.result.tags.parent[v as usize],
            );
            if pu == NONE || pv == NONE {
                let (root_end, anchor) = if pv == NONE { (v, u) } else { (u, v) };
                let cross_tree = if self.result.tags.parent[anchor as usize] == NONE {
                    // Both endpoints are roots; a tree has one root, so
                    // two distinct roots are two distinct trees.
                    true
                } else {
                    matches!(self.root_of(anchor), Some(r) if r != root_end)
                };
                if cross_tree {
                    let res = &mut self.result;
                    debug_assert_eq!(
                        if root_end == v { lv } else { lu },
                        root_end,
                        "a tree root keeps its singleton class"
                    );
                    res.tags.parent[root_end as usize] = anchor;
                    res.head[root_end as usize] = anchor;
                    report.adds_linked += 1;
                    continue;
                }
            }
            match self.merge_path(u, lu, v, lv) {
                Ok(()) => report.adds_merged += 1,
                Err(reason) => {
                    // A confirmed cross-tree insertion can still be absorbed
                    // two ways. The cheap one re-roots a tree whose root
                    // path is all bridges (pure `head`/`parent` flips) — it
                    // needs `labels`/`label_count` to be exact, which only
                    // holds while the batch has performed no merges or
                    // region re-solves and no re-hang is pending. The
                    // general one re-solves one endpoint's whole component
                    // locally and hangs it under the other, gated only by
                    // the sub-solve caps.
                    if reason == FB_CROSS {
                        let mut rescued = report.adds_merged == 0
                            && report.dels_sub_solve == 0
                            && !need_rehang
                            && self.try_reroot_link(u, v);
                        // Escalating caps: probe both sides small first so
                        // the common shape — a tiny satellite component
                        // joining a giant one — never pays for flooding
                        // the giant side to the full region budget. A side
                        // whose flood *completed* but was structurally
                        // invalid is dead at every cap level (the member
                        // set would not change), so only cap-bounded
                        // failures are retried.
                        let (vmax, amax) =
                            (self.dynamic.opts.sub_cap, self.dynamic.opts.sub_arc_cap);
                        let (mut vcap, mut acap) = (vmax.min(512), amax.min(8192));
                        let (mut dead_u, mut dead_v) = (false, false);
                        while !(rescued || dead_u && dead_v) {
                            for (root_end, anchor, dead) in
                                [(u, v, &mut dead_u), (v, u, &mut dead_v)]
                            {
                                if *dead || rescued {
                                    continue;
                                }
                                match self.try_region_reroot(&new, root_end, anchor, vcap, acap) {
                                    RegionReroot::Done => rescued = true,
                                    RegionReroot::TooBig => {}
                                    RegionReroot::Invalid => *dead = true,
                                }
                            }
                            if vcap == vmax && acap == amax {
                                break;
                            }
                            vcap = (vcap * 8).min(vmax);
                            acap = (acap * 8).min(amax);
                        }
                        if rescued {
                            report.adds_rerooted += 1;
                            continue;
                        }
                    }
                    return self.fallback(old, new, report, reason, heap_before);
                }
            }
        }

        // ---- Re-hang ----------------------------------------------------
        if need_rehang {
            report.rehang = true;
            let dy = &mut self.dynamic;
            let parent = &mut self.result.tags.parent;
            dy.era = dy.era.wrapping_add(1);
            let era = dy.era;
            dy.queue.clear();
            for r in 0..n {
                if parent[r] == NONE {
                    dy.mark[r] = era;
                    dy.queue.push(r as V);
                }
            }
            let mut qi = 0;
            while qi < dy.queue.len() {
                let x = dy.queue[qi];
                qi += 1;
                for &w in new.neighbors(x) {
                    if dy.mark[w as usize] != era {
                        dy.mark[w as usize] = era;
                        parent[w as usize] = x;
                        dy.queue.push(w);
                    }
                }
            }
            if dy.queue.len() != n {
                return self.fallback(old, new, report, FB_REHANG, heap_before);
            }
        }

        // ---- Finalize ---------------------------------------------------
        {
            let dy = &mut self.dynamic;
            let res = &mut self.result;
            for x in res.labels.iter_mut() {
                *x = {
                    let mut l = *x;
                    while dy.dsu[l as usize] != l {
                        let gp = dy.dsu[dy.dsu[l as usize] as usize];
                        dy.dsu[l as usize] = gp;
                        l = gp;
                    }
                    l
                };
            }
            for l in 0..n {
                if res.labels[l] != l as u32 {
                    res.head[l] = NONE;
                }
            }
            res.label_count.clear();
            res.label_count.resize(n, 0);
            for v in 0..n {
                res.label_count[res.labels[v] as usize] += 1;
            }
            res.num_bcc = (0..n)
                .filter(|&l| res.label_count[l] >= 2 || res.head[l] != NONE)
                .count();
            res.num_cc = (0..n).filter(|&v| res.tags.parent[v] == NONE).count();
            for &t in &dy.touched {
                dy.dsu[t as usize] = t;
            }
            dy.touched.clear();
        }

        self.dynamic.delta_scratch.recycle(old);
        self.dynamic.graph = Some(new);
        report.incremental = true;
        self.dynamic.report = Some(report);
        let heap_after = self.workspace().heap_bytes()
            + result_heap_bytes(&self.result)
            + self.dynamic.heap_bytes();
        self.result.fresh_alloc_bytes = heap_after.saturating_sub(heap_before);
        self.result.breakdown = Default::default();
        &self.result
    }

    /// Full warm re-solve of the already-updated graph; the exit ramp for
    /// every condition the incremental paths don't cover.
    fn fallback(
        &mut self,
        old: Graph,
        new: Graph,
        mut report: ApplyReport,
        reason: &'static str,
        _heap_before: usize,
    ) -> &BccResult {
        {
            let dy = &mut self.dynamic;
            for i in 0..dy.touched.len() {
                let t = dy.touched[i];
                dy.dsu[t as usize] = t;
            }
            dy.touched.clear();
            dy.delta_scratch.recycle(old);
        }
        self.solve(&new);
        self.dynamic.graph = Some(new);
        report.incremental = false;
        report.fallback = Some(reason);
        self.dynamic.report = Some(report);
        &self.result
    }

    /// The root vertex of `x`'s tree, found by climbing the block head
    /// chain (class → head vertex → its class → …; each step jumps a
    /// whole block, so the walk length is the tree's *block* depth, not
    /// its vertex depth). `None` when the walk exceeds
    /// [`DynOpts::chain_cap`]. Relies on the rep-id invariant: the
    /// terminal class (`head == NONE`) is a root's singleton class, whose
    /// class id *is* the root vertex.
    fn root_of(&mut self, x: V) -> Option<V> {
        let cap = self.dynamic.opts.chain_cap;
        let mut l = self.dynamic.find(self.result.labels[x as usize]);
        for _ in 0..=cap {
            let h = self.result.head[l as usize];
            if h == NONE {
                return Some(l);
            }
            l = self.dynamic.find(self.result.labels[h as usize]);
        }
        None
    }

    /// Absorb a confirmed cross-tree insertion `(u, v)` by re-rooting the
    /// endpoint tree whose root path consists solely of bridge blocks,
    /// then hanging that endpoint under the other. A flipped bridge keeps
    /// its class id, member, and count — the child vertex of the reversed
    /// edge already *is* its singleton class — so the whole re-root is
    /// pure `parent`/`head` updates with zero label surgery. The two root
    /// paths are climbed in lockstep and the shallower all-bridge side
    /// wins, bounding the work by twice the smaller endpoint depth.
    /// Returns false (caller falls back) when neither path qualifies.
    ///
    /// Callers must guarantee `labels`/`label_count` are exact (no merges
    /// or region re-solves this batch, no re-hang pending) and that
    /// `merge_path` has already proven the endpoints lie in different
    /// trees.
    fn try_reroot_link(&mut self, u: V, v: V) -> bool {
        let mut cur = [u, v];
        let mut alive = [true, true];
        let dy = &mut self.dynamic;
        dy.chain_a.clear();
        dy.chain_b.clear();
        let mut steps = 0usize;
        let winner = 'climb: loop {
            steps += 1;
            if steps > dy.opts.chain_cap {
                // Deep flips stay within the reserved chain buffers; the
                // component-sized region rescue covers long paths.
                return false;
            }
            let mut progressed = false;
            for side in 0..2 {
                if !alive[side] {
                    continue;
                }
                let c = cur[side];
                let p = self.result.tags.parent[c as usize];
                if p == NONE {
                    // Reached this side's root with every climbed edge a
                    // bridge: re-root this tree.
                    break 'climb side;
                }
                let l = dy.find(self.result.labels[c as usize]);
                if l != c
                    || self.result.head[c as usize] != p
                    || self.result.label_count[c as usize] != 1
                {
                    // The parent edge sits inside a non-trivial block;
                    // re-rooting through it would need label surgery.
                    alive[side] = false;
                    continue;
                }
                progressed = true;
                if side == 0 {
                    dy.chain_a.push((c, p));
                } else {
                    dy.chain_b.push((c, p));
                }
                cur[side] = p;
            }
            if !progressed {
                return false;
            }
        };

        let (root_end, anchor) = if winner == 0 { (u, v) } else { (v, u) };
        let pairs = if winner == 0 {
            &dy.chain_a
        } else {
            &dy.chain_b
        };
        let res = &mut self.result;
        // Reverse each path edge: its former parent becomes the bridge
        // child, which is its own (still-singleton) class.
        for &(c, p) in pairs.iter() {
            debug_assert_eq!(res.labels[p as usize], p, "flip target keeps its class");
            res.tags.parent[p as usize] = c;
            res.head[p as usize] = c;
        }
        res.tags.parent[root_end as usize] = anchor;
        res.head[root_end as usize] = anchor;
        true
    }

    /// Absorb a cross-tree insertion by re-solving `root_end`'s *entire*
    /// component locally, rooted at `root_end`, then hanging it under
    /// `anchor` as a fresh bridge — the general rescue for insertions that
    /// [`Self::try_reroot_link`] cannot flip (root paths through
    /// non-trivial blocks), bounded by the component size instead of any
    /// label-exactness precondition.
    ///
    /// The component is collected by BFS over the *new* adjacency with the
    /// `anchor` vertex held out, so the region is closed under every
    /// remaining batch insertion except edges incident to `anchor` itself:
    /// the local solve computes end-of-batch labels for the region and
    /// later intra-region insertions degrade to no-ops. The rescue is
    /// abandoned if the anchor has any new-graph edge into the region
    /// other than `(root_end, anchor)` itself — a second tie means the
    /// flood crossed into the anchor's own component (the new edge would
    /// not even be a bridge), and splicing those vertices would corrupt
    /// the tree. Splicing overwrites
    /// `labels`/`parent`/`head` for every member and resets their DSU
    /// entries (no live label outside the region can resolve to a class id
    /// inside it — classes never span components), so the rescue composes
    /// with earlier merges, region re-solves, and a pending re-hang.
    /// Returns [`RegionReroot::TooBig`] (caller escalates the caps, tries
    /// the other side, then falls back) when the component exceeds
    /// `sub_cap`/`arc_cap`, and [`RegionReroot::Invalid`] — terminal for
    /// this side — when the completed flood failed the single-tie check.
    /// The caller passes the caps explicitly so it can probe both sides
    /// cheaply first: the flood cost of the *large* side is bounded by the
    /// current level, keeping the rescue's total cost proportional to the
    /// small component rather than to the giant one.
    fn try_region_reroot(
        &mut self,
        new: &Graph,
        root_end: V,
        anchor: V,
        sub_cap: usize,
        arc_cap: usize,
    ) -> RegionReroot {
        let dy = &mut self.dynamic;
        let res = &mut self.result;
        dy.era = dy.era.wrapping_add(1);
        let era = dy.era;

        dy.members.clear();
        dy.members.push(root_end);
        dy.mark[root_end as usize] = era;
        dy.local_id[root_end as usize] = 0;
        let mut qi = 0;
        let mut arcs_scanned = 0usize;
        while qi < dy.members.len() {
            let x = dy.members[qi];
            qi += 1;
            arcs_scanned += new.degree(x);
            if arcs_scanned > arc_cap {
                // A failed flood still costs real work; charge it so a
                // batch of hopeless probes cannot stall indefinitely.
                dy.work_budget = dy
                    .work_budget
                    .saturating_sub(dy.members.len() + arcs_scanned);
                return RegionReroot::TooBig;
            }
            for &w in new.neighbors(x) {
                if w != anchor && dy.mark[w as usize] != era {
                    if dy.members.len() >= sub_cap {
                        dy.work_budget = dy
                            .work_budget
                            .saturating_sub(dy.members.len() + arcs_scanned);
                        return RegionReroot::TooBig;
                    }
                    dy.mark[w as usize] = era;
                    dy.local_id[w as usize] = dy.members.len() as u32;
                    dy.members.push(w);
                }
            }
        }

        // The splice treats (root_end, anchor) as the region's only tie to
        // the rest of the graph — that is what makes the new edge a true
        // bridge and the anchor-excluded local solve exact. A second
        // new-graph edge from `anchor` into the collected set (e.g. a
        // later insertion of this same batch reaching around the anchor)
        // falsifies both: the flood has swallowed vertices of the anchor's
        // own component, and splicing them under the anchor would corrupt
        // the tree (the anchor's parent chain runs inside the region).
        arcs_scanned += new.degree(anchor);
        if new
            .neighbors(anchor)
            .iter()
            .any(|&w| w != root_end && dy.mark[w as usize] == era)
        {
            dy.work_budget = dy
                .work_budget
                .saturating_sub(dy.members.len() + arcs_scanned);
            return RegionReroot::Invalid;
        }

        // Induced local CSR over the new graph; `anchor` is unmarked, so
        // its arcs — including the one being absorbed — are filtered out.
        let k = dy.members.len();
        dy.work_budget = dy.work_budget.saturating_sub(k + arcs_scanned);
        dy.sub_pairs.clear();
        for (j, &gv) in dy.members.iter().enumerate() {
            for &w in new.neighbors(gv) {
                if dy.mark[w as usize] == era {
                    dy.sub_pairs.push((j as u32, dy.local_id[w as usize]));
                }
            }
        }
        dy.sub_offsets.clear();
        dy.sub_offsets.resize(k + 1, 0);
        for &(s, _) in &dy.sub_pairs {
            dy.sub_offsets[s as usize + 1] += 1;
        }
        for j in 0..k {
            dy.sub_offsets[j + 1] += dy.sub_offsets[j];
        }
        let mut arcs = std::mem::take(&mut dy.sub_arcs);
        arcs.clear();
        arcs.resize(dy.sub_pairs.len(), 0);
        dy.sub_cursor.clear();
        dy.sub_cursor.extend_from_slice(&dy.sub_offsets[..k]);
        for &(s, t) in &dy.sub_pairs {
            arcs[dy.sub_cursor[s as usize]] = t;
            dy.sub_cursor[s as usize] += 1;
        }
        let offsets = std::mem::take(&mut dy.sub_offsets);
        for j in 0..k {
            arcs[offsets[j]..offsets[j + 1]].sort_unstable();
        }
        let lg = Graph::from_raw_parts(offsets, arcs);

        let mut sub = dy.sub.take().expect("sub engine sized at attach");
        sub.solve_with_root(&lg, 0);

        // Splice every member — unlike the block-anchored sub-solve there
        // is no preserved boundary vertex; the whole component's state is
        // replaced and its root re-pointed at the anchor.
        let sr = &sub.result;
        for j in 0..k {
            let gj = dy.members[j] as usize;
            res.labels[gj] = dy.members[sr.labels[j] as usize];
            let lp = sr.tags.parent[j];
            res.tags.parent[gj] = if lp == NONE {
                NONE
            } else {
                dy.members[lp as usize]
            };
            dy.dsu[gj] = gj as u32;
        }
        for j in 0..k {
            if sr.labels[j] == j as u32 {
                let w = dy.members[j] as usize;
                let lh = sr.head[j];
                res.head[w] = if lh == NONE {
                    NONE
                } else {
                    dy.members[lh as usize]
                };
                res.label_count[w] = sr.label_count[j];
            }
        }
        // The local root's singleton class becomes the new bridge class.
        res.tags.parent[root_end as usize] = anchor;
        res.head[root_end as usize] = anchor;

        let (o, a) = lg.into_raw_parts();
        dy.sub_offsets = o;
        dy.sub_arcs = a;
        dy.sub = Some(sub);
        RegionReroot::Done
    }

    /// Merge every block strictly between `lu` and `lv`'s first common
    /// ancestor block on the block-cut path (plus the ancestor itself when
    /// the two chains enter it through different vertices), driven by the
    /// insertion `(u, v)`.
    fn merge_path(&mut self, u: V, lu: u32, v: V, lv: u32) -> Result<(), &'static str> {
        let dy = &mut self.dynamic;
        let res = &self.result;
        dy.chain_era = dy.chain_era.wrapping_add(1);
        let era = dy.chain_era;
        dy.chain_a.clear();
        dy.chain_b.clear();

        // Walk state per side: (current label, entry vertex, done).
        let mut cur = [(lu, u, false), (lv, v, false)];
        let mut side = 0usize;
        let mut steps = 0usize;
        let collision: (u32, V, usize, usize); // (D, entry_this, pos_other, this_side)
        loop {
            if cur[0].2 && cur[1].2 {
                return Err(FB_CROSS);
            }
            if cur[side].2 {
                side ^= 1;
            }
            steps += 1;
            if steps > dy.opts.chain_cap {
                return Err(FB_CHAIN);
            }
            let (l, entry, _) = cur[side];
            if dy.seen_era[l as usize] == era && dy.seen_side[l as usize] as usize != side {
                collision = (l, entry, dy.seen_pos[l as usize] as usize, side);
                break;
            }
            let pos = if side == 0 {
                dy.chain_a.len()
            } else {
                dy.chain_b.len()
            };
            dy.seen_era[l as usize] = era;
            dy.seen_side[l as usize] = side as u8;
            dy.seen_pos[l as usize] = pos as u32;
            dy.seen_entry[l as usize] = entry;
            if side == 0 {
                dy.chain_a.push((l, entry));
            } else {
                dy.chain_b.push((l, entry));
            }
            let h = res.head[l as usize];
            if h == NONE {
                cur[side].2 = true;
            } else {
                // The DSU indirection: head chains follow merged reps.
                let mut nl = res.labels[h as usize];
                while dy.dsu[nl as usize] != nl {
                    nl = dy.dsu[nl as usize];
                }
                cur[side] = (nl, h, false);
            }
            side ^= 1;
        }

        let (d, entry_this, pos_other, this_side) = collision;
        let entry_other = dy.seen_entry[d as usize];
        let include_d = entry_this != entry_other;
        let (chain_this, chain_other) = if this_side == 0 {
            (&dy.chain_a, &dy.chain_b)
        } else {
            (&dy.chain_b, &dy.chain_a)
        };
        let rep = if include_d {
            d
        } else if let Some(&(l, _)) = chain_this.last() {
            l
        } else {
            chain_other[pos_other - 1].0
        };
        let new_head = if include_d {
            res.head[d as usize]
        } else {
            entry_this // == entry_other: the shared cut vertex
        };
        debug_assert_ne!(new_head, NONE, "merged block must keep a head");

        let res = &mut self.result;
        for &(l, _) in chain_this.iter() {
            if l != rep {
                dy.dsu[l as usize] = rep;
                dy.touched.push(l);
            }
        }
        for &(l, _) in chain_other[..pos_other].iter() {
            if l != rep {
                dy.dsu[l as usize] = rep;
                dy.touched.push(l);
            }
        }
        if include_d && d != rep {
            dy.dsu[d as usize] = rep;
            dy.touched.push(d);
        }
        dy.touched.push(rep);
        res.head[rep as usize] = new_head;
        Ok(())
    }

    /// Re-solve the block labelled `region` on the new graph, anchored at
    /// its head, and splice the local result into the global arrays.
    /// Returns false when a budget is exceeded (caller falls back).
    fn sub_solve(&mut self, old: &Graph, new: &Graph, region: u32) -> bool {
        let anchor = self.result.head[region as usize];
        if anchor == NONE {
            return false;
        }
        let dy = &mut self.dynamic;
        let res = &mut self.result;
        let (sub_cap, arc_cap) = (dy.opts.sub_cap, dy.opts.sub_arc_cap);
        dy.era = dy.era.wrapping_add(1);
        let era = dy.era;

        // Collect the block: label-filtered BFS from the anchor over the
        // union of old and new adjacency (deleted-but-unprocessed edges
        // are still structural mid-batch, so the old lists are required
        // for reachability; the new lists cover batch insertions).
        dy.members.clear();
        dy.members.push(anchor);
        dy.mark[anchor as usize] = era;
        dy.local_id[anchor as usize] = 0;
        let mut qi = 0;
        let mut arcs_scanned = 0usize;
        while qi < dy.members.len() {
            let x = dy.members[qi];
            qi += 1;
            arcs_scanned += old.degree(x) + new.degree(x);
            if arcs_scanned > arc_cap {
                return false;
            }
            for list in [old.neighbors(x), new.neighbors(x)] {
                for &w in list {
                    if dy.mark[w as usize] != era && res.labels[w as usize] == region {
                        if dy.members.len() >= sub_cap {
                            return false;
                        }
                        dy.mark[w as usize] = era;
                        dy.local_id[w as usize] = dy.members.len() as u32;
                        dy.members.push(w);
                    }
                }
            }
        }

        // Induced local CSR over the *new* graph (two blocks share at most
        // one vertex, so every new-graph edge between members is a block
        // edge). Built by counting sort into pooled buffers.
        let k = dy.members.len();
        dy.work_budget = dy.work_budget.saturating_sub(k + arcs_scanned);
        dy.sub_pairs.clear();
        for (j, &gv) in dy.members.iter().enumerate() {
            for &w in new.neighbors(gv) {
                if dy.mark[w as usize] == era {
                    dy.sub_pairs.push((j as u32, dy.local_id[w as usize]));
                }
            }
        }
        dy.sub_offsets.clear();
        dy.sub_offsets.resize(k + 1, 0);
        for &(s, _) in &dy.sub_pairs {
            dy.sub_offsets[s as usize + 1] += 1;
        }
        for j in 0..k {
            dy.sub_offsets[j + 1] += dy.sub_offsets[j];
        }
        let mut arcs = std::mem::take(&mut dy.sub_arcs);
        arcs.clear();
        arcs.resize(dy.sub_pairs.len(), 0);
        dy.sub_cursor.clear();
        dy.sub_cursor.extend_from_slice(&dy.sub_offsets[..k]);
        for &(s, t) in &dy.sub_pairs {
            arcs[dy.sub_cursor[s as usize]] = t;
            dy.sub_cursor[s as usize] += 1;
        }
        let offsets = std::mem::take(&mut dy.sub_offsets);
        for j in 0..k {
            arcs[offsets[j]..offsets[j + 1]].sort_unstable();
        }
        let lg = Graph::from_raw_parts(offsets, arcs);

        let mut sub = dy.sub.take().expect("sub engine sized at attach");
        sub.solve_with_root(&lg, 0);

        // Splice: the old class dies, local classes map through `members`.
        // The anchor (local root, local id 0) keeps its global label,
        // parent, and class — exactly why the sub-solve is anchored there.
        res.label_count[region as usize] = 0;
        res.head[region as usize] = NONE;
        let sr = &sub.result;
        for j in 1..k {
            let gj = dy.members[j] as usize;
            res.labels[gj] = dy.members[sr.labels[j] as usize];
            let lp = sr.tags.parent[j];
            res.tags.parent[gj] = if lp == NONE {
                NONE
            } else {
                dy.members[lp as usize]
            };
        }
        for j in 1..k {
            if sr.labels[j] == j as u32 {
                let w = dy.members[j] as usize;
                let lh = sr.head[j];
                res.head[w] = if lh == NONE {
                    NONE
                } else {
                    dy.members[lh as usize]
                };
                res.label_count[w] = sr.label_count[j];
            }
        }

        let (o, a) = lg.into_raw_parts();
        dy.sub_offsets = o;
        dy.sub_arcs = a;
        dy.sub = Some(sub);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{fast_bcc, BccOpts};
    use crate::postprocess::{articulation_points, bridges, canonical_bccs};
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, rmat};

    /// The incremental result must be indistinguishable from a fresh solve
    /// of the same (evolved) graph across every label-based consumer.
    fn assert_matches_fresh(engine: &BccEngine, ctx: &str) {
        let g = engine.graph().expect("attached");
        let fresh = fast_bcc(g, engine.opts());
        let r = &engine.result;
        assert_eq!(r.num_cc, fresh.num_cc, "num_cc {ctx}");
        assert_eq!(r.num_bcc, fresh.num_bcc, "num_bcc {ctx}");
        assert_eq!(canonical_bccs(r), canonical_bccs(&fresh), "bccs {ctx}");
        assert_eq!(
            articulation_points(r),
            articulation_points(&fresh),
            "cuts {ctx}"
        );
        // Bridges are reported as (parent, child); the incremental tree
        // can be oriented differently from a fresh solve's, so compare the
        // underlying undirected edges.
        let norm = |mut v: Vec<(V, V)>| {
            for e in v.iter_mut() {
                *e = (e.0.min(e.1), e.0.max(e.1));
            }
            v.sort_unstable();
            v
        };
        assert_eq!(norm(bridges(r)), norm(bridges(&fresh)), "bridges {ctx}");
    }

    #[test]
    fn cycle_delete_and_readd() {
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&cycle(10));
        let r = e.apply_batch(&[], &[(0, 1)]);
        assert_eq!(r.num_bcc, 9);
        assert!(e.last_apply_report().unwrap().incremental);
        assert_matches_fresh(&e, "after del");
        let r = e.apply_batch(&[(0, 1)], &[]);
        assert_eq!(r.num_bcc, 1);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "re-add fell back: {:?}", rep.fallback);
        assert_eq!(rep.adds_merged, 1);
        assert_matches_fresh(&e, "after re-add");
    }

    #[test]
    fn bridge_cut_disconnects_in_o1() {
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&barbell(5, 1)); // two K5s joined by a path of length 1
        let before_cc = e.result.num_cc;
        // Find the bridge and cut it.
        let b = bridges(&e.result);
        let (u, v) = b[0];
        e.apply_batch(&[], &[(u, v)]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental);
        assert_eq!(rep.dels_bridge, 1);
        assert_eq!(e.result.num_cc, before_cc + 1);
        assert_matches_fresh(&e, "after bridge cut");
    }

    #[test]
    fn bridge_readd_links_trees_in_o1() {
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&barbell(4, 1));
        let (u, v) = bridges(&e.result)[0];
        e.apply_batch(&[], &[(u, v)]);
        assert_matches_fresh(&e, "split");
        // The cut made the child a tree root, so the re-add is the O(1)
        // forest-link case: hang the root back under its old parent.
        e.apply_batch(&[(u, v)], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_eq!(rep.adds_linked, 1);
        assert_matches_fresh(&e, "rejoined");
    }

    #[test]
    fn isolated_vertices_link_incrementally() {
        // path(100) plus two isolated vertices 100 and 101 (the path is
        // long so a 2-edge batch stays under `max_churn_frac`).
        let edges: Vec<(V, V)> = (0..99).map(|i| (i as V, i as V + 1)).collect();
        let g = fastbcc_graph::builder::from_edges(102, &edges);
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&g);
        assert_eq!(e.result.num_cc, 3);
        // Chain the isolated vertices onto the path in one batch.
        let r = e.apply_batch(&[(50, 100), (100, 101)], &[]);
        assert_eq!(r.num_cc, 1);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_eq!(rep.adds_linked, 2);
        assert_matches_fresh(&e, "linked");
        // Closing a cycle over the freshly linked bridges merges them.
        e.apply_batch(&[(60, 101)], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_matches_fresh(&e, "cycled");
    }

    #[test]
    fn cross_tree_add_at_path_interiors_reroots() {
        // Two disjoint 30-vertex paths; join them through interior
        // vertices. Neither endpoint is a root, but both root paths are
        // all bridges, so the shallower tree re-roots onto the new edge.
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&disjoint_union(&[&path(30), &path(30)]));
        assert_eq!(e.result.num_cc, 2);
        let parent = &e.result.tags.parent;
        let a = (0..30).find(|&x| parent[x as usize] != NONE).unwrap();
        let b = (30..60)
            .rev()
            .find(|&x| parent[x as usize] != NONE)
            .unwrap();
        let r = e.apply_batch(&[(a, b)], &[]);
        assert_eq!(r.num_cc, 1);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_eq!(rep.adds_rerooted, 1);
        assert_matches_fresh(&e, "rerooted");
        // A second chord now lands inside one component and merges blocks
        // across the re-rooted seam.
        e.apply_batch(&[(a.saturating_sub(3), b - 3)], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_matches_fresh(&e, "chord over seam");
    }

    #[test]
    fn cross_component_add_at_non_roots_region_reroots() {
        // Two disjoint 5-cycles; join them through non-root vertices. The
        // root paths run through cycle blocks, so the bridge-flip re-root
        // cannot apply — the component-sized region re-root absorbs it.
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&disjoint_union(&[&cycle(5), &cycle(5)]));
        assert_eq!(e.result.num_cc, 2);
        // Find a non-root vertex in each component (a root has no parent).
        let parent = &e.result.tags.parent;
        let a = (0..5).find(|&x| parent[x as usize] != NONE).unwrap();
        let b = (5..10).find(|&x| parent[x as usize] != NONE).unwrap();
        e.apply_batch(&[(a, b)], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_eq!(rep.adds_rerooted, 1);
        assert_eq!(e.result.num_cc, 1);
        assert_matches_fresh(&e, "joined");
        // A follow-up chord across the new bridge merges through it.
        e.apply_batch(&[(a, (b + 1).min(9))], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        assert_matches_fresh(&e, "chord over region seam");
    }

    #[test]
    fn cross_component_add_beyond_caps_falls_back() {
        // Both components exceed `sub_cap`, so neither side's region fits
        // and the cross-tree insertion has to take the full re-solve.
        let mut e = BccEngine::new(BccOpts::default());
        let k = e.dyn_opts_mut().sub_cap + 8;
        e.attach(&disjoint_union(&[&cycle(k), &cycle(k)]));
        let parent = &e.result.tags.parent;
        let a = (0..k as V).find(|&x| parent[x as usize] != NONE).unwrap();
        let b = (k as V..2 * k as V)
            .find(|&x| parent[x as usize] != NONE)
            .unwrap();
        e.apply_batch(&[(a, b)], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(!rep.incremental);
        assert_eq!(rep.fallback, Some(super::FB_CROSS));
        assert_matches_fresh(&e, "joined beyond caps");
    }

    #[test]
    fn cert_pass_keeps_labels_without_resolve() {
        // A 4-clique stays 2-connected after losing one edge.
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&complete(4));
        e.apply_batch(&[], &[(1, 2)]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental);
        assert_eq!(rep.dels_cert_pass, 1);
        assert_eq!(rep.dels_sub_solve, 0);
        assert_matches_fresh(&e, "clique minus edge");
    }

    #[test]
    fn windmill_add_merges_blades() {
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&windmill(4)); // center 0, blades (1,2), (3,4), ...
        e.apply_batch(&[(1, 3)], &[]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental, "fallback: {:?}", rep.fallback);
        assert_eq!(rep.adds_merged, 1);
        assert_eq!(e.result.num_bcc, 3); // two blades fused through the hub
        assert_matches_fresh(&e, "windmill merge");
    }

    #[test]
    fn churn_threshold_falls_back() {
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&cycle(40));
        let dels: Vec<(V, V)> = (0..10).map(|i| (i as V, (i + 1) as V)).collect();
        e.apply_batch(&[], &dels);
        let rep = e.last_apply_report().unwrap();
        assert!(!rep.incremental);
        assert_eq!(rep.fallback, Some(super::FB_CHURN));
        assert_matches_fresh(&e, "after churn fallback");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut e = BccEngine::new(BccOpts::default());
        e.attach(&petersen());
        let before = canonical_bccs(&e.result);
        e.apply_batch(&[(0, 0)], &[(9, 9)]);
        let rep = e.last_apply_report().unwrap();
        assert!(rep.incremental);
        assert_eq!((rep.adds, rep.dels), (0, 0));
        assert_eq!(canonical_bccs(&e.result), before);
    }

    #[test]
    fn random_batches_match_fresh_solves() {
        for (gi, g0) in [
            rmat(8, 700, 3),
            grid2d(14, 11, false),
            clique_chain(6, 5),
            disjoint_union(&[&cycle(12), &barbell(4, 2), &path(6)]),
        ]
        .into_iter()
        .enumerate()
        {
            let mut e = BccEngine::new(BccOpts::default());
            e.attach(&g0);
            let mut seed = 0xC0FFEE ^ (gi as u64) << 7;
            let mut rng = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            for round in 0..12 {
                let g = e.graph().unwrap();
                let n = g.n() as u64;
                let live: Vec<(V, V)> = g.iter_edges().collect();
                let mut dels = Vec::new();
                for _ in 0..3 {
                    dels.push(live[(rng() % live.len() as u64) as usize]);
                }
                let mut adds = Vec::new();
                for _ in 0..3 {
                    adds.push(((rng() % n) as V, (rng() % n) as V));
                }
                e.apply_batch(&adds, &dels);
                assert_matches_fresh(&e, &format!("graph {gi} round {round}"));
            }
        }
    }

    #[test]
    fn warm_incremental_batches_allocate_nothing() {
        fastbcc_primitives::with_threads(1, || {
            let g = grid2d(40, 25, false);
            let mut e = BccEngine::new(BccOpts::default());
            e.attach(&g);
            let mut seed = 0x5EEDu64;
            let mut rng = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            let mut warm_rounds = 0;
            for round in 0..14 {
                let g = e.graph().unwrap();
                let n = g.n() as u64;
                let live: Vec<(V, V)> = g.iter_edges().collect();
                let dels = vec![live[(rng() % live.len() as u64) as usize]];
                let adds = vec![((rng() % n) as V, (rng() % n) as V)];
                let fresh = e.apply_batch(&adds, &dels).fresh_alloc_bytes;
                let rep = e.last_apply_report().unwrap();
                if rep.incremental && round >= 6 {
                    assert_eq!(fresh, 0, "warm incremental batch allocated (round {round})");
                    warm_rounds += 1;
                }
            }
            assert!(warm_rounds > 0, "no warm incremental rounds measured");
        });
    }
}
