//! # fastbcc-core — the FAST-BCC algorithm
//!
//! *Fencing an Arbitrary Spanning Tree*: the first parallel biconnectivity
//! algorithm with `O(n + m)` expected work, `O(log³ n)` span w.h.p., and
//! `O(n)` auxiliary space (Dong, Wang, Gu, Sun — PPoPP 2023).
//!
//! The algorithm (paper Alg. 1) has four steps, all implemented here on top
//! of the substrate crates:
//!
//! 1. **First-CC** — compute a spanning forest of `G` with the LDD-UF-JTB
//!    connectivity algorithm (`fastbcc-connectivity`);
//! 2. **Rooting** — root every tree with the Euler tour technique
//!    (`fastbcc-ett`);
//! 3. **Tagging** — compute `first/last/w1/w2/low/high/parent` per vertex;
//!    `low`/`high` are 1-D range min/max queries over the Euler order
//!    ([`tags`], using the sparse table from `fastbcc-primitives`);
//! 4. **Last-CC** — run connectivity on the **implicit skeleton** (`G`
//!    minus fence and back edges, decided in `O(1)` per edge from the
//!    tags — [`skeleton`]), then assign a component head per label
//!    ([`algo`]).
//!
//! The output is the paper's `O(n)` BCC representation: a label per vertex
//! plus a *component head* per label; a BCC is one label class together
//! with its head ([`postprocess`] derives articulation points, bridges,
//! explicit BCC vertex sets, and the canonical form the tests compare
//! against baselines).

pub mod algo;
pub mod block_cut_tree;
pub mod dynamic;
pub mod engine;
pub mod postprocess;
pub mod query;
pub mod skeleton;
pub mod space;
pub mod tags;

pub use algo::{fast_bcc, BccOpts, BccResult, Breakdown, CcScheme};
pub use block_cut_tree::{block_cut_tree, BcNode, BlockCutTree};
pub use dynamic::{ApplyReport, DynOpts, FALLBACK_REASONS};
pub use engine::{BccEngine, Workspace};
pub use postprocess::{articulation_points, bridges, canonical_bccs, largest_bcc_size};
pub use query::{random_mixed_batch, BccIndex, Query, QueryAnswer, QueryScratch};
pub use tags::Tags;
