//! Auxiliary-space accounting (for the Fig. 7 experiment).
//!
//! The paper's space claim — `O(n)` auxiliary memory beyond the input
//! graph — is an *algorithmic* property; we make it measurable by having
//! every phase register the byte size of the auxiliary structures it keeps
//! live. The tracker records the running total and the peak, which is the
//! number Fig. 7 compares across FAST-BCC / GBBS-style / Tarjan–Vishkin.
//!
//! With the scratch-pooled engine the tracker lives inside the
//! [`crate::engine::Workspace`] and additionally distinguishes *live*
//! bytes (what the algorithm holds, identical run over run) from *fresh*
//! bytes (capacity the workspace actually had to grow this solve). A
//! repeated solve on a same-shaped input reports `fresh() == 0`: every
//! major array was served from the pooled buffers.

/// The linear budget a warm engine's reserved workspace must fit:
/// ~170 bytes/vertex of `O(n)` phase arrays plus the `O(m/20)` edgeMap
/// claim-slot buffer, with headroom (observed suite maximum ≈ 208·n
/// with m ≈ n). `m_undirected` is the undirected edge count. This is
/// the single source of truth for the space-regression gate: the
/// `bench-smoke` runner assertion and `tests/frontier_space.rs` call
/// it, and the CI python gate in `.github/workflows/ci.yml` mirrors it
/// by hand (keep the three in sync through this function).
pub fn workspace_budget_bytes(n: usize, m_undirected: usize) -> usize {
    200 * n + 8 * m_undirected + (1 << 16)
}

/// The budget a [`crate::query::BccIndex`] over an `n`-vertex solve must
/// fit: five `O(n)` vertex tables, the forest/tour tables (block-cut
/// forest nodes ≤ 2n, tour length t ≤ 4n), and the blocked arg-RMQ's
/// `O(t + (t/B) log(t/B))` summary — linear up to the summary's log
/// factor, with headroom. The `queries` benchmark emits it next to the
/// measured `index_bytes` so the CI gate compares two fields of one
/// record (keep the gate and this function in sync).
pub fn query_index_budget_bytes(n: usize) -> usize {
    let t = 4 * n;
    let lg = (usize::BITS - t.max(2).leading_zeros()) as usize;
    128 * n + (t / 8) * lg + (1 << 16)
}

/// Running/peak byte counter for auxiliary allocations, plus a per-solve
/// fresh-allocation counter for buffer-reuse verification.
#[derive(Debug, Default, Clone)]
pub struct SpaceTracker {
    live: usize,
    peak: usize,
    fresh: usize,
}

impl SpaceTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new measurement epoch (one engine solve): live/peak/fresh
    /// all restart at zero while the underlying buffers stay pooled.
    pub fn begin_solve(&mut self) {
        self.live = 0;
        self.peak = 0;
        self.fresh = 0;
    }

    /// Record bytes of buffer capacity that had to be newly allocated (or
    /// grown) during this epoch.
    pub fn note_fresh(&mut self, bytes: usize) {
        self.fresh += bytes;
    }

    /// Newly allocated capacity bytes in the current epoch — 0 when every
    /// major array was reused from the workspace pool.
    pub fn fresh(&self) -> usize {
        self.fresh
    }

    /// Register `bytes` of live auxiliary memory.
    pub fn alloc(&mut self, bytes: usize) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Register that `bytes` were released.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.live, "freeing more than live");
        self.live = self.live.saturating_sub(bytes);
    }

    /// Register a `Vec`'s heap footprint.
    pub fn alloc_vec<T>(&mut self, v: &[T]) {
        self.alloc(std::mem::size_of_val(v));
    }

    /// Currently live auxiliary bytes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak auxiliary bytes seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut t = SpaceTracker::new();
        t.alloc(100);
        t.alloc(50);
        assert_eq!(t.live(), 150);
        assert_eq!(t.peak(), 150);
        t.free(120);
        assert_eq!(t.live(), 30);
        assert_eq!(t.peak(), 150);
        t.alloc(40);
        assert_eq!(t.peak(), 150);
        t.alloc(200);
        assert_eq!(t.peak(), 270);
    }

    #[test]
    fn alloc_vec_counts_payload() {
        let mut t = SpaceTracker::new();
        let v = vec![0u32; 256];
        t.alloc_vec(&v);
        assert_eq!(t.live(), 1024);
    }
}
