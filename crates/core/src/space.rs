//! Auxiliary-space accounting (for the Fig. 7 experiment).
//!
//! The paper's space claim — `O(n)` auxiliary memory beyond the input
//! graph — is an *algorithmic* property; we make it measurable by having
//! every phase register the byte size of the auxiliary structures it keeps
//! live. The tracker records the running total and the peak, which is the
//! number Fig. 7 compares across FAST-BCC / GBBS-style / Tarjan–Vishkin.

/// Running/peak byte counter for auxiliary allocations.
#[derive(Debug, Default, Clone)]
pub struct SpaceTracker {
    live: usize,
    peak: usize,
}

impl SpaceTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `bytes` of live auxiliary memory.
    pub fn alloc(&mut self, bytes: usize) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Register that `bytes` were released.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.live, "freeing more than live");
        self.live = self.live.saturating_sub(bytes);
    }

    /// Register a `Vec`'s heap footprint.
    pub fn alloc_vec<T>(&mut self, v: &[T]) {
        self.alloc(std::mem::size_of_val(v));
    }

    /// Currently live auxiliary bytes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak auxiliary bytes seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut t = SpaceTracker::new();
        t.alloc(100);
        t.alloc(50);
        assert_eq!(t.live(), 150);
        assert_eq!(t.peak(), 150);
        t.free(120);
        assert_eq!(t.live(), 30);
        assert_eq!(t.peak(), 150);
        t.alloc(40);
        assert_eq!(t.peak(), 150);
        t.alloc(200);
        assert_eq!(t.peak(), 270);
    }

    #[test]
    fn alloc_vec_counts_payload() {
        let mut t = SpaceTracker::new();
        let v = vec![0u32; 256];
        t.alloc_vec(&v);
        assert_eq!(t.live(), 1024);
    }
}
