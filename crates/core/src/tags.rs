//! The *Tagging* step (paper §4.1 step 3, §5 "Computing Tags").
//!
//! From the rooted forest, compute per vertex:
//!
//! * `first[v]`, `last[v]` — Euler-tour appearance interval (from ETT);
//! * `w1[v] = min({first[v]} ∪ {first[u] : (v,u) non-tree edge})` and
//!   `w2[v]` its max counterpart — one parallel pass over all edges with
//!   CAS priority writes;
//! * `low[v] = min w1 over T_v`, `high[v] = max w2 over T_v` — since a
//!   subtree is an interval `[first[v], last[v]]` of the Euler order, these
//!   are 1-D range-min/max queries over the tour-ordered `w1`/`w2` arrays,
//!   answered by parallel sparse tables.
//!
//! `O(n + m)` work and `O(log n)` span for the edge pass, `O(n log n)`
//! work for the sparse tables (the paper's choice as well; this is the
//! only super-linear-in-`n` structure and it is on tour positions, i.e.
//! `O(n)`-sized input, so auxiliary space stays `O(n log n)` *bits*-level
//! comparable to the paper's implementation).

use fastbcc_ett::RootedForest;
use fastbcc_graph::{GraphView, V};
use fastbcc_primitives::atomics::{as_atomic_u32, write_max_u32, write_min_u32};
use fastbcc_primitives::par::par_for;
use fastbcc_primitives::rmq::{BlockRmq, RmqKind};
use fastbcc_primitives::slice::{reuse_uninit, UnsafeSlice};

/// Per-vertex tags driving the edge-classification predicates.
#[derive(Default)]
pub struct Tags {
    /// Parent in the rooted spanning forest (`NONE` for roots).
    pub parent: Vec<V>,
    /// First appearance on the Euler tour.
    pub first: Vec<u32>,
    /// Last appearance on the Euler tour.
    pub last: Vec<u32>,
    /// Minimum `w1` over the subtree.
    pub low: Vec<u32>,
    /// Maximum `w2` over the subtree.
    pub high: Vec<u32>,
}

impl Tags {
    /// True iff `u–v` is an edge of the spanning forest.
    #[inline]
    pub fn is_tree_edge(&self, u: V, v: V) -> bool {
        self.parent[u as usize] == v || self.parent[v as usize] == u
    }

    /// Alg. 1 `Back(u, v)`: `u` is an ancestor of `v` (so a non-tree edge
    /// `u–v` is a back edge iff `Back(u,v) || Back(v,u)`).
    #[inline]
    pub fn back(&self, u: V, v: V) -> bool {
        self.first[u as usize] <= self.first[v as usize]
            && self.last[u as usize] >= self.first[v as usize]
    }

    /// Alg. 1 `Fence(u, v)`: assuming `u = p(v)`, no edge from `T_v`
    /// escapes `T_u`.
    #[inline]
    pub fn fence(&self, u: V, v: V) -> bool {
        self.first[u as usize] <= self.low[v as usize]
            && self.last[u as usize] >= self.high[v as usize]
    }

    /// Alg. 1 `InSkeleton(u, v)`: the edge is a plain tree edge or a cross
    /// edge — i.e. it belongs to the implicit skeleton `G'`.
    #[inline]
    pub fn in_skeleton(&self, u: V, v: V) -> bool {
        if self.is_tree_edge(u, v) {
            !self.fence(u, v) && !self.fence(v, u)
        } else {
            !self.back(u, v) && !self.back(v, u)
        }
    }

    /// Bytes of auxiliary memory held by the tag arrays.
    pub fn bytes(&self) -> usize {
        4 * (self.parent.len()
            + self.first.len()
            + self.last.len()
            + self.low.len()
            + self.high.len())
    }

    /// Heap bytes currently reserved (capacity, not length) — the engine's
    /// fresh-allocation accounting reads this.
    pub fn heap_bytes(&self) -> usize {
        4 * (self.parent.capacity()
            + self.first.capacity()
            + self.last.capacity()
            + self.low.capacity()
            + self.high.capacity())
    }
}

/// Reusable buffers for [`compute_tags_in`]: the vertex- and tour-ordered
/// `w1`/`w2` arrays. The sparse tables themselves stay transient — they
/// are freed before Last-CC in the one-shot flow, and rebuilding them is
/// the documented `O(n log n)`-work step of the paper's tagging phase.
#[derive(Default)]
pub struct TagScratch {
    w1: Vec<u32>,
    w2: Vec<u32>,
    w1_tour: Vec<u32>,
    w2_tour: Vec<u32>,
}

impl TagScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve for `n` vertices (tour-ordered arrays hold up to `2n`).
    pub fn reserve(&mut self, n: usize) {
        self.w1.reserve(n);
        self.w2.reserve(n);
        self.w1_tour.reserve(2 * n);
        self.w2_tour.reserve(2 * n);
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        4 * (self.w1.capacity()
            + self.w2.capacity()
            + self.w1_tour.capacity()
            + self.w2_tour.capacity())
    }
}

/// Compute all tags. Returns the tags and the sparse-table bytes used
/// (transient — freed before Last-CC), for space accounting.
pub fn compute_tags<G: GraphView>(g: &G, rf: &RootedForest) -> (Tags, usize) {
    let mut tags = Tags::default();
    let mut scratch = TagScratch::new();
    let table_bytes = compute_tags_in(g, rf, &mut tags, &mut scratch);
    (tags, table_bytes)
}

/// [`compute_tags`] writing into a caller-owned [`Tags`] (the five tag
/// arrays of the engine's result slot) with intermediates in `scratch`.
/// Returns the transient sparse-table bytes for space accounting.
pub fn compute_tags_in<G: GraphView>(
    g: &G,
    rf: &RootedForest,
    out: &mut Tags,
    scratch: &mut TagScratch,
) -> usize {
    let n = g.n();
    out.first.clear();
    out.first.extend_from_slice(&rf.first);
    out.last.clear();
    out.last.extend_from_slice(&rf.last);
    out.parent.clear();
    out.parent.extend_from_slice(&rf.parent);
    let first = &out.first;
    let last = &out.last;
    let parent = &out.parent;

    // w1/w2 over vertices, seeded with first[v].
    let w1 = &mut scratch.w1;
    w1.clear();
    w1.extend_from_slice(first);
    let w2 = &mut scratch.w2;
    w2.clear();
    w2.extend_from_slice(first);
    {
        let a1 = as_atomic_u32(w1);
        let a2 = as_atomic_u32(w2);
        par_for(n, |ui| {
            let u = ui as V;
            g.for_neighbors(u, |v| {
                // Skip tree edges: their information is already captured by
                // the subtree intervals themselves.
                if parent[u as usize] != v && parent[v as usize] != u {
                    write_min_u32(&a1[ui], first[v as usize]);
                    write_max_u32(&a2[ui], first[v as usize]);
                }
            });
        });
    }
    let w1 = &*w1;
    let w2 = &*w2;

    // Spread to Euler order and build the sparse tables.
    let tour = &rf.tour_vertex;
    let tl = tour.len();
    let w1_tour = &mut scratch.w1_tour;
    let w2_tour = &mut scratch.w2_tour;
    // SAFETY: every slot in 0..tl is written exactly once below.
    unsafe {
        reuse_uninit(w1_tour, tl);
        reuse_uninit(w2_tour, tl);
    }
    {
        let v1 = UnsafeSlice::new(w1_tour.as_mut_slice());
        let v2 = UnsafeSlice::new(w2_tour.as_mut_slice());
        // SAFETY: one write per distinct tour position `p` — disjoint.
        par_for(tl, |p| unsafe {
            let v = tour[p] as usize;
            v1.write(p, w1[v]);
            v2.write(p, w2[v]);
        });
    }
    let st_min = BlockRmq::build(w1_tour, RmqKind::Min);
    let st_max = BlockRmq::build(w2_tour, RmqKind::Max);
    let table_bytes = st_min.bytes() + st_max.bytes() + 8 * tl;

    // low/high by interval queries.
    // SAFETY: every slot in 0..n is written exactly once below.
    unsafe {
        reuse_uninit(&mut out.low, n);
        reuse_uninit(&mut out.high, n);
    }
    {
        let lo = UnsafeSlice::new(out.low.as_mut_slice());
        let hi = UnsafeSlice::new(out.high.as_mut_slice());
        // SAFETY: one write per distinct vertex `v` — disjoint.
        par_for(n, |v| unsafe {
            lo.write(v, st_min.query(first[v] as usize, last[v] as usize));
            hi.write(v, st_max.query(first[v] as usize, last[v] as usize));
        });
    }

    table_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_connectivity::cc::cc_seq;
    use fastbcc_connectivity::spanning_forest::forest_adjacency;
    use fastbcc_ett::root_forest;
    use fastbcc_graph::builder::from_edges;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::{Graph, NONE};

    fn tags_of(g: &Graph) -> Tags {
        let cc = cc_seq(g, true);
        let t = forest_adjacency(g.n(), cc.forest.as_ref().unwrap());
        let rf = root_forest(&t, &cc.labels, 3);
        compute_tags(g, &rf).0
    }

    /// Oracle: recompute low/high by brute force over the rooted forest.
    fn brute_low_high(g: &Graph, tags: &Tags) -> (Vec<u32>, Vec<u32>) {
        let n = g.n();
        // subtree membership via interval test with the same first/last.
        let in_subtree = |anc: usize, v: usize| {
            tags.first[anc] <= tags.first[v] && tags.last[anc] >= tags.last[v]
        };
        let mut low = vec![0u32; n];
        let mut high = vec![0u32; n];
        for v in 0..n {
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for u in 0..n {
                if in_subtree(v, u) {
                    lo = lo.min(tags.first[u]);
                    hi = hi.max(tags.first[u]);
                    for &x in g.neighbors(u as V) {
                        if !tags.is_tree_edge(u as V, x) {
                            lo = lo.min(tags.first[x as usize]);
                            hi = hi.max(tags.first[x as usize]);
                        }
                    }
                }
            }
            low[v] = lo;
            high[v] = hi;
        }
        (low, high)
    }

    #[test]
    fn low_high_match_brute_force_on_zoo() {
        for g in [
            cycle(9),
            windmill(4),
            petersen(),
            theta(1, 2, 3),
            barbell(4, 2),
            complete(6),
            from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 3),
                    (5, 6),
                ],
            ),
        ] {
            let tags = tags_of(&g);
            let (lo, hi) = brute_low_high(&g, &tags);
            assert_eq!(tags.low, lo, "low mismatch");
            assert_eq!(tags.high, hi, "high mismatch");
        }
    }

    #[test]
    fn tree_edge_detection() {
        let g = cycle(5);
        let tags = tags_of(&g);
        let tree_count = g
            .iter_edges()
            .filter(|&(u, v)| tags.is_tree_edge(u, v))
            .count();
        assert_eq!(tree_count, 4); // spanning tree of a 5-cycle
    }

    #[test]
    fn non_tree_edge_classification_on_cycle() {
        // A cycle's spanning tree is a path; the one non-tree edge joins the
        // path's two endpoints. It is a back edge iff the tree root is one
        // of those endpoints (ancestor relation), otherwise a cross edge.
        let g = cycle(6);
        let tags = tags_of(&g);
        let non_tree: Vec<_> = g
            .iter_edges()
            .filter(|&(u, v)| !tags.is_tree_edge(u, v))
            .collect();
        assert_eq!(non_tree.len(), 1);
        let (u, v) = non_tree[0];
        let root_is_endpoint = tags.parent[u as usize] == NONE || tags.parent[v as usize] == NONE;
        let is_back = tags.back(u, v) || tags.back(v, u);
        assert_eq!(is_back, root_is_endpoint, "edge {u}-{v}");
        assert_eq!(tags.in_skeleton(u, v), !is_back);
    }

    #[test]
    fn fence_edges_on_path_graph() {
        // Every edge of a path is a fence edge (each is a bridge).
        let g = path(10);
        let tags = tags_of(&g);
        for (u, v) in g.iter_edges() {
            assert!(tags.is_tree_edge(u, v));
            assert!(!tags.in_skeleton(u, v), "bridge {u}-{v} must be fenced");
        }
    }

    #[test]
    fn biconnected_graph_keeps_non_root_tree_edges_in_skeleton() {
        // On K5 every tree edge *not incident to the root* is plain; the
        // root's own tree edges are always fences (Lemma 4.9 case 1).
        let g = complete(5);
        let tags = tags_of(&g);
        for (u, v) in g.iter_edges() {
            if tags.is_tree_edge(u, v) {
                let root_incident =
                    tags.parent[u as usize] == NONE || tags.parent[v as usize] == NONE;
                assert_eq!(tags.in_skeleton(u, v), !root_incident, "tree edge {u}-{v}");
            }
        }
    }

    #[test]
    fn windmill_fences_exactly_center_edges() {
        // Each triangle center-edge pair: the tree edges from the center
        // into each triangle are fences iff they separate BCCs. For the
        // windmill rooted anywhere, each triangle is one BCC; the edges
        // into a triangle from the center are that BCC's boundary.
        let g = windmill(5);
        let tags = tags_of(&g);
        // The third edge of each triangle (leaf-leaf) must never be fenced.
        for (u, v) in g.iter_edges() {
            if u != 0 && v != 0 {
                assert!(
                    !tags.is_tree_edge(u, v) || tags.in_skeleton(u, v),
                    "leaf-leaf tree edge {u}-{v} wrongly fenced"
                );
            }
        }
    }
}
