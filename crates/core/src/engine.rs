//! The scratch-pooled FAST-BCC engine.
//!
//! [`fast_bcc`](crate::fast_bcc) answers one query and throws every
//! intermediate array away. A service answering many BCC queries over
//! evolving graphs re-pays those `O(n)` allocations on every call — even
//! though the paper's `O(n)` auxiliary-space bound means the *shape* of
//! the scratch memory is identical run over run. [`BccEngine`] makes that
//! observation operational:
//!
//! * a [`Workspace`] owns every major per-phase array — the LDD
//!   cluster/parent arrays and the union–find (via
//!   `fastbcc_connectivity::CcScratch`), the First-CC labels and the
//!   spanning-forest edge buffer, the forest CSR arrays, the rooted-forest
//!   and ETT successor/rank arrays (`fastbcc_ett::EttScratch`), and the
//!   tagging `w1`/`w2` buffers (`crate::tags::TagScratch`);
//! * the engine's result slot recycles the output arrays too (labels,
//!   heads, label counts, and the five tag arrays);
//! * [`BccEngine::solve`] runs Alg. 1 end to end writing only into those
//!   borrowed buffers. The first solve sizes everything; subsequent solves
//!   on same-shaped inputs perform **zero** major-array allocations, which
//!   the [`SpaceTracker`] inside the workspace verifies: its `fresh()`
//!   counter tallies capacity growth per solve and lands on 0 for a
//!   repeated input (reported per run as
//!   [`BccResult::fresh_alloc_bytes`]).
//!
//! Transient allocations remain by design, and `fresh()` deliberately
//! does **not** count them: the tagging sparse tables (freed before
//! Last-CC, exactly as the one-shot flow accounts them), the
//! forest-adjacency atomic cursor array, the counting-sort
//! histogram/cursor tables and pack offset vectors inside the
//! primitives, and the radix-sort ping-pong passes on huge key spaces.
//! These are short-lived churn within a solve — candidates for future
//! pooling — whereas `fresh()` answers the narrower question the
//! acceptance criterion poses: did any *pooled* buffer (the major arrays
//! listed above) have to grow this solve. The frontier machinery
//! (per-round frontier double-buffer, start-round grouping, and the
//! shared pre-counted edgeMap claim buffer with its dense bitmaps) *is*
//! pooled: those buffers live in the scratches, are reserved to bounds
//! deterministic in `(n, m)` alone — nothing scales with the worker
//! ceiling anymore — and are counted by `heap_bytes()`, which is why
//! `fresh() == 0` holds on warm solves at any thread budget.

use crate::algo::{assign_heads_in, BccOpts, BccResult, Breakdown, CcScheme};
use crate::space::SpaceTracker;
use crate::tags::{compute_tags_in, TagScratch};
use fastbcc_connectivity::cc::{ldd_uf_jtb_filtered_in, uf_async_filtered_in, CcScratch};
use fastbcc_connectivity::ldd::LddOpts;
use fastbcc_connectivity::spanning_forest::forest_adjacency_in;
use fastbcc_ett::{root_forest_in, EttScratch, RootedForest};
use fastbcc_graph::{Graph, GraphView, V};
use std::time::Instant;

/// Every reusable per-phase buffer of one FAST-BCC solve, sized lazily on
/// first use and pooled across solves.
#[derive(Default)]
pub struct Workspace {
    /// LDD scratch + concurrent union–find, shared by First-CC and Last-CC.
    cc: CcScratch,
    /// First-CC component labels (tree labels for the rooting step).
    first_labels: Vec<u32>,
    /// Spanning-forest edge buffer produced by First-CC.
    forest: Vec<(V, V)>,
    /// Forest CSR offsets, recycled through `Graph::{from,into}_raw_parts`.
    tree_offsets: Vec<usize>,
    /// Forest CSR arcs, recycled the same way.
    tree_arcs: Vec<V>,
    /// Rooted forest (parents + Euler-tour positions) from the ETT.
    rf: RootedForest,
    /// ETT successor/rank arrays and list-ranking sample tables.
    ett: EttScratch,
    /// Tagging `w1`/`w2` vertex- and tour-ordered buffers.
    tag: TagScratch,
    /// Live/peak/fresh auxiliary-space accounting for the current solve.
    space: SpaceTracker,
}

impl Workspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserve the pooled buffers for an `n`-vertex graph, so even the
    /// first solve avoids most growth.
    ///
    /// `m` (undirected edge count) sizes only the edgeMap frontier layer's
    /// shared claim-slot buffer, which is bounded by the sparse↔dense
    /// switch threshold (`max(n, arcs/20)` slots). Everything else is
    /// `O(n)`: the input CSR is borrowed, and every per-edge pass writes
    /// only `O(n)` outputs (the spanning forest and ETT arc arrays are
    /// bounded by `2(n-1)`). The `O(√n)` list-ranking sample tables size
    /// themselves on first use.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut ws = Self::new();
        ws.cc.reserve(n, 2 * m);
        ws.first_labels.reserve(n);
        ws.forest.reserve(n);
        ws.tree_offsets.reserve(n + 1);
        ws.tree_arcs.reserve(2 * n);
        ws.rf.parent.reserve(n);
        ws.rf.first.reserve(n);
        ws.rf.last.reserve(n);
        ws.rf.roots.reserve(n);
        ws.rf.tour_vertex.reserve(2 * n);
        ws.ett.reserve(n);
        ws.tag.reserve(n);
        ws
    }

    /// The space accounting of the most recent solve.
    pub fn space(&self) -> &SpaceTracker {
        &self.space
    }

    /// Heap bytes currently reserved by every pooled buffer (capacity, not
    /// length). Growth of this value between solves is what
    /// [`SpaceTracker::fresh`] reports.
    pub fn heap_bytes(&self) -> usize {
        self.cc.heap_bytes()
            + 4 * self.first_labels.capacity()
            + std::mem::size_of::<(V, V)>() * self.forest.capacity()
            + 8 * self.tree_offsets.capacity()
            + 4 * self.tree_arcs.capacity()
            + self.rf.heap_bytes()
            + self.ett.heap_bytes()
            + self.tag.heap_bytes()
    }
}

/// Heap bytes reserved by the recycled result arrays.
pub(crate) fn result_heap_bytes(r: &BccResult) -> usize {
    4 * (r.labels.capacity() + r.head.capacity() + r.label_count.capacity()) + r.tags.heap_bytes()
}

/// A reusable FAST-BCC solver: one [`Workspace`] plus a recycled result
/// slot. Construct once, call [`solve`](Self::solve) per graph.
///
/// ```
/// use fastbcc_core::engine::BccEngine;
/// use fastbcc_core::BccOpts;
/// use fastbcc_graph::generators::classic::{cycle, windmill};
///
/// let mut engine = BccEngine::new(BccOpts::default());
/// assert_eq!(engine.solve(&windmill(6)).num_bcc, 6);
/// // Second solve: same workspace, no new major-array allocations.
/// assert_eq!(engine.solve(&cycle(10)).num_bcc, 1);
/// ```
pub struct BccEngine {
    opts: BccOpts,
    ws: Workspace,
    pub(crate) result: BccResult,
    /// Batch-dynamic state (attached graph, DSU, event scratch); empty
    /// until [`BccEngine::attach`] is called. Boxed so the static solve
    /// path doesn't pay for its footprint.
    pub(crate) dynamic: Box<crate::dynamic::DynState>,
}

fn empty_result() -> BccResult {
    BccResult {
        labels: Vec::new(),
        head: Vec::new(),
        label_count: Vec::new(),
        tags: Default::default(),
        num_bcc: 0,
        num_cc: 0,
        breakdown: Breakdown::default(),
        aux_peak_bytes: 0,
        fresh_alloc_bytes: 0,
        arena_bytes: 0,
    }
}

impl BccEngine {
    /// An engine with an empty workspace (sized by the first solve).
    pub fn new(opts: BccOpts) -> Self {
        Self {
            opts,
            ws: Workspace::new(),
            result: empty_result(),
            dynamic: Box::default(),
        }
    }

    /// An engine pre-sized for `n`-vertex / `m`-edge inputs (the result
    /// slot's recycled arrays included).
    pub fn with_capacity(n: usize, m: usize, opts: BccOpts) -> Self {
        let mut result = empty_result();
        result.labels.reserve(n);
        result.head.reserve(n);
        result.label_count.reserve(n);
        result.tags.parent.reserve(n);
        result.tags.first.reserve(n);
        result.tags.last.reserve(n);
        result.tags.low.reserve(n);
        result.tags.high.reserve(n);
        Self {
            opts,
            ws: Workspace::with_capacity(n, m),
            result,
            dynamic: Box::default(),
        }
    }

    /// The options every solve runs with.
    pub fn opts(&self) -> BccOpts {
        self.opts
    }

    /// The pooled workspace (for space inspection).
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Solve and move the result out, consuming the engine — the one-shot
    /// path behind [`crate::fast_bcc`].
    pub fn solve_into(mut self, g: &Graph) -> BccResult {
        self.solve(g);
        self.result
    }

    /// Build a [`crate::query::BccIndex`] over the most recent solve (the
    /// build-then-serve flow: `solve` once per graph version, `build_index`
    /// once, answer query traffic from the index — it owns copies of the
    /// arrays it needs, so it stays valid across later re-solves).
    pub fn build_index(&self) -> crate::query::BccIndex {
        let tree = crate::block_cut_tree::block_cut_tree(&self.result);
        crate::query::BccIndex::build(&self.result, &tree)
    }

    /// [`build_index`](Self::build_index) with a graph-version tag stamped
    /// on the result — the handoff a snapshot host (`fastbcc-serve`) uses:
    /// solve the next graph version, build its index, publish it with the
    /// version every answer batch will carry.
    pub fn build_index_versioned(&self, version: u64) -> crate::query::BccIndex {
        let mut ix = self.build_index();
        ix.set_version(version);
        ix
    }

    /// Run FAST-BCC on `g`, reusing every pooled buffer. The returned
    /// reference is valid until the next `solve`; clone fields out if you
    /// need them to outlive it.
    pub fn solve(&mut self, g: &Graph) -> &BccResult {
        self.solve_impl(g, None)
    }

    /// Run FAST-BCC on any [`GraphView`] backend — a flat [`Graph`], a
    /// [`fastbcc_graph::CompressedGraph`], or an mmap-backed
    /// [`fastbcc_graph::MappedGraph`] variant — reusing every pooled
    /// buffer exactly like [`solve`](Self::solve). Compressed and mapped
    /// backends are decoded per-block inside the traversal hot loops;
    /// no flat neighbor arrays are ever materialized, so the auxiliary
    /// footprint stays `O(n)` regardless of backend.
    ///
    /// Because the engine does not own or copy the view, any previously
    /// [`attach`](Self::attach)ed batch-dynamic graph is **detached**:
    /// a later [`apply_batch`](Self::apply_batch) without a fresh
    /// `attach` panics instead of silently evolving a stale CSR.
    pub fn solve_view<G: GraphView>(&mut self, g: &G) -> &BccResult {
        self.dynamic.detach_graph();
        self.solve_impl(g, None)
    }

    /// The engine's current result — whatever the most recent
    /// [`solve`](Self::solve), [`attach`](Self::attach), or
    /// [`apply_batch`](Self::apply_batch) produced (empty before the
    /// first solve). Lets dynamic callers re-read the maintained result
    /// without holding the mutable borrow those calls take.
    pub fn result(&self) -> &BccResult {
        &self.result
    }

    /// [`solve`](Self::solve) with a forced spanning-tree root: after
    /// First-CC, `root`'s component labels are remapped so `root` becomes
    /// its own representative, which [`root_forest_in`] then picks as the
    /// tree root. Used by the batch-dynamic region re-solver
    /// ([`Self::apply_batch`]), which must anchor a sub-solve at a block's
    /// head so the splice keeps the global orientation.
    pub(crate) fn solve_with_root(&mut self, g: &Graph, root: V) -> &BccResult {
        self.solve_impl(g, Some(root))
    }

    fn solve_impl<G: GraphView>(&mut self, g: &G, force_root: Option<V>) -> &BccResult {
        let n = g.n();
        let opts = self.opts;
        let ws = &mut self.ws;
        let res = &mut self.result;
        let heap_before = ws.heap_bytes() + result_heap_bytes(res);
        ws.space.begin_solve();

        if n == 0 {
            res.labels.clear();
            res.head.clear();
            res.label_count.clear();
            // Clear (don't replace) the tag arrays: replacing would drop
            // their pooled capacity and force the next non-empty solve to
            // reallocate all five.
            res.tags.parent.clear();
            res.tags.first.clear();
            res.tags.last.clear();
            res.tags.low.clear();
            res.tags.high.clear();
            res.num_bcc = 0;
            res.num_cc = 0;
            res.breakdown = Breakdown::default();
            res.aux_peak_bytes = 0;
            res.fresh_alloc_bytes = 0;
            res.arena_bytes = ws.cc.arena_bytes();
            return &self.result;
        }

        let ldd_opts = LddOpts {
            beta: None,
            local_search: opts.local_search,
            seed: opts.seed,
            ..Default::default()
        };

        // ---- Step 1: First-CC (spanning forest) -------------------------
        let t0 = Instant::now();
        let all_edges = |_: V, _: V| true;
        let num_cc = match opts.scheme {
            CcScheme::LddUfJtb => ldd_uf_jtb_filtered_in(
                g,
                ldd_opts,
                &all_edges,
                &mut ws.cc,
                &mut ws.first_labels,
                Some(&mut ws.forest),
            ),
            CcScheme::UfAsync => uf_async_filtered_in(
                g,
                &all_edges,
                &mut ws.cc,
                &mut ws.first_labels,
                Some(&mut ws.forest),
            ),
        };
        let first_cc = t0.elapsed();
        debug_assert_eq!(ws.forest.len(), n - num_cc);
        if let Some(r) = force_root {
            // Remap `r`'s component label to `r` itself. No other vertex
            // can already carry label `r` (labels are component reps), so
            // this only moves the root choice, never merges components.
            let rep = ws.first_labels[r as usize];
            if rep != r {
                for v in 0..n {
                    if ws.first_labels[v] == rep {
                        ws.first_labels[v] = r;
                    }
                }
            }
        }
        // LDD cluster/parent arrays + UF + labels + forest edges, plus the
        // shared frontier-staging buffers the connectivity phases claim
        // through (edgeMap slots, dense bitmaps, local-search stacks).
        ws.space
            .alloc(4 * n * 3 + 4 * n + 8 * ws.forest.len() + ws.cc.arena_bytes());

        // ---- Step 2: Rooting (ETT) --------------------------------------
        let t1 = Instant::now();
        forest_adjacency_in(n, &ws.forest, &mut ws.tree_offsets, &mut ws.tree_arcs);
        let tree = Graph::from_raw_parts(
            std::mem::take(&mut ws.tree_offsets),
            std::mem::take(&mut ws.tree_arcs),
        );
        root_forest_in(
            &tree,
            &ws.first_labels,
            opts.seed ^ 0xE77,
            &mut ws.rf,
            &mut ws.ett,
        );
        let rooting = t1.elapsed();
        ws.space.alloc(tree.bytes() + ws.rf.bytes());
        // Hand the forest CSR allocations back to the pool.
        let (tree_offsets, tree_arcs) = tree.into_raw_parts();
        ws.tree_offsets = tree_offsets;
        ws.tree_arcs = tree_arcs;

        // ---- Step 3: Tagging --------------------------------------------
        let t2 = Instant::now();
        let table_bytes = compute_tags_in(g, &ws.rf, &mut res.tags, &mut ws.tag);
        let tagging = t2.elapsed();
        ws.space.alloc(res.tags.bytes() + table_bytes);
        ws.space.free(table_bytes); // sparse tables freed inside compute_tags_in

        // ---- Step 4: Last-CC on the implicit skeleton -------------------
        let t3 = Instant::now();
        let tags = &res.tags;
        let skeleton_filter = |u: V, v: V| tags.in_skeleton(u, v);
        match opts.scheme {
            CcScheme::LddUfJtb => ldd_uf_jtb_filtered_in(
                g,
                LddOpts {
                    seed: opts.seed ^ 0x1A57,
                    ..ldd_opts
                },
                &skeleton_filter,
                &mut ws.cc,
                &mut res.labels,
                None,
            ),
            CcScheme::UfAsync => {
                uf_async_filtered_in(g, &skeleton_filter, &mut ws.cc, &mut res.labels, None)
            }
        };
        ws.space.alloc(4 * n * 3);

        let num_bcc = assign_heads_in(&res.labels, &res.tags, &mut res.head, &mut res.label_count);
        let last_cc = t3.elapsed();
        ws.space.alloc(8 * n);

        let heap_after = ws.heap_bytes() + result_heap_bytes(res);
        ws.space.note_fresh(heap_after.saturating_sub(heap_before));

        res.num_bcc = num_bcc;
        res.num_cc = num_cc;
        res.breakdown = Breakdown {
            first_cc,
            rooting,
            tagging,
            last_cc,
        };
        res.aux_peak_bytes = ws.space.peak();
        res.fresh_alloc_bytes = ws.space.fresh();
        res.arena_bytes = ws.cc.arena_bytes();
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_bcc;
    use crate::postprocess::{articulation_points, bridges, canonical_bccs};
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::generators::{grid2d, rmat};
    use fastbcc_primitives::with_threads;

    #[test]
    fn engine_matches_one_shot_on_zoo() {
        let mut engine = BccEngine::new(BccOpts::default());
        for g in [
            windmill(6),
            barbell(5, 3),
            cycle(40),
            clique_chain(5, 4),
            grid2d(12, 9, false),
            rmat(9, 2000, 11),
            disjoint_union(&[&cycle(4), &path(3), &complete(5)]),
        ] {
            let fresh = fast_bcc(&g, BccOpts::default());
            let pooled = engine.solve(&g);
            assert_eq!(pooled.num_bcc, fresh.num_bcc);
            assert_eq!(pooled.num_cc, fresh.num_cc);
            assert_eq!(canonical_bccs(pooled), canonical_bccs(&fresh));
            assert_eq!(articulation_points(pooled), articulation_points(&fresh));
            assert_eq!(bridges(pooled).len(), bridges(&fresh).len());
        }
    }

    #[test]
    fn second_solve_allocates_nothing() {
        // Single-threaded so frontier sizes (and thus transient capacities)
        // are identical run over run.
        with_threads(1, || {
            let g = rmat(10, 6000, 3);
            let mut engine = BccEngine::new(BccOpts::default());
            let first_fresh = engine.solve(&g).fresh_alloc_bytes;
            assert!(first_fresh > 0, "first solve must size the workspace");
            for _ in 0..3 {
                let r = engine.solve(&g);
                assert_eq!(
                    r.fresh_alloc_bytes, 0,
                    "repeat solve reallocated workspace buffers"
                );
                assert!(r.aux_peak_bytes > 0);
            }
        });
    }

    #[test]
    fn solves_are_bit_identical_single_threaded() {
        with_threads(1, || {
            let g = grid2d(25, 17, true);
            let baseline = fast_bcc(&g, BccOpts::default());
            let mut engine = BccEngine::new(BccOpts::default());
            // Solve a different graph in between to dirty the buffers.
            engine.solve(&windmill(8));
            let r = engine.solve(&g);
            assert_eq!(r.labels, baseline.labels);
            assert_eq!(r.head, baseline.head);
            assert_eq!(r.label_count, baseline.label_count);
            assert_eq!(r.tags.parent, baseline.tags.parent);
            assert_eq!(r.tags.low, baseline.tags.low);
            assert_eq!(r.tags.high, baseline.tags.high);
            assert_eq!(r.num_bcc, baseline.num_bcc);
        });
    }

    #[test]
    fn shrinking_and_growing_inputs_stay_correct() {
        let mut engine = BccEngine::new(BccOpts::default());
        let sizes = [2000usize, 10, 500, 3, 1000];
        for &n in &sizes {
            assert_eq!(engine.solve(&cycle(n)).num_bcc, 1, "cycle({n})");
            assert_eq!(engine.solve(&path(n)).num_bcc, n - 1, "path({n})");
        }
        assert_eq!(engine.solve(&Graph::empty(0)).num_bcc, 0);
        assert_eq!(engine.solve(&Graph::empty(5)).num_cc, 5);
        assert_eq!(engine.solve(&windmill(3)).num_bcc, 3);
    }

    #[test]
    fn empty_graph_interleave_keeps_buffers_warm() {
        with_threads(1, || {
            let g = rmat(9, 3000, 5);
            let mut engine = BccEngine::new(BccOpts::default());
            engine.solve(&g);
            assert_eq!(engine.solve(&Graph::empty(0)).num_bcc, 0);
            let r = engine.solve(&g);
            assert_eq!(
                r.fresh_alloc_bytes, 0,
                "empty-graph solve dropped pooled capacity"
            );
        });
    }

    #[test]
    fn with_capacity_presizes() {
        with_threads(1, || {
            let g = cycle(512);
            let mut cold = BccEngine::new(BccOpts::default());
            let cold_fresh = cold.solve(&g).fresh_alloc_bytes;

            let mut engine = BccEngine::with_capacity(512, 512, BccOpts::default());
            let before = engine.workspace().heap_bytes();
            assert!(before >= 4 * 512 * 4, "with_capacity reserved too little");
            let presized_fresh = engine.solve(&g).fresh_alloc_bytes;
            assert_eq!(engine.solve(&g).num_bcc, 1);
            // Pre-sizing must eliminate the bulk of first-solve growth
            // (only the O(√n) sample tables may still size themselves).
            assert!(
                presized_fresh < cold_fresh / 4,
                "pre-sized first solve still grew {presized_fresh} of {cold_fresh} bytes"
            );
        });
    }

    #[test]
    fn both_schemes_work_through_engine() {
        for scheme in [CcScheme::LddUfJtb, CcScheme::UfAsync] {
            let mut engine = BccEngine::new(BccOpts {
                scheme,
                ..Default::default()
            });
            assert_eq!(engine.solve(&windmill(5)).num_bcc, 5);
            assert_eq!(engine.solve(&barbell(4, 2)).num_bcc, 4);
        }
    }
}
