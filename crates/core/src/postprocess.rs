//! Postprocessing of the `O(n)` BCC representation: explicit BCC vertex
//! sets, articulation points, bridges, largest-BCC statistics, and the
//! canonical form used to compare algorithms.
//!
//! A BCC in the representation is a label class `{v : l[v] = L}` together
//! with its component head (when assigned). Vertex sets identify BCCs
//! uniquely because two distinct BCCs share at most one vertex (Fact 4.1).

use crate::algo::BccResult;
use fastbcc_graph::{NONE, V};
use fastbcc_primitives::atomics::as_atomic_u32;
use fastbcc_primitives::pack::pack_index;
use fastbcc_primitives::par::par_for;
use std::sync::atomic::Ordering;

/// Explicit vertex sets of every BCC, canonicalized: each BCC sorted
/// ascending, BCCs sorted lexicographically. Suitable for equality
/// comparison across algorithms.
pub fn canonical_bccs(r: &BccResult) -> Vec<Vec<V>> {
    let n = r.labels.len();
    let mut groups: std::collections::HashMap<u32, Vec<V>> = std::collections::HashMap::new();
    for v in 0..n {
        let l = r.labels[v];
        if r.is_bcc_label(l) {
            groups.entry(l).or_default().push(v as V);
        }
    }
    for (l, members) in groups.iter_mut() {
        let h = r.head[*l as usize];
        if h != NONE {
            members.push(h);
        }
        members.sort_unstable();
        members.dedup();
    }
    let mut out: Vec<Vec<V>> = groups.into_values().collect();
    out.sort_unstable();
    out
}

/// Number of BCCs each vertex belongs to (0 for isolated vertices).
pub fn bcc_membership_counts(r: &BccResult) -> Vec<u32> {
    let n = r.labels.len();
    let mut counts = vec![0u32; n];
    {
        let c = as_atomic_u32(&mut counts);
        // Own label class (when it is a real BCC)…
        par_for(n, |v| {
            if r.is_bcc_label(r.labels[v]) {
                c[v].fetch_add(1, Ordering::Relaxed);
            }
        });
        // …plus one per BCC this vertex heads.
        par_for(n, |l| {
            let h = r.head[l];
            if h != NONE && r.is_bcc_label(l as u32) {
                c[h as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    counts
}

/// Articulation points: vertices belonging to ≥ 2 BCCs (Lemma 4.4 ties
/// this to being a BCC head, but membership counting also handles roots).
pub fn articulation_points(r: &BccResult) -> Vec<V> {
    let counts = bcc_membership_counts(r);
    pack_index(counts.len(), |v| counts[v] >= 2)
}

/// Bridges: tree edges whose BCC is a single edge — label classes of size 1
/// with a head. Returned as `(parent, child)` pairs.
pub fn bridges(r: &BccResult) -> Vec<(V, V)> {
    let n = r.labels.len();
    fastbcc_primitives::pack::pack_map(
        n,
        |u| {
            let l = r.labels[u];
            // u's own class is {u} and has a head == its parent.
            l == u as u32
                && r.label_count[l as usize] == 1
                && r.head[l as usize] != NONE
                && r.head[l as usize] == r.tags.parent[u]
        },
        |u| (r.tags.parent[u], u as V),
    )
}

/// Size of the largest BCC (vertex count, head included) — the `|BCC₁|%`
/// column of Tab. 2 divides this by `n`.
pub fn largest_bcc_size(r: &BccResult) -> usize {
    let n = r.labels.len();
    fastbcc_primitives::reduce::reduce_with(
        n,
        0usize,
        |l| {
            if r.is_bcc_label(l as u32) {
                r.label_count[l] as usize + (r.head[l] != NONE) as usize
            } else {
                0
            }
        },
        |a, b| a.max(b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{fast_bcc, BccOpts};
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::Graph;

    fn result(g: &Graph) -> BccResult {
        fast_bcc(g, BccOpts::default())
    }

    #[test]
    fn canonical_bccs_windmill() {
        let g = windmill(3);
        let got = canonical_bccs(&result(&g));
        let want = vec![vec![0, 1, 2], vec![0, 3, 4], vec![0, 5, 6]];
        assert_eq!(got, want);
    }

    #[test]
    fn canonical_bccs_path_and_cycle() {
        let g = path(4);
        assert_eq!(
            canonical_bccs(&result(&g)),
            vec![vec![0, 1], vec![1, 2], vec![2, 3]]
        );
        let g = cycle(5);
        assert_eq!(canonical_bccs(&result(&g)), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn articulation_points_known_graphs() {
        assert_eq!(articulation_points(&result(&windmill(4))), vec![0]);
        assert_eq!(articulation_points(&result(&path(5))), vec![1, 2, 3]);
        assert_eq!(articulation_points(&result(&cycle(9))), Vec::<V>::new());
        assert_eq!(articulation_points(&result(&star(6))), vec![0]);
        // Barbell(4, 2): articulation points are the two clique attachment
        // vertices and the middle bridge vertex (vertex 8).
        let mut ap = articulation_points(&result(&barbell(4, 2)));
        ap.sort_unstable();
        assert_eq!(ap, vec![3, 4, 8]);
    }

    #[test]
    fn bridges_known_graphs() {
        let mut b = bridges(&result(&path(4)));
        b.iter_mut().for_each(|e| {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        });
        b.sort_unstable();
        assert_eq!(b, vec![(0, 1), (1, 2), (2, 3)]);

        assert!(bridges(&result(&cycle(6))).is_empty());
        assert!(bridges(&result(&complete(5))).is_empty());

        // Barbell(4,1): the single clique-to-clique edge is the bridge.
        let b = bridges(&result(&barbell(4, 1)));
        assert_eq!(b.len(), 1);
        let (x, y) = b[0];
        let (x, y) = (x.min(y), x.max(y));
        assert_eq!((x, y), (3, 4));
    }

    #[test]
    fn star_bridges_are_all_edges() {
        let g = star(7);
        assert_eq!(bridges(&result(&g)).len(), 6);
    }

    #[test]
    fn membership_counts() {
        let g = windmill(5);
        let c = bcc_membership_counts(&result(&g));
        assert_eq!(c[0], 5); // center in all 5 triangles
        for v in 1..g.n() {
            assert_eq!(c[v], 1);
        }
    }

    #[test]
    fn largest_bcc() {
        let g = barbell(6, 3);
        assert_eq!(largest_bcc_size(&result(&g)), 6);
        let g = disjoint_union(&[&complete(8), &cycle(5)]);
        assert_eq!(largest_bcc_size(&result(&g)), 8);
        assert_eq!(largest_bcc_size(&result(&Graph::empty(4))), 0);
    }

    #[test]
    fn isolated_vertices_have_no_membership() {
        let g = disjoint_union(&[&cycle(3), &Graph::empty(3)]);
        let c = bcc_membership_counts(&result(&g));
        assert_eq!(&c[3..], &[0, 0, 0]);
        assert!(articulation_points(&result(&g)).is_empty());
    }
}
