//! Online BCC query serving: [`BccIndex`].
//!
//! The solver produces the paper's `O(n)` BCC representation; the paper's
//! introduction motivates BCC as the substrate for *downstream queries* —
//! network reliability, centrality, planarity. This module is that layer:
//! a read-only index built **once** from a [`BccResult`] plus its
//! [`BlockCutTree`], answering
//!
//! | query | answer | cost |
//! |---|---|---|
//! | [`same_bcc(u, v)`](BccIndex::same_bcc) | share a biconnected component? | `O(1)` |
//! | [`is_articulation(v)`](BccIndex::is_articulation) | cut vertex? | `O(1)` |
//! | [`is_bridge(u, v)`](BccIndex::is_bridge) | is `{u, v}` a bridge edge? | `O(1)` |
//! | [`cut_vertices_on_path(u, v)`](BccIndex::cut_vertices_on_path) | # articulation points separating `u` from `v` | `O(B)` boundary scans + `O(1)` table |
//!
//! The machinery is the classic Euler-tour LCA, instantiated on the
//! **block–cut forest** instead of the input graph: the forest becomes a
//! CSR graph, `fastbcc_ett::root_forest` roots it and lays out the global
//! tour, [`fastbcc_ett::tour_depths`] turns the tour into a ±1 depth
//! array, and a position-returning block RMQ
//! ([`fastbcc_primitives::rmq::ArgRmq`]) answers `argmin(depth)` over tour
//! intervals — the LCA of two forest nodes. Per-node prefix counts of cut
//! nodes (`cuts_to_root`) then make "articulation points on the tree path"
//! a four-term sum, which is exactly the set of vertices whose removal
//! separates the two query endpoints.
//!
//! Space follows the repo's discipline: everything is flat `u32` arrays —
//! five `O(n)` vertex tables plus `O(t)` tour tables and the linear-space
//! blocked RMQ (`t ≤ 4n`), all reported by [`BccIndex::bytes`] and bounded
//! by [`crate::space::query_index_budget_bytes`]. Batches run on the
//! parallel runtime through a pooled [`QueryScratch`], so a warm
//! [`answer_batch`](BccIndex::answer_batch) reports
//! [`fresh_alloc_bytes`](QueryScratch::fresh_alloc_bytes)` == 0` at any
//! `FASTBCC_THREADS` budget — the same zero-allocation gate the engine's
//! solve path honors.

use crate::algo::BccResult;
use crate::block_cut_tree::BlockCutTree;
use fastbcc_ett::{root_forest, tour_depths};
use fastbcc_graph::{stats::cc_labels_seq, Graph, NONE, V};
use fastbcc_primitives::par::{par_for, par_for_grain};
use fastbcc_primitives::rmq::{ArgRmq, RmqKind};
use fastbcc_primitives::scan::scan_inclusive_inplace;
use fastbcc_primitives::slice::{uninit_vec, UnsafeSlice};

/// One BCC query. Vertex ids must be `< n` (the solved graph's vertex
/// count); out-of-range ids panic, exactly like the rest of the API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Do `u` and `v` share a biconnected component?
    SameBcc(V, V),
    /// Is `v` an articulation point?
    IsArticulation(V),
    /// Do `u` and `v` form a bridge edge (a 2-vertex BCC)?
    IsBridge(V, V),
    /// How many articulation points separate `u` from `v`?
    CutVerticesOnPath(V, V),
}

/// Answer to a [`Query`]: the boolean kinds return `Bool`, the path count
/// returns `Count` (`None` when no `u`–`v` path exists).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryAnswer {
    Bool(bool),
    Count(Option<u32>),
}

/// A deterministic mixed workload: `count` queries over vertex ids
/// `0..num_vertices`, ~25% of each kind. The single definition of the
/// batch shape served by the `queries` benchmark, the `query_service`
/// example, and the determinism tests — change the mix here and every
/// consumer follows.
pub fn random_mixed_batch(num_vertices: usize, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = fastbcc_primitives::rng::Rng::new(seed);
    (0..count)
        .map(|_| {
            let u = rng.index(num_vertices) as V;
            let v = rng.index(num_vertices) as V;
            match rng.index(4) {
                0 => Query::SameBcc(u, v),
                1 => Query::IsArticulation(u),
                2 => Query::IsBridge(u, v),
                _ => Query::CutVerticesOnPath(u, v),
            }
        })
        .collect()
}

/// Pooled output buffer for [`BccIndex::answer_batch`]. Construct once and
/// reuse: the answer slots stay allocated across batches, so every warm
/// batch reports [`fresh_alloc_bytes`](Self::fresh_alloc_bytes)` == 0`.
#[derive(Default)]
pub struct QueryScratch {
    answers: Vec<QueryAnswer>,
    fresh: usize,
}

impl QueryScratch {
    /// An empty scratch (sized by the first batch).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for batches of up to `q` queries, so even the
    /// first batch allocates nothing.
    pub fn with_capacity(q: usize) -> Self {
        Self {
            answers: Vec::with_capacity(q),
            fresh: 0,
        }
    }

    /// Heap bytes currently reserved by the answer buffer.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<QueryAnswer>() * self.answers.capacity()
    }

    /// Buffer capacity newly allocated by the most recent batch — 0 for
    /// every batch no larger than the largest batch served so far.
    pub fn fresh_alloc_bytes(&self) -> usize {
        self.fresh
    }
}

/// A read-only batched-query index over one BCC solve. See the module docs
/// for the construction; [`build`](Self::build) runs the parallel passes
/// once, queries never mutate.
pub struct BccIndex {
    // --- vertex-level O(1) tables (each length n) -----------------------
    /// Skeleton-connectivity label per vertex (copied out of the result so
    /// the index outlives engine re-solves).
    labels: Vec<u32>,
    /// Component head per label.
    head: Vec<V>,
    /// Vertex count of the BCC with label `l` (head included); 0 when `l`
    /// is not a real BCC.
    block_size: Vec<u32>,
    /// Rank of `v` in the tree's cut list; `NONE` for non-articulation
    /// vertices.
    cut_id: Vec<u32>,
    /// Block–cut-forest node of `v`: its cut node when `v` is an
    /// articulation point, else the one block containing it; `NONE` for
    /// isolated vertices.
    node_of: Vec<u32>,
    // --- block-cut forest (nodes 0..B are blocks, B.. are cuts) ----------
    /// Number of block nodes (`B`).
    num_block_nodes: usize,
    /// Forest-component representative per node (two vertices can be
    /// connected through the forest iff their nodes share one).
    comp: Vec<u32>,
    /// Euler-tour first position per node.
    first: Vec<u32>,
    /// Node at every tour position.
    tour_node: Vec<u32>,
    /// Number of cut nodes on the root→node path, node inclusive.
    cuts_to_root: Vec<u32>,
    /// `argmin(tour depth)` over tour intervals — Euler-tour LCA. Owns its
    /// copy of the depth key array, so the depths are not stored twice.
    lca: ArgRmq,
    /// Caller-assigned graph-version tag (0 until
    /// [`set_version`](Self::set_version)). A snapshot host such as
    /// `fastbcc-serve` stamps this into every answer batch so consumers can
    /// tell which graph version produced an answer.
    version: u64,
}

impl BccIndex {
    /// Build the index from a solve result and its block–cut tree.
    /// `O(n + t log t)` work over the forest tour length `t ≤ 4n`. The
    /// per-element passes are parallel primitives; two small passes (the
    /// forest-component BFS and the CSR degree counting) run sequentially
    /// over the forest, which has at most `2n` nodes and `2(n−1)` edges.
    pub fn build(r: &BccResult, t: &BlockCutTree) -> Self {
        let n = r.labels.len();
        let nb = t.blocks.len();
        let nc = t.cuts.len();
        let nodes = nb + nc;

        // Vertex tables: block sizes, block/cut ranks, forest node ids.
        // SAFETY: the scatter below writes every index `0..n` before use.
        let mut block_size: Vec<u32> = unsafe { uninit_vec(n) };
        {
            let view = UnsafeSlice::new(&mut block_size);
            par_for(n, |l| {
                let s = if r.is_bcc_label(l as u32) {
                    r.label_count[l] + (r.head[l] != NONE) as u32
                } else {
                    0
                };
                // SAFETY: label index written exactly once.
                unsafe { view.write(l, s) };
            });
        }
        let mut block_rank = vec![NONE; n];
        {
            let view = UnsafeSlice::new(&mut block_rank);
            let blocks = &t.blocks;
            // SAFETY: block labels are distinct vertices.
            par_for(nb, |i| unsafe { view.write(blocks[i] as usize, i as u32) });
        }
        let mut cut_id = vec![NONE; n];
        {
            let view = UnsafeSlice::new(&mut cut_id);
            let cuts = &t.cuts;
            // SAFETY: cut vertices are distinct.
            par_for(nc, |i| unsafe { view.write(cuts[i] as usize, i as u32) });
        }

        let mut node_of = vec![NONE; n];
        {
            let view = UnsafeSlice::new(&mut node_of);
            let (cut_id, block_rank) = (&cut_id, &block_rank);
            par_for(n, |v| {
                let x = if cut_id[v] != NONE {
                    nb as u32 + cut_id[v]
                } else {
                    block_rank[r.labels[v] as usize] // NONE if the class is no BCC
                };
                if x != NONE {
                    // SAFETY: one write per vertex v.
                    unsafe { view.write(v, x) };
                }
            });
            // A non-cut vertex whose own label class is not a BCC can still
            // sit in exactly one block: the single block it heads.
            par_for(n, |l| {
                let h = r.head[l];
                if h != NONE
                    && block_rank[l] != NONE
                    && cut_id[h as usize] == NONE
                    && block_rank[r.labels[h as usize] as usize] == NONE
                {
                    // SAFETY: a vertex in this case belongs to one BCC, so
                    // exactly one label l reaches it (else it would be a cut).
                    unsafe { view.write(h as usize, block_rank[l]) };
                }
            });
        }

        // The block-cut forest as a CSR graph — assembled directly, no
        // sorting: `t.edges` is already grouped by block (sorted by
        // `(block, cut)`, and block labels ascend with block ranks), and
        // the tree's cut-side CSR (`cut_offsets`/`cut_adj`) *is* the cut
        // half of the adjacency. Nodes 0..nb are blocks, nb.. are cuts;
        // within every neighbor list the mapped ids stay ascending because
        // both rank maps are monotone in vertex id.
        let ne = t.edges.len();
        let mut offsets = vec![0usize; nodes + 1];
        for &(b, _) in &t.edges {
            offsets[block_rank[b as usize] as usize + 1] += 1;
        }
        for i in 0..nb {
            offsets[i + 1] += offsets[i];
        }
        for i in 0..=nc {
            offsets[nb + i] = ne + t.cut_offsets[i] as usize;
        }
        // SAFETY: the two scatters below cover `0..ne` and `ne..2*ne`, so
        // every index is written before use.
        let mut arcs: Vec<V> = unsafe { uninit_vec(2 * ne) };
        {
            let view = UnsafeSlice::new(&mut arcs);
            let (edges, cut_adj, block_rank, cut_id) = (&t.edges, &t.cut_adj, &block_rank, &cut_id);
            // Block side: the grouped edge list in order. SAFETY: slot j
            // (and ne + j below) written exactly once.
            par_for(ne, |j| unsafe {
                view.write(j, nb as u32 + cut_id[edges[j].1 as usize])
            });
            // Cut side: the tree's cut CSR with labels mapped to ranks.
            par_for(ne, |j| unsafe {
                view.write(ne + j, block_rank[cut_adj[j] as usize])
            });
        }
        let forest = Graph::from_raw_parts(offsets, arcs);
        let comp = cc_labels_seq(&forest);
        let rf = root_forest(&forest, &comp, 0xB1_0C5);
        let lca = ArgRmq::build_from(tour_depths(&rf), RmqKind::Min);

        // Cut-node prefix counts along the tour: the same ±1-walk trick as
        // tour_depths, with "is a cut node" as the weight. The running
        // value at any position p is the number of cut nodes on the path
        // from tour[p]'s root to tour[p], inclusive.
        let tlen = rf.tour_len();
        let is_cut_node = |x: V| (x as usize >= nb) as i32;
        // SAFETY: the scatter below writes every tour position before use.
        let mut csteps: Vec<i32> = unsafe { uninit_vec(tlen) };
        {
            let view = UnsafeSlice::new(&mut csteps);
            let tour = &rf.tour_vertex;
            par_for(tlen, |p| {
                let s = if p == 0 {
                    is_cut_node(tour[0])
                } else {
                    let y = tour[p];
                    let x = tour[p - 1];
                    if rf.parent[y as usize] == x {
                        is_cut_node(y) // entering y from its parent
                    } else if rf.parent[y as usize] == NONE && rf.first[y as usize] as usize == p {
                        is_cut_node(y) - is_cut_node(x) // tree boundary reset
                    } else {
                        -is_cut_node(x) // returning from child x to y
                    }
                };
                // SAFETY: position p written exactly once.
                unsafe { view.write(p, s) };
            });
        }
        scan_inclusive_inplace(&mut csteps, 0i32, |a, b| a + b);
        let mut cuts_to_root: Vec<u32> = unsafe { uninit_vec(nodes) };
        {
            let view = UnsafeSlice::new(&mut cuts_to_root);
            let (first, csteps) = (&rf.first, &csteps);
            // SAFETY: one write per node.
            par_for(nodes, |x| unsafe {
                view.write(x, csteps[first[x] as usize] as u32)
            });
        }

        Self {
            labels: r.labels.clone(),
            head: r.head.clone(),
            block_size,
            cut_id,
            node_of,
            num_block_nodes: nb,
            comp,
            first: rf.first,
            tour_node: rf.tour_vertex,
            cuts_to_root,
            lca,
            version: 0,
        }
    }

    /// The caller-assigned graph-version tag (0 if never set).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp a graph-version tag onto this index. The tag is inert for the
    /// queries themselves; it exists so a snapshot host can hand out
    /// `Arc<BccIndex>` snapshots and tag every answer with the version of
    /// the graph that produced it.
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Vertex count of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of block nodes (= biconnected components).
    pub fn num_blocks(&self) -> usize {
        self.num_block_nodes
    }

    /// Number of cut nodes (= articulation points).
    pub fn num_cuts(&self) -> usize {
        self.comp.len() - self.num_block_nodes
    }

    /// Nodes of the block–cut forest.
    pub fn node_count(&self) -> usize {
        self.comp.len()
    }

    /// Heap bytes held by every index array (the "index bytes" column of
    /// the `queries` benchmark).
    pub fn bytes(&self) -> usize {
        4 * (self.labels.len()
            + self.head.len()
            + self.block_size.len()
            + self.cut_id.len()
            + self.node_of.len()
            + self.comp.len()
            + self.first.len()
            + self.tour_node.len()
            + self.cuts_to_root.len())
            + self.lca.bytes()
    }

    /// The label of a BCC containing both `u` and `v` (`u != v`), if any —
    /// the result representation's three-comparison trick: any two
    /// co-members of a BCC either share the label or one is the head of
    /// the other's class.
    #[inline]
    fn common_block(&self, u: V, v: V) -> Option<u32> {
        let lu = self.labels[u as usize];
        let lv = self.labels[v as usize];
        if lu == lv && self.block_size[lu as usize] > 0 {
            Some(lu)
        } else if self.head[lu as usize] == v {
            Some(lu)
        } else if self.head[lv as usize] == u {
            Some(lv)
        } else {
            None
        }
    }

    /// Do `u` and `v` share a biconnected component? `O(1)`.
    /// `same_bcc(u, u)` is true iff `u` belongs to at least one BCC (i.e.
    /// has an incident edge).
    #[inline]
    pub fn same_bcc(&self, u: V, v: V) -> bool {
        if u == v {
            return self.node_of[u as usize] != NONE;
        }
        self.common_block(u, v).is_some()
    }

    /// Is `v` an articulation point? `O(1)`.
    #[inline]
    pub fn is_articulation(&self, v: V) -> bool {
        self.cut_id[v as usize] != NONE
    }

    /// Is `{u, v}` a bridge edge? `O(1)`. True iff `u` and `v` share a
    /// BCC of exactly two vertices — a 2-vertex BCC is a single edge, so
    /// this is equivalent to "`(u, v)` is an edge and deleting it
    /// disconnects its endpoints".
    #[inline]
    pub fn is_bridge(&self, u: V, v: V) -> bool {
        u != v
            && matches!(self.common_block(u, v),
                        Some(l) if self.block_size[l as usize] == 2)
    }

    /// Number of articulation points separating `u` from `v`: vertices `w
    /// ∉ {u, v}` whose removal breaks every `u`–`v` path. `None` when no
    /// path exists at all (different components, or an isolated endpoint
    /// with `u != v`); `Some(0)` when `u == v`.
    ///
    /// Cost: one `argmin` LCA probe — two `O(B)` boundary-block scans
    /// (`B = 32`) plus an `O(1)` table lookup — and a four-term prefix-sum
    /// combination.
    pub fn cut_vertices_on_path(&self, u: V, v: V) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let a = self.node_of[u as usize];
        let b = self.node_of[v as usize];
        if a == NONE || b == NONE || self.comp[a as usize] != self.comp[b as usize] {
            return None;
        }
        if a == b {
            return Some(0); // same block (or same cut node): nothing between
        }
        let (fa, fb) = (self.first[a as usize], self.first[b as usize]);
        let (lo, hi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        let l = self.tour_node[self.lca.query(lo as usize, hi as usize)];
        let isc = |x: u32| (x as usize >= self.num_block_nodes) as u32;
        // Cut nodes on the a–b tree path, endpoints inclusive…
        let inclusive = self.cuts_to_root[a as usize] + self.cuts_to_root[b as usize]
            - 2 * self.cuts_to_root[l as usize]
            + isc(l);
        // …minus the endpoints' own nodes when they are cut nodes: a
        // vertex never separates itself from anything.
        Some(inclusive - isc(a) - isc(b))
    }

    /// Answer one query (the sequential path of
    /// [`answer_batch`](Self::answer_batch)).
    pub fn answer(&self, q: Query) -> QueryAnswer {
        match q {
            Query::SameBcc(u, v) => QueryAnswer::Bool(self.same_bcc(u, v)),
            Query::IsArticulation(v) => QueryAnswer::Bool(self.is_articulation(v)),
            Query::IsBridge(u, v) => QueryAnswer::Bool(self.is_bridge(u, v)),
            Query::CutVerticesOnPath(u, v) => QueryAnswer::Count(self.cut_vertices_on_path(u, v)),
        }
    }

    /// Answer a batch in parallel, writing into the pooled `scratch`.
    /// Answers land at the query's position. Queries are pure reads over
    /// immutable arrays, so the result is independent of the schedule and
    /// the thread budget; a warm scratch (any prior batch at least this
    /// large) makes the whole call allocation-free
    /// ([`QueryScratch::fresh_alloc_bytes`]` == 0`).
    pub fn answer_batch<'s>(
        &self,
        queries: &[Query],
        scratch: &'s mut QueryScratch,
    ) -> &'s [QueryAnswer] {
        let before = scratch.heap_bytes();
        scratch.answers.clear();
        scratch
            .answers
            .resize(queries.len(), QueryAnswer::Bool(false));
        {
            let view = UnsafeSlice::new(scratch.answers.as_mut_slice());
            // Finer grain than the default: a path query costs two block
            // scans, so ~512 queries amortize a steal comfortably.
            par_for_grain(queries.len(), 512, |i| {
                // SAFETY: slot i written exactly once.
                unsafe { view.write(i, self.answer(queries[i])) };
            });
        }
        scratch.fresh = scratch.heap_bytes().saturating_sub(before);
        &scratch.answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{fast_bcc, BccOpts};
    use crate::block_cut_tree::block_cut_tree;
    use fastbcc_graph::generators::classic::*;
    use fastbcc_graph::Graph;

    fn index_of(g: &Graph) -> BccIndex {
        let r = fast_bcc(g, BccOpts::default());
        let t = block_cut_tree(&r);
        BccIndex::build(&r, &t)
    }

    #[test]
    fn path_queries() {
        let ix = index_of(&path(5)); // 0-1-2-3-4
        assert!(ix.same_bcc(0, 1) && ix.same_bcc(3, 4));
        assert!(!ix.same_bcc(0, 2));
        assert!(ix.is_articulation(2) && !ix.is_articulation(0));
        assert!(ix.is_bridge(1, 2) && ix.is_bridge(2, 1));
        assert!(!ix.is_bridge(0, 4));
        assert_eq!(ix.cut_vertices_on_path(0, 4), Some(3));
        assert_eq!(ix.cut_vertices_on_path(1, 3), Some(1));
        assert_eq!(ix.cut_vertices_on_path(0, 1), Some(0));
        assert_eq!(ix.cut_vertices_on_path(2, 2), Some(0));
    }

    #[test]
    fn windmill_center_separates_blades() {
        let ix = index_of(&windmill(4));
        assert!(ix.is_articulation(0));
        for t1 in 0..4u32 {
            for t2 in 0..4u32 {
                let (a, b) = (1 + 2 * t1, 1 + 2 * t2);
                if t1 == t2 {
                    assert!(ix.same_bcc(a, a + 1));
                    assert_eq!(ix.cut_vertices_on_path(a, a + 1), Some(0));
                } else {
                    assert!(!ix.same_bcc(a, b));
                    assert_eq!(ix.cut_vertices_on_path(a, b), Some(1));
                }
            }
        }
        assert!(!ix.is_bridge(1, 2)); // triangle edge
        assert_eq!(ix.num_blocks(), 4);
        assert_eq!(ix.num_cuts(), 1);
    }

    #[test]
    fn biconnected_graphs_have_no_cuts() {
        for g in [cycle(9), complete(6), petersen()] {
            let ix = index_of(&g);
            assert_eq!(ix.num_cuts(), 0);
            assert_eq!(ix.num_blocks(), 1);
            assert!(ix.same_bcc(0, 2));
            assert!(!ix.is_bridge(0, 1));
            assert_eq!(ix.cut_vertices_on_path(0, 3), Some(0));
        }
    }

    #[test]
    fn disconnected_and_isolated() {
        let g = disjoint_union(&[&cycle(3), &path(2), &Graph::empty(2)]);
        let ix = index_of(&g);
        assert!(!ix.same_bcc(0, 3)); // different components
        assert_eq!(ix.cut_vertices_on_path(0, 3), None);
        assert_eq!(ix.cut_vertices_on_path(0, 5), None); // isolated endpoint
        assert_eq!(ix.cut_vertices_on_path(5, 5), Some(0));
        assert!(!ix.same_bcc(5, 5)); // isolated: member of no BCC
        assert!(ix.same_bcc(3, 3));
        assert!(ix.is_bridge(3, 4));
    }

    #[test]
    fn barbell_path_counts() {
        // Cliques 0..=3 and 4..=7 joined by the bridge path 3–8–4: the
        // articulation points are 3, 8, and 4.
        let g = barbell(4, 2);
        let ix = index_of(&g);
        let r = fast_bcc(&g, BccOpts::default());
        assert_eq!(crate::postprocess::articulation_points(&r).len(), 3);
        // Clique interior to clique interior: every articulation point lies
        // between them.
        assert_eq!(ix.cut_vertices_on_path(0, 7), Some(3));
        // Up to the middle bridge vertex (itself a cut, so not counted as a
        // separator of the pair): only the near attachment 3 lies between.
        assert_eq!(ix.cut_vertices_on_path(0, 8), Some(1));
        // Within one clique: none.
        assert_eq!(ix.cut_vertices_on_path(0, 2), Some(0));
    }

    #[test]
    fn batch_matches_sequential_and_reuses_scratch() {
        let g = clique_chain(5, 4);
        let ix = index_of(&g);
        let n = g.n() as u32;
        let mut queries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                queries.push(Query::SameBcc(i, j));
                queries.push(Query::IsBridge(i, j));
                queries.push(Query::CutVerticesOnPath(i, j));
            }
            queries.push(Query::IsArticulation(i));
        }
        let mut scratch = QueryScratch::new();
        let got: Vec<QueryAnswer> = ix.answer_batch(&queries, &mut scratch).to_vec();
        let want: Vec<QueryAnswer> = queries.iter().map(|&q| ix.answer(q)).collect();
        assert_eq!(got, want);
        assert!(scratch.heap_bytes() > 0);
        // Warm batches of the same (or smaller) size allocate nothing.
        for take in [queries.len(), queries.len() / 2, 1] {
            ix.answer_batch(&queries[..take], &mut scratch);
            assert_eq!(scratch.fresh_alloc_bytes(), 0, "batch of {take}");
        }
    }

    #[test]
    fn empty_graph_index() {
        let ix = index_of(&Graph::empty(0));
        assert_eq!(ix.node_count(), 0);
        let mut scratch = QueryScratch::new();
        assert!(ix.answer_batch(&[], &mut scratch).is_empty());
    }

    #[test]
    fn index_bytes_within_budget() {
        for g in [windmill(20), path(500), clique_chain(6, 30)] {
            let ix = index_of(&g);
            let budget = crate::space::query_index_budget_bytes(g.n());
            assert!(
                ix.bytes() > 0 && ix.bytes() <= budget,
                "index {} B outside (0, {budget}] for n={}",
                ix.bytes(),
                g.n()
            );
        }
    }
}
