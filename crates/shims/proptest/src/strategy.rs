//! Strategies: value generators composable with `prop_map` /
//! `prop_flat_map`. No shrinking — `generate` is the whole contract.

use crate::test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` combinator: the outer value parameterizes a new strategy.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
}

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
