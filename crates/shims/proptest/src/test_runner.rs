//! Test-runner types: configuration, case errors, and the deterministic
//! generator backing every strategy.

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API parity; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            // Under Miri every case runs on the interpreter (~100-1000x
            // slower), so a handful of cases keeps property tests useful
            // without blowing the CI budget; mirrors real proptest's
            // documented Miri guidance.
            cases: if cfg!(miri) { 8 } else { 256 },
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// API-parity alias used by real proptest callers.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator. Seeded from the test's name so
/// every run of a test replays the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed from a test identifier (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` 0 returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
