//! Hermetic stand-in for the `proptest` crate.
//!
//! Implements the surface the workspace's property tests use — the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range / tuple / `any` / `collection::vec` strategies with
//! `prop_map` and `prop_flat_map`, and the `prop_assert*` macros — on a
//! deterministic splitmix64 generator seeded from the test's module path
//! and name.
//!
//! Differences from real proptest, by design: no shrinking (a failure
//! reports the case number; re-running reproduces it exactly because the
//! seed is derived from the test name) and no failure persistence files.
//! Swap this shim for the real crate by pointing the workspace `proptest`
//! dependency at crates.io; no source changes are needed.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0usize..100, ys in proptest::collection::vec(any::<u32>(), 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let __strategies = ($($strat,)+);
            // Clamp under Miri even when a proptest_config block asks for
            // more: interpreted cases are orders of magnitude slower, and
            // UB detection doesn't need the full statistical budget.
            let __cases = if cfg!(miri) {
                __config.cases.min(8)
            } else {
                __config.cases
            };
            for __case in 0..__cases {
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fail the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "{}\n  both: {:?}", format!($($fmt)+), __l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(xs in crate::collection::vec(0u64..100, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_sees_outer_value(
            (n, v) in (1usize..20).prop_flat_map(|n| {
                crate::collection::vec(0..n, 1..4).prop_map(move |v| (n, v))
            })
        ) {
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn patterns_and_mut_bindings(mut xs in crate::collection::vec(0u32..50, 0..30)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("some::test");
        let mut b = TestRng::from_name("some::test");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
