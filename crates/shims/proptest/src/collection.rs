//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with lengths drawn from `[min, max)` and elements
/// from `element`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max.saturating_sub(self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors with lengths in `size` (half-open, as real proptest treats
/// `Range<usize>`) and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-size range");
    VecStrategy {
        element,
        min: size.start,
        max: size.end,
    }
}
