//! Exhaustive model checks of the pool's synchronization protocols, run on
//! the in-repo loom explorer (`cargo test -p fastbcc-rayon --features
//! model`). These drive the *actual* pool components — [`Deque`],
//! [`Region`], [`Job`] — compiled against the model's atomics via
//! [`crate::sync`], so every interleaving within the preemption bound is
//! executed for real and every `Ordering` feeds the explorer's
//! happens-before tracking.
//!
//! Each scenario is sized so the bounded exploration both *finishes*
//! (`report.complete`) and covers a non-trivial schedule space; the core
//! protocol tests assert >1,000 distinct interleavings each.

use super::*;
use loom::sync::atomic::AtomicUsize as ModelUsize;
use loom::Builder;

fn task(lo: u32) -> Task {
    Task {
        job: std::ptr::null(),
        lo,
        hi: lo + 1,
    }
}

/// Claim task `lo` in a shared bitmask, panicking (= model failure) if it
/// was already claimed by someone else — the exactly-once oracle.
fn claim(mask: &ModelUsize, lo: u32) {
    let prev = mask.fetch_or(1 << lo, std::sync::atomic::Ordering::SeqCst);
    assert_eq!(prev & (1 << lo), 0, "task {lo} claimed twice");
}

/// Chase–Lev core: the owner pops LIFO while two thieves steal FIFO.
/// Every task must be claimed exactly once in every interleaving — the
/// owner-pop vs. thief-steal race on the last element is settled by the
/// SeqCst `top` CAS, and the owner's SeqCst fence in `pop` keeps it from
/// missing a concurrent steal.
#[test]
fn model_deque_owner_pop_vs_two_thieves() {
    let report = Builder::default().check(|| {
        let deque = Arc::new(Deque::new());
        for i in 0..2 {
            deque.push(task(i)).unwrap();
        }
        let mask = Arc::new(ModelUsize::new(0));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let (d, m) = (Arc::clone(&deque), Arc::clone(&mask));
                loom::thread::spawn(move || {
                    if let Some(t) = d.steal() {
                        claim(&m, t.lo);
                    }
                })
            })
            .collect();
        while let Some(t) = deque.pop() {
            claim(&mask, t.lo);
        }
        for th in thieves {
            th.join().unwrap();
        }
        assert_eq!(
            mask.load(std::sync::atomic::Ordering::SeqCst),
            0b11,
            "a task was lost"
        );
    });
    assert!(
        report.failure.is_none(),
        "deque protocol failed: {}",
        report.failure.unwrap()
    );
    assert!(report.complete, "deque exploration did not finish");
    assert!(
        report.iterations > 1000,
        "only {} interleavings explored",
        report.iterations
    );
}

/// The pool's park/wake handshake (worker_loop / execute_range), as a
/// self-contained miniature over a real [`Deque`]:
///
/// * parker — under the pool lock, raise `PARKED` (SeqCst), scan the
///   deque, and `wait` only if it was empty;
/// * pusher — `push` (whose `bottom` store is SeqCst), load `PARKED`
///   (SeqCst), and if a parker is visible, **serialize on the pool lock**
///   before notifying.
///
/// `serialize_on_lock = true` is the shipped protocol: the explorer must
/// prove the wakeup can never be lost. `false` seeds the classic bug —
/// the notify can fire in the parker's scan-to-`wait` window.
fn park_handshake(serialize_on_lock: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let deque = Arc::new(Deque::new());
        let parked = Arc::new(AtomicUsize::new(0));
        let lock = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (d2, p2, l2, c2) = (
            Arc::clone(&deque),
            Arc::clone(&parked),
            Arc::clone(&lock),
            Arc::clone(&cv),
        );
        let parker = loom::thread::spawn(move || {
            let st = l2.lock().unwrap();
            // Dekker: raise PARKED (SeqCst) before scanning; pairs with
            // the pusher's SeqCst `bottom` store → PARKED load.
            p2.fetch_add(1, Ordering::SeqCst);
            if d2.is_empty() {
                let _st = c2.wait(st).unwrap();
            } else {
                drop(st);
            }
            p2.fetch_sub(1, Ordering::SeqCst);
            // Woken or never parked: the pushed task must be visible now.
            assert!(d2.steal().is_some(), "woke to an empty deque");
        });
        deque.push(task(0)).unwrap();
        // Pairs with the parker's SeqCst PARKED raise (see above).
        if parked.load(Ordering::SeqCst) > 0 {
            if serialize_on_lock {
                // Close the scan-to-wait window: the parker holds the
                // lock from before its PARKED raise until `wait`, so
                // taking it here orders us after that wait begins.
                drop(lock.lock().unwrap());
            }
            cv.notify_one();
        }
        parker.join().unwrap();
    }
}

#[test]
fn model_push_park_handshake_never_loses_wakeup() {
    // Bound 5 (vs. the default 2): the two-thread scenario is small, so
    // the deeper bound still completes fast while pushing the explored
    // space well past the 1,000-interleaving bar.
    let report = Builder {
        preemption_bound: Some(5),
        ..Builder::default()
    }
    .check(park_handshake(true));
    assert!(
        report.failure.is_none(),
        "push/park handshake failed: {}",
        report.failure.unwrap()
    );
    assert!(report.complete, "handshake exploration did not finish");
    assert!(
        report.iterations > 1000,
        "only {} interleavings explored",
        report.iterations
    );
}

/// Negative twin: without the pool-lock serialization the explorer MUST
/// find the lost wakeup (as a deadlock — the model condvar has no
/// spurious wakeups), with a replayable schedule.
#[test]
fn model_unserialized_notify_loses_wakeup() {
    let report = Builder::default().check(park_handshake(false));
    let failure = report
        .failure
        .expect("the unserialized notify must lose a wakeup in some schedule");
    assert_eq!(failure.kind, loom::FailureKind::Deadlock);
    assert!(!failure.schedule.is_empty(), "failure must be replayable");
}

/// Region ticket budget: with three contenders racing `try_ticket`, the
/// number of concurrent holders must never exceed `cap` — in any
/// interleaving of the Relaxed add/check/undo sequence.
fn contend(region: Arc<Region>, holders: Arc<ModelUsize>, cap: usize) {
    if region.try_ticket() {
        let now = holders.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        assert!(
            now <= cap,
            "{now} concurrent ticket holders under cap {cap}"
        );
        holders.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        region.release_ticket();
    }
}

fn region_budget(cap: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let region = Region::new(cap);
        let holders = Arc::new(ModelUsize::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let (r, h) = (Arc::clone(&region), Arc::clone(&holders));
                loom::thread::spawn(move || contend(r, h, cap))
            })
            .collect();
        contend(Arc::clone(&region), Arc::clone(&holders), cap);
        for t in threads {
            t.join().unwrap();
        }
        // All tickets returned: the budget must be whole again.
        assert!(!region.saturated() || cap == 0);
        assert_eq!(region.active.load(Ordering::Relaxed), 0);
    }
}

#[test]
fn model_region_budget_is_never_exceeded() {
    for cap in [1, 2] {
        // Bound 3: see model_push_park_handshake_never_loses_wakeup.
        let report = Builder {
            preemption_bound: Some(3),
            ..Builder::default()
        }
        .check(region_budget(cap));
        assert!(
            report.failure.is_none(),
            "region cap {cap} violated: {}",
            report.failure.unwrap()
        );
        assert!(report.complete, "region exploration did not finish");
        assert!(
            report.iterations > 1000,
            "only {} interleavings explored at cap {cap}",
            report.iterations
        );
    }
}

/// Job completion latch: a submitter and a helper race down the shared
/// cursor; the latch (`done` + wait mutex/condvar) must fire exactly when
/// the last piece completes, the submitter must never block forever, and
/// every piece must run exactly once.
#[test]
fn model_job_latch_fires_exactly_once() {
    let report = Builder::default().check(|| {
        let hits: Arc<Vec<ModelUsize>> = Arc::new((0..2).map(|_| ModelUsize::new(0)).collect());
        let h2 = Arc::clone(&hits);
        let body = move |i: usize| {
            h2[i].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        };
        let job = Arc::new(Job::new(&body, 2, 2, Region::new(2)));
        let j2 = Arc::clone(&job);
        let helper = loom::thread::spawn(move || j2.drain());
        job.drain();
        job.wait_and_drain();
        // The latch has fired: every piece is complete and counted once.
        assert_eq!(job.done.load(Ordering::Relaxed), 2);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(std::sync::atomic::Ordering::SeqCst),
                1,
                "piece {i} ran a wrong number of times"
            );
        }
        helper.join().unwrap();
    });
    assert!(
        report.failure.is_none(),
        "job latch failed: {}",
        report.failure.unwrap()
    );
    assert!(report.complete, "latch exploration did not finish");
}

/// The fixed hand-back buffer: a thief that cannot take a ticket returns
/// its stolen range via `return_range`; the submitter blocked in
/// `wait_and_drain` must pick it up and run it — the return-notify and
/// the latch wait must never miss each other.
#[test]
fn model_returned_range_reaches_the_submitter() {
    let report = Builder::default().check(|| {
        let hits: Arc<Vec<ModelUsize>> = Arc::new((0..2).map(|_| ModelUsize::new(0)).collect());
        let h2 = Arc::clone(&hits);
        let body = move |i: usize| {
            h2[i].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        };
        let job = Arc::new(Job::new(&body, 2, 2, Region::new(2)));
        // Pretend a thief claimed both pieces off the cursor (so only the
        // hand-back path can run them), then handed them back.
        job.cursor.store(2, Ordering::Relaxed);
        let j2 = Arc::clone(&job);
        let thief = loom::thread::spawn(move || j2.return_range(0, 2));
        job.wait_and_drain();
        assert_eq!(job.done.load(Ordering::Relaxed), 2);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(std::sync::atomic::Ordering::SeqCst),
                1,
                "piece {i} ran a wrong number of times"
            );
        }
        thief.join().unwrap();
    });
    assert!(
        report.failure.is_none(),
        "hand-back protocol failed: {}",
        report.failure.unwrap()
    );
    assert!(report.complete, "hand-back exploration did not finish");
}
