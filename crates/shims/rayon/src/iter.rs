//! Data-parallel iterators: the slice of rayon's iterator API the
//! workspace uses, executed by splitting inputs into contiguous pieces and
//! draining the pieces through the persistent work-sharing pool.
//!
//! Core contract: [`ParallelIterator::split`] turns an iterator into
//! ordered `(offset, sequential-iterator)` pieces. Adapters compose at the
//! piece level (`map` wraps each piece's iterator; `fold` turns each piece
//! into a single lazily-computed accumulator). Terminals hand the pieces
//! to [`run_pieces`], which publishes one pool job per operation; the
//! calling thread and any in-budget pool workers claim pieces with an
//! atomic cursor (see `pool.rs` — the pool bounds total live workers
//! globally, so nested parallel calls never oversubscribe). Piece
//! boundaries depend only on the input length and the worker count, never
//! on timing, so ordered terminals (`collect`) are deterministic.

use crate::pool::{current_num_threads, run_parallel};
use std::sync::Mutex;

/// Near-equal contiguous boundaries: `pieces + 1` values from 0 to `n`.
fn piece_bounds(n: usize, pieces: usize) -> Vec<usize> {
    let pieces = pieces.max(1);
    (0..=pieces).map(|i| i * n / pieces).collect()
}

/// How many pieces to aim for: a few per worker for load balance.
fn target_pieces(threads: usize, len_hint: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        (4 * threads).min(len_hint.max(1))
    }
}

/// Run every piece of `iter` through `work`, returning per-piece results in
/// piece order. Sequential when one worker (or one piece) suffices.
fn run_pieces<I, R, W>(iter: I, work: &W) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    W: Fn(usize, I::SeqIter) -> R + Sync,
{
    let threads = current_num_threads();
    let hint = iter.len_hint();
    let pieces = iter.split(target_pieces(threads, hint));
    if threads <= 1 || pieces.len() <= 1 {
        return pieces.into_iter().map(|(off, it)| work(off, it)).collect();
    }
    let np = pieces.len();
    let inputs: Vec<Mutex<Option<(usize, I::SeqIter)>>> =
        pieces.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..np).map(|_| Mutex::new(None)).collect();
    run_parallel(np, &|i| {
        let (off, it) = inputs[i]
            .lock()
            .unwrap()
            .take()
            .expect("piece claimed twice");
        *slots[i].lock().unwrap() = Some(work(off, it));
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("piece produced no result"))
        .collect()
}

/// The parallel-iterator trait (rayon's, reduced to the surface used).
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
    type SeqIter: Iterator<Item = Self::Item> + Send;

    /// Item count when cheaply known (piece-count heuristic only).
    fn len_hint(&self) -> usize;

    /// Split into ordered `(global offset of first item, iterator)` pieces.
    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Clone + Send + Sync,
        F: Fn(T, Self::Item) -> T + Clone + Send + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_pieces(self, &|_, it| {
            for x in it {
                f(x);
            }
        });
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let parts = run_pieces(self, &|_, it: Self::SeqIter| it.fold(identity(), &op));
        parts.into_iter().fold(identity(), op)
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_pieces(self, &|_, it: Self::SeqIter| it.sum::<S>())
            .into_iter()
            .sum()
    }

    fn count(self) -> usize {
        run_pieces(self, &|_, it: Self::SeqIter| it.count())
            .into_iter()
            .sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Ordered collection from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = run_pieces(iter, &|_, it: I::SeqIter| it.collect::<Vec<T>>());
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// --------------------------------------------------------------------------
// Base producers
// --------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_par_iter {
    ($t:ty) => {
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter {
                    start: self.start,
                    end: self.end,
                }
            }
        }

        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;

            fn len_hint(&self) -> usize {
                if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                }
            }

            fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
                let n = self.len_hint();
                let start = self.start;
                piece_bounds(n, pieces)
                    .windows(2)
                    .map(|w| (w[0], (start + w[0] as $t)..(start + w[1] as $t)))
                    .collect()
            }
        }
    };
}

impl_range_par_iter!(u32);
impl_range_par_iter!(u64);
impl_range_par_iter!(usize);

/// Parallel iterator over owned `Vec` elements.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len_hint(&self) -> usize {
        self.items.len()
    }

    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
        let bounds = piece_bounds(self.items.len(), pieces);
        let mut rest = self.items;
        let mut out: Vec<(usize, Self::SeqIter)> = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2).rev() {
            let tail = rest.split_off(w[0]);
            out.push((w[0], tail.into_iter()));
        }
        out.reverse();
        out
    }
}

/// Borrowing parallel iterator over slice elements (`par_iter`).
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
        let s = self.slice;
        piece_bounds(s.len(), pieces)
            .windows(2)
            .map(|w| (w[0], s[w[0]..w[1]].iter()))
            .collect()
    }
}

/// Parallel iterator over sliding windows (`par_windows`).
///
/// Construction validates `size >= 1` (matching `slice::windows`), so
/// `len_hint` and `split` agree on every constructible value.
pub struct SliceParWindows<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceParWindows<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Windows<'a, T>;

    fn len_hint(&self) -> usize {
        (self.slice.len() + 1).saturating_sub(self.size)
    }

    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
        let s = self.slice;
        let size = self.size;
        piece_bounds(self.len_hint(), pieces)
            .windows(2)
            .map(|w| {
                // Windows starting in [w0, w1) live in s[w0 .. w1-1+size].
                let hi = if w[1] > w[0] { w[1] - 1 + size } else { w[0] };
                (w[0], s[w[0]..hi.min(s.len())].windows(size))
            })
            .collect()
    }
}

/// `par_iter()` / `par_windows()` on slices (and `Vec` via deref).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceParIter<'_, T>;
    fn par_windows(&self, size: usize) -> SliceParWindows<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }

    fn par_windows(&self, size: usize) -> SliceParWindows<'_, T> {
        assert!(size >= 1, "window size must be positive");
        SliceParWindows { slice: self, size }
    }
}

// --------------------------------------------------------------------------
// Adapters
// --------------------------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Clone + Send + Sync,
{
    type Item = R;
    type SeqIter = std::iter::Map<I::SeqIter, F>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
        let f = self.f;
        self.base
            .split(pieces)
            .into_iter()
            .map(|(off, it)| (off, it.map(f.clone())))
            .collect()
    }
}

pub struct Enumerate<I> {
    base: I,
}

/// Sequential enumeration starting from a piece's global offset.
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type SeqIter = EnumerateSeq<I::SeqIter>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
        self.base
            .split(pieces)
            .into_iter()
            .map(|(off, it)| {
                (
                    off,
                    EnumerateSeq {
                        inner: it,
                        next: off,
                    },
                )
            })
            .collect()
    }
}

pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

/// A piece of a `fold`: yields exactly one accumulator, computed lazily on
/// the worker thread that claims the piece.
pub struct FoldSeq<I, T, F> {
    inner: Option<I>,
    init: Option<T>,
    f: F,
}

impl<I, T, F> Iterator for FoldSeq<I, T, F>
where
    I: Iterator,
    F: Fn(T, I::Item) -> T,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let it = self.inner.take()?;
        let mut acc = self.init.take()?;
        for x in it {
            acc = (self.f)(acc, x);
        }
        Some(acc)
    }
}

impl<I, T, ID, F> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Clone + Send + Sync,
    F: Fn(T, I::Item) -> T + Clone + Send + Sync,
{
    type Item = T;
    type SeqIter = FoldSeq<I::SeqIter, T, F>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split(self, pieces: usize) -> Vec<(usize, Self::SeqIter)> {
        let identity = self.identity;
        let fold_op = self.fold_op;
        self.base
            .split(pieces)
            .into_iter()
            .enumerate()
            .map(|(pi, (_, it))| {
                (
                    pi,
                    FoldSeq {
                        inner: Some(it),
                        init: Some(identity()),
                        f: fold_op.clone(),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<usize> = (0usize..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn for_each_covers_all() {
        use std::sync::atomic::AtomicUsize;
        let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        (0usize..5000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fold_reduce_concatenates_everything() {
        let out: Vec<u32> = (0u32..1000)
            .into_par_iter()
            .fold(Vec::new, |mut acc: Vec<u32>, x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0u32..1000).collect::<Vec<_>>());
    }

    #[test]
    fn slice_iter_sum_and_windows() {
        let xs: Vec<usize> = (0..1000).collect();
        let s: usize = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 999 * 1000 / 2);

        let bounds: Vec<usize> = vec![0, 3, 7, 10];
        let sums: Vec<usize> = bounds
            .par_windows(2)
            .map(|w| xs[w[0]..w[1]].iter().sum())
            .collect();
        assert_eq!(sums, vec![1 + 2, 3 + 4 + 5 + 6, 7 + 8 + 9]);
    }

    #[test]
    fn vec_into_par_iter_enumerate() {
        let mut data = vec![0u32; 257];
        let slices: Vec<&mut [u32]> = data.chunks_mut(16).collect();
        slices.into_par_iter().enumerate().for_each(|(b, blk)| {
            for x in blk.iter_mut() {
                *x = b as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 16) as u32);
        }
    }

    #[test]
    fn windows_enumerate_offsets_are_global() {
        let bounds: Vec<usize> = (0..=64).collect();
        let idx: Vec<usize> = bounds
            .par_windows(2)
            .enumerate()
            .map(|(b, w)| b + w[0])
            .collect();
        assert!(idx.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn par_windows_rejects_zero_size_at_construction() {
        let xs = [1u32, 2, 3];
        let _ = xs.par_windows(0);
    }

    #[test]
    fn par_windows_len_hint_matches_split() {
        let xs: Vec<u32> = (0..17).collect();
        for size in 1..=5usize {
            let hint = xs.par_windows(size).len_hint();
            let total: usize = xs
                .par_windows(size)
                .split(4)
                .into_iter()
                .map(|(_, it)| it.count())
                .sum();
            assert_eq!(hint, total, "size {size}");
            assert_eq!(hint, xs.windows(size).count(), "size {size}");
        }
    }

    /// Regression for the scoped-thread shim, where a nested `par_for`
    /// spawned ~threads² OS threads: the pool must bound concurrently
    /// running workers by the installed size and total spawned threads by
    /// the largest budget ever requested.
    #[test]
    fn nested_parallelism_bounds_live_workers() {
        use std::time::Duration;
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let hits: Vec<AtomicUsize> = (0..32 * 32).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            (0usize..32).into_par_iter().for_each(|i| {
                (0usize..32).into_par_iter().for_each(|j| {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(50));
                    hits[i * 32 + j].fetch_add(1, Ordering::SeqCst);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        assert!(
            peak.load(Ordering::SeqCst) <= 4,
            "{} concurrent workers under with_threads(4)",
            peak.load(Ordering::SeqCst)
        );
        // Workers are global and spawned at most once per budget slot:
        // never more than the largest worker count this test binary uses.
        let cap = crate::current_num_threads().max(4);
        assert!(
            crate::pool_spawn_count() < cap.max(2),
            "pool spawned {} threads (budget cap {})",
            crate::pool_spawn_count(),
            cap
        );
    }

    #[test]
    fn collect_is_identical_across_thread_counts() {
        let reference: Vec<u64> = (0u64..40_000)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        for k in [1usize, 2, 4] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(k)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| {
                (0u64..40_000)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(2_654_435_761))
                    .collect()
            });
            assert_eq!(got, reference, "collect diverged at {k} threads");
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let v: Vec<usize> = pool.install(|| (0usize..100).into_par_iter().map(|i| i).collect());
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }
}
