//! Hermetic stand-in for the `rayon` crate.
//!
//! The FAST-BCC workspace must build with no network access, so this crate
//! implements — from scratch, on `std::thread` — exactly the rayon surface
//! the workspace uses:
//!
//! * [`join`], [`scope`], [`current_num_threads`], [`current_thread_index`],
//!   [`ThreadPoolBuilder`] / [`ThreadPool::install`] (scoped worker counts,
//!   used by `fastbcc_primitives::par::with_threads` for the Fig. 4 sweeps);
//! * [`prelude`] — `into_par_iter()` on ranges and vectors, `par_iter()` /
//!   `par_windows()` on slices, and the `map` / `enumerate` / `fold` /
//!   `reduce` / `for_each` / `sum` / `collect` adapters.
//!
//! Execution model: a **persistent work-stealing pool** (see `pool.rs`).
//! Worker threads spawn lazily, once, and park on a condvar between
//! operations; each parallel operation publishes a type-erased job whose
//! contiguous pieces are claimed by the calling thread and by however
//! many pool workers the installed budget admits. Workers claim piece
//! *ranges*, split them onto per-worker Chase–Lev deques, and steal from
//! a random victim when idle, parking only after a bounded steal-spin
//! finds nothing ([`pool_steal_count`] / [`pool_deque_max_depth`] expose
//! this). `join` publishes its right branch the same way and runs it
//! inline only if no worker attached to it. An installed pool size of `k`
//! is enforced as a
//! shared ticket budget across arbitrarily nested operations, so
//! `install` regions never run more than `k` workers and a warm workload
//! spawns zero new OS threads ([`pool_spawn_count`]). With a size of 1,
//! everything runs inline on the calling thread, which keeps
//! single-thread runs fully deterministic. Piece boundaries depend only
//! on input length and the installed worker count, so `collect` is
//! order-stable like rayon's.
//!
//! The default worker budget honors the `FASTBCC_THREADS` environment
//! variable (a positive integer), falling back to the hardware
//! parallelism.
//!
//! Swap this shim for the real crate by pointing the workspace `rayon`
//! dependency at crates.io; the shim-specific extensions are
//! [`pool_spawn_count`] (a test hook) and [`pool_max_workers`] (the
//! ceiling on worker identities that per-worker scratch arrays are sized
//! for — with real rayon, the pool's configured thread count plays this
//! role), used nowhere in the algorithm crates' hot paths.

mod iter;
mod pool;
mod sync;

pub use pool::{
    current_num_threads, current_thread_index, join, pool_deque_max_depth, pool_max_workers,
    pool_spawn_count, pool_steal_count, scope, Scope, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
    };
}

pub use iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice};
