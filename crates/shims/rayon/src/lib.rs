//! Hermetic stand-in for the `rayon` crate.
//!
//! The FAST-BCC workspace must build with no network access, so this crate
//! implements — from scratch, on `std::thread::scope` — exactly the rayon
//! surface the workspace uses:
//!
//! * [`join`], [`scope`], [`current_num_threads`], [`ThreadPoolBuilder`] /
//!   [`ThreadPool::install`] (scoped worker counts, used by
//!   `fastbcc_primitives::par::with_threads` for the Fig. 4 sweeps);
//! * [`prelude`] — `into_par_iter()` on ranges and vectors, `par_iter()` /
//!   `par_windows()` on slices, and the `map` / `enumerate` / `fold` /
//!   `reduce` / `for_each` / `sum` / `collect` adapters.
//!
//! Execution model: every parallel operation splits its input into a few
//! contiguous pieces per worker and runs the pieces on scoped threads with
//! an atomic work-claim counter (a simplified, non-stealing fork–join).
//! With an installed pool size of 1, everything runs inline on the calling
//! thread, which keeps single-thread runs fully deterministic. Piece
//! boundaries depend only on input length and the installed worker count,
//! so `collect` is order-stable like rayon's.
//!
//! Swap this shim for the real crate by pointing the workspace `rayon`
//! dependency at crates.io; no source changes are needed.

mod iter;
mod pool;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
    };
}

pub use iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice};
