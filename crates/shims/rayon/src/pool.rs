//! Worker-count bookkeeping, `join`, `scope`, and scoped "thread pools".
//!
//! There is no persistent pool: `ThreadPool::install` only records the
//! requested worker count in a thread-local, and every parallel operation
//! spawns short-lived scoped threads up to that count. Worker threads
//! inherit the installing thread's count so nested parallel calls see a
//! consistent `current_num_threads`.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn hardware_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// 0 = no pool installed on this thread (fall back to hardware count).
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations on this thread may use.
pub fn current_num_threads() -> usize {
    let n = POOL_SIZE.with(Cell::get);
    if n == 0 {
        hardware_threads()
    } else {
        n
    }
}

/// RAII guard that installs a pool size on the current thread.
pub(crate) struct PoolSizeGuard {
    prev: usize,
}

impl PoolSizeGuard {
    pub(crate) fn install(n: usize) -> Self {
        let prev = POOL_SIZE.with(|c| {
            let prev = c.get();
            c.set(n);
            prev
        });
        Self { prev }
    }
}

impl Drop for PoolSizeGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        POOL_SIZE.with(|c| c.set(prev));
    }
}

/// Global count of live helper threads spawned by [`join`]; bounds the
/// thread explosion of deep recursive joins (mergesort, reductions).
static LIVE_JOIN_HELPERS: AtomicUsize = AtomicUsize::new(0);

struct HelperTicket;

impl HelperTicket {
    fn try_acquire() -> Option<Self> {
        let cap = hardware_threads().saturating_sub(1);
        let prev = LIVE_JOIN_HELPERS.fetch_add(1, Ordering::Relaxed);
        if prev >= cap {
            LIVE_JOIN_HELPERS.fetch_sub(1, Ordering::Relaxed);
            None
        } else {
            Some(Self)
        }
    }
}

impl Drop for HelperTicket {
    fn drop(&mut self) {
        LIVE_JOIN_HELPERS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Potentially-parallel fork–join: runs `a` on the calling thread and `b`
/// on a scoped helper thread when the pool size and the global helper
/// budget allow, else both sequentially.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    let Some(ticket) = HelperTicket::try_acquire() else {
        return (a(), b());
    };
    std::thread::scope(|s| {
        let handle = s.spawn(move || {
            let _guard = PoolSizeGuard::install(threads);
            let r = b();
            drop(ticket);
            r
        });
        let ra = a();
        let rb = match handle.join() {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Scope handle (`rayon::scope`). Spawned closures run inline, which is a
/// legal schedule for rayon scopes and keeps the shim simple.
pub struct Scope<'scope> {
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self);
    }
}

/// Create a scope; the workspace only uses it as a structured block around
/// parallel iterators, so the callback simply runs on the calling thread.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: PhantomData,
    })
}

/// Error building a pool (never produced by this shim; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means "use the hardware parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A scoped worker-count handle; see the module docs.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count installed.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let _guard = PoolSizeGuard::install(self.threads);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        let base = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), base);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn scope_spawn_runs() {
        let mut hits = 0;
        scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
