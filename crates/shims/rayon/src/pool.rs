//! The persistent work-sharing pool behind [`join`] and the parallel
//! iterators, plus the worker-count bookkeeping (`current_num_threads`,
//! `ThreadPool::install`).
//!
//! # Architecture
//!
//! Worker threads are spawned **once** (lazily, on first demand) and park
//! on a condvar between parallel operations — a warm solve spawns zero OS
//! threads ([`pool_spawn_count`] is the test hook for that invariant).
//! A parallel operation publishes a type-erased [`Job`] to a shared board:
//! a chunk cursor, a completion latch, and a raw pointer to the
//! operation's body on the submitting thread's stack. The submitting
//! thread immediately helps drain its own job; idle workers wake and
//! attach to any open job they may legally help. An attached worker does
//! not claim one piece at a time: it claims a contiguous *range* of
//! pieces (half of what remains), splits the range's upper halves onto
//! its own fixed-capacity Chase–Lev deque ([`Deque`]), and runs the rest
//! — so other idle workers can *steal* the published halves from a random
//! victim instead of contending on the shared cursor. A worker with an
//! empty deque steals before it parks: it sweeps the other workers'
//! deques in a rotated order for a bounded spin, and only parks on the
//! pool condvar once no stealable task is visible (checked under the pool
//! lock, which pushers take before waking a parked worker, so no wakeup
//! is lost). [`pool_steal_count`] and [`pool_deque_max_depth`] expose the
//! scheduler's behavior to benchmarks.
//!
//! # Worker-count fidelity
//!
//! Every `ThreadPool` owns a [`Region`] — a concurrency budget of `cap`
//! tickets shared by *all* operations submitted under that `install`
//! scope, however deeply nested. A pool worker may only attach to a job
//! if it can take a ticket from the job's region, while a submitting
//! thread always participates in its own job — so a region entered by `S`
//! concurrent submitting threads runs at most `max(S, cap)` workers, and
//! in the usual single-submitter case (`with_threads(k)` creates a fresh
//! region per call) never more than `k`, no matter how many cores the
//! machine has or how many jobs the region publishes. Threads with no
//! installed pool share one default region whose budget is
//! `FASTBCC_THREADS` (if set) or the hardware parallelism — concurrent
//! engines on different OS threads therefore share the pool's helpers
//! without oversubscribing the machine (helpers only fill the budget the
//! submitters haven't already used).
//!
//! # Deadlock freedom
//!
//! Only submitters ever block (on their own job's latch), and only after
//! draining every unclaimed chunk themselves; helpers never wait for
//! anything and never park with a non-empty deque. A thief that steals a
//! task but cannot take a region ticket hands the range back to the job
//! (`WaitState::returned`) and wakes the submitter, which always holds a
//! ticket for its own job and runs the range itself — so no piece is ever
//! stranded behind the budget. A blocked submitter is thus only waiting
//! on pieces that some thread is actively running, will pop from its own
//! deque, or has handed back, so progress is guaranteed even when every
//! worker is busy and nested operations run inline.
//!
//! # Memory-ordering protocols
//!
//! Every atomic in this module belongs to one of four protocols. The
//! model tests (`model_tests`, `--features model`) exhaustively check the
//! first three on the in-repo loom explorer; the `xtask` lint keeps each
//! `Ordering::` site annotated with the protocol it implements.
//!
//! * **Chase–Lev deque** (`Deque::{top, bottom}`, the `Slot` words) — the
//!   Le et al. weak-memory formulation. `top` is CASed SeqCst by thieves
//!   and the owner's last-element pop; `bottom` is plain for the owner
//!   except the SeqCst publish in `push`; the owner's pop interposes a
//!   SeqCst fence between its `bottom` decrement and its `top` read so it
//!   cannot miss a concurrent steal. Slot words are Relaxed: a slot in
//!   `[top, bottom)` is never overwritten, and a thief uses its reads
//!   only after winning the `top` CAS that proves membership.
//! * **Park/wake handshake (Dekker)** (`PARKED`, `Deque::bottom`, the
//!   pool lock) — a parking worker raises `PARKED` (SeqCst) *before*
//!   scanning deques; a pusher stores `bottom` (SeqCst) before loading
//!   `PARKED`. At least one of the two therefore sees the other; the
//!   pusher serializes on the pool lock before notifying, closing the
//!   scan-to-`wait` window of a worker that holds that lock.
//! * **Region tickets** (`Region::active`) — a Relaxed
//!   `fetch_add`-then-check with a compensating `fetch_sub` on rejection.
//!   Only the *count* matters (no data is published along this edge), so
//!   Relaxed suffices; the invariant is that successful `try_ticket`s
//!   never exceed `cap`.
//! * **Latch and counters** (`Job::{cursor, done, helpers}`, the stat
//!   counters) — `done` is AcqRel so the finishing increment orders the
//!   bodies' writes before the latch flip; the rest are Relaxed cursors
//!   and monotone statistics whose readers tolerate staleness. The latch
//!   handoff itself rides the `wait` mutex + condvar.
//!
//! All of the above goes through [`crate::sync`] — `std` by default, the
//! loom model types under `--features model` — and never names
//! `std::sync` directly (enforced by `cargo run -p xtask -- lint`).

use crate::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

fn hardware_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    })
}

/// Parse a `FASTBCC_THREADS`-style value: a positive integer, else `None`.
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Default worker budget when no pool is installed: the `FASTBCC_THREADS`
/// environment variable if set to a positive integer, else the hardware
/// parallelism.
fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        parse_threads(std::env::var("FASTBCC_THREADS").ok().as_deref())
            .unwrap_or_else(hardware_threads)
    })
}

/// Process-wide ceiling on pool-worker OS threads — the hardware
/// parallelism or the `FASTBCC_THREADS` budget, whichever is larger.
///
/// Worker indices ([`current_thread_index`]) are assigned in spawn order
/// and workers never exit, so this is also a hard upper bound on every
/// index the pool will ever hand out: `current_thread_index() <
/// pool_max_workers()` on any pool worker, forever. Callers building
/// per-worker scratch arrays (one slot per possible worker identity) size
/// them off this constant. An installed budget larger than the ceiling —
/// `with_threads(4 * cores)` — still gets a faithful *at most k* region
/// budget; it simply cannot recruit more distinct worker identities than
/// the machine has cores, which costs nothing (extra workers beyond the
/// core count would time-slice, not add parallelism).
pub fn pool_max_workers() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| hardware_threads().max(default_threads()))
}

// ---------------------------------------------------------------------------
// Regions: the concurrency budget of one installed pool scope
// ---------------------------------------------------------------------------

/// A budget of `cap` tickets shared by every job submitted under one
/// `install` scope (or the process-wide default scope). One ticket is one
/// thread — submitter or helper — currently running the region's bodies.
struct Region {
    cap: usize,
    active: AtomicUsize,
}

impl Region {
    fn new(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            cap: cap.max(1),
            active: AtomicUsize::new(0),
        })
    }

    /// Helper-side acquisition: backs off when the region is at capacity.
    ///
    /// Relaxed is enough for the whole ticket protocol: `active` is a pure
    /// counter whose add/sub pairs on each thread keep the *sum* exact
    /// (the RMWs are atomic, so overshoot from a failed attempt is always
    /// undone); tickets guard a budget, not data, so no happens-before
    /// edge is needed.
    fn try_ticket(&self) -> bool {
        let prev = self.active.fetch_add(1, Ordering::Relaxed);
        if prev >= self.cap {
            // Relaxed: undoes our own optimistic add (see above).
            self.active.fetch_sub(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Submitter-side acquisition: a submitter always participates in its
    /// own job, so it takes a ticket unconditionally.
    fn take_ticket(&self) {
        // Relaxed: pure budget counter, see `try_ticket`.
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    fn release_ticket(&self) {
        // Relaxed: pure budget counter, see `try_ticket`.
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    fn saturated(&self) -> bool {
        // Relaxed: an advisory check — a stale read only costs one futile
        // publish or skipped attach, never a budget violation.
        self.active.load(Ordering::Relaxed) >= self.cap
    }
}

fn default_region() -> Arc<Region> {
    static R: OnceLock<Arc<Region>> = OnceLock::new();
    R.get_or_init(|| Region::new(default_threads())).clone()
}

// ---------------------------------------------------------------------------
// Per-thread context
// ---------------------------------------------------------------------------

/// What a thread currently runs under: the installed worker count, the
/// region whose budget bounds it, and whether this thread already holds a
/// region ticket (true while running job bodies, so nested submissions
/// don't double-count themselves).
#[derive(Clone)]
struct Ctx {
    threads: usize,
    region: Arc<Region>,
    holds_ticket: bool,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Stable pool-worker index, set once per worker thread.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// RAII guard that installs a [`Ctx`] on the current thread.
struct CtxGuard {
    prev: Option<Ctx>,
}

impl CtxGuard {
    fn install(ctx: Ctx) -> Self {
        let prev = CTX.with(|c| c.borrow_mut().replace(ctx));
        Self { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Number of worker threads parallel operations on this thread may use.
pub fn current_num_threads() -> usize {
    CTX.with(|c| c.borrow().as_ref().map(|x| x.threads))
        .unwrap_or_else(default_threads)
}

/// The pool-worker index of the current thread (`0..` in spawn order), or
/// `None` on threads outside the pool (matches `rayon::current_thread_index`).
/// Stable per worker, so callers can key per-worker scratch off it.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

fn current_region_ticket() -> (Arc<Region>, bool) {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|x| (x.region.clone(), x.holds_ticket))
    })
    .unwrap_or_else(|| (default_region(), false))
}

// ---------------------------------------------------------------------------
// Per-worker Chase–Lev deques
// ---------------------------------------------------------------------------

/// A range `[lo, hi)` of `job`'s pieces awaiting execution.
///
/// Stored in deque slots as two plain `u64`s (the thin `Job` pointer and
/// the packed bounds), so slots are POD and thieves read them without
/// locks. The pointee is guaranteed alive while the task is unexecuted:
/// its pieces have not counted toward `done`, so the submitter is still
/// blocked in `wait_and_drain`, keeping the `Arc<Job>` (and the body on
/// its stack) alive.
#[derive(Clone, Copy, Debug)]
struct Task {
    job: *const Job,
    lo: u32,
    hi: u32,
}

struct Slot {
    job: AtomicU64,
    bounds: AtomicU64,
}

/// Deque capacity (power of two). Full deques reject pushes — the owner
/// keeps the range inline — rather than wrap onto slots a thief may still
/// be reading.
const DEQUE_CAP: usize = 256;

/// How many failed sweeps over the other deques a worker tolerates before
/// rechecking under the pool lock (and parking if nothing is stealable).
const STEAL_SPIN_ROUNDS: usize = 64;

/// A fixed-capacity Chase–Lev work-stealing deque (the Le et al.
/// weak-memory formulation, minus growth). The owner pushes and pops at
/// `bottom`; thieves CAS `top`. Slots in `[top, bottom)` are never
/// overwritten (pushes fail instead of wrapping), so a thief that wins
/// the `top` CAS has read untorn slot values.
struct Deque {
    top: AtomicI64,
    bottom: AtomicI64,
    slots: Box<[Slot]>,
}

impl Deque {
    fn new() -> Self {
        Self {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            slots: (0..DEQUE_CAP)
                .map(|_| Slot {
                    job: AtomicU64::new(0),
                    bounds: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Owner-side push. Fails (returning the task) when full, preserving
    /// the never-overwrite-`[top, bottom)` invariant thieves rely on.
    /// The `bottom` store is SeqCst so it orders against the parking
    /// workers' `PARKED` handshake (see `worker_loop`).
    fn push(&self, task: Task) -> Result<(), Task> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= DEQUE_CAP as i64 {
            return Err(task);
        }
        let slot = &self.slots[(b as usize) & (DEQUE_CAP - 1)];
        slot.job.store(task.job as usize as u64, Ordering::Relaxed);
        slot.bounds
            .store(((task.lo as u64) << 32) | task.hi as u64, Ordering::Relaxed);
        // SeqCst publish: orders this store against the parking workers'
        // PARKED handshake (Dekker, see `worker_loop`); also releases the
        // slot writes above to thieves that acquire-load `bottom`.
        self.bottom.store(b + 1, Ordering::SeqCst);
        // Relaxed: monotone statistics counter, no ordering needed.
        DEQUE_MAX_DEPTH.fetch_max((b + 1 - t) as usize, Ordering::Relaxed);
        Ok(())
    }

    /// Owner-side pop (LIFO). Races thieves only on the last element.
    fn pop(&self) -> Option<Task> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let task = self.read_slot(b);
        if t == b {
            // Last element: settle the race with thieves on `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Thief-side steal (FIFO). The slot is read *before* the CAS; the
    /// values are used only if the CAS wins, which proves the slot was
    /// still inside `[top, bottom)` at the read — and such slots are
    /// never overwritten.
    fn steal(&self) -> Option<Task> {
        // Acquire `top` then a SeqCst fence then acquire `bottom`: the
        // fence pairs with the owner's SeqCst fence in `pop`, so a thief
        // and the popping owner cannot both observe pre-race values and
        // take the same last element.
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let task = self.read_slot(t);
        // SeqCst CAS on `top`: the single linearization point thieves and
        // the owner's last-element pop race on; failure is Relaxed because
        // a loser discards everything it read.
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // Relaxed: monotone statistics counter, no ordering needed.
        STEAL_COUNT.fetch_add(1, Ordering::Relaxed);
        Some(task)
    }

    fn read_slot(&self, i: i64) -> Task {
        let slot = &self.slots[(i as usize) & (DEQUE_CAP - 1)];
        // Relaxed slot loads: publication order comes from `push`'s
        // release of `bottom`, and validity from winning the `top` CAS
        // afterwards — a loser never uses these values.
        let job = slot.job.load(Ordering::Relaxed) as usize as *const Job;
        let bounds = slot.bounds.load(Ordering::Relaxed);
        Task {
            job,
            lo: (bounds >> 32) as u32,
            hi: bounds as u32,
        }
    }

    /// SeqCst loads: pairs with the SeqCst `bottom` store in `push` for
    /// the park/wake handshake.
    fn is_empty(&self) -> bool {
        self.top.load(Ordering::SeqCst) >= self.bottom.load(Ordering::SeqCst)
    }
}

/// One deque per possible worker identity, allocated once on first use
/// (cold path — never during a warm solve).
fn deques() -> &'static [Deque] {
    static D: OnceLock<Vec<Deque>> = OnceLock::new();
    D.get_or_init(|| (0..pool_max_workers()).map(|_| Deque::new()).collect())
}

/// Successful deque steals, pool-wide and monotone.
static STEAL_COUNT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of any worker deque's depth.
static DEQUE_MAX_DEPTH: AtomicUsize = AtomicUsize::new(0);
/// Workers currently parked on the pool condvar — the wake hint checked
/// by deque pushers.
static PARKED: AtomicUsize = AtomicUsize::new(0);

/// Tasks successfully stolen from a worker deque by a thread other than
/// the deque's owner, since process start. Monotone; a warm workload at a
/// budget of 1 holds this constant (everything runs inline). (Shim
/// extension; real rayon has no equivalent.)
pub fn pool_steal_count() -> usize {
    STEAL_COUNT.load(Ordering::Relaxed)
}

/// High-water mark of any per-worker deque's depth since process start —
/// how much splittable work the pool has exposed to thieves at once.
/// (Shim extension; real rayon has no equivalent.)
pub fn pool_deque_max_depth() -> usize {
    // Relaxed: monotone statistics counter, no ordering needed.
    DEQUE_MAX_DEPTH.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A published parallel operation: `n_pieces` chunks claimed via an atomic
/// cursor, a completion latch, and a type-erased pointer to the body on
/// the submitter's stack.
struct Job {
    body: *const (dyn Fn(usize) + Sync),
    n_pieces: usize,
    /// Installed worker count at submission — the max threads (submitter
    /// included) that may run this job, and the `current_num_threads`
    /// value its bodies observe.
    cap: usize,
    region: Arc<Region>,
    /// Next unclaimed piece.
    cursor: AtomicUsize,
    /// Completed pieces; the latch fires when it reaches `n_pieces`.
    done: AtomicUsize,
    /// Attached helper workers (excludes the submitter).
    helpers: AtomicUsize,
    /// First panic payload raised by any piece, rethrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    wait: Mutex<WaitState>,
    wait_cv: Condvar,
}

/// Capacity of the fixed hand-back buffer. Bounded (and stack-inline) so
/// hand-backs never allocate — warm solves stay alloc-free even when a
/// thief hits a saturated budget.
const RETURNED_CAP: usize = 32;

/// The submitter's latch plus the hand-back buffer for ranges a thief
/// stole but could not take a region ticket for.
struct WaitState {
    finished: bool,
    returned: [(u32, u32); RETURNED_CAP],
    returned_len: usize,
}

// SAFETY: `body` points into the submitting thread's stack frame. The
// submitter never returns from `run_parallel`/`join` until the latch fires
// (`done == n_pieces`), and every dereference of `body` happens inside
// `run_piece` for a claimed piece, which counts toward `done` only after
// the call returns — so the pointee outlives every access. The remaining
// fields are ordinary sync primitives.
unsafe impl Send for Job {}
// SAFETY: same lifetime argument as `Send` directly above; shared access
// is fine because `body` is `Sync` and only ever called, never mutated.
unsafe impl Sync for Job {}

impl Job {
    /// Erase the body's lifetime; sound per the safety argument above.
    fn new(
        body: &(dyn Fn(usize) + Sync),
        n_pieces: usize,
        cap: usize,
        region: Arc<Region>,
    ) -> Self {
        // SAFETY: a pointer-to-pointer transmute that only erases the
        // lifetime; the pointee outlives every dereference per the
        // `Send`/`Sync` impl argument above.
        let body: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<*const _, *const _>(body as *const _) };
        Self {
            body,
            n_pieces,
            cap,
            region,
            cursor: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            helpers: AtomicUsize::new(0),
            panic: Mutex::new(None),
            wait: Mutex::new(WaitState {
                finished: false,
                returned: [(0, 0); RETURNED_CAP],
                returned_len: 0,
            }),
            wait_cv: Condvar::new(),
        }
    }

    fn run_piece(&self, i: usize) {
        // SAFETY: piece `i` is claimed but uncounted, so the submitter is
        // still blocked in `wait_and_drain` and the stack `body` is alive
        // (the `Send`/`Sync` impl argument above).
        let body = unsafe { &*self.body };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        // AcqRel latch: the Release publishes this piece's writes to
        // whoever observes the final count; the Acquire makes the thread
        // that trips the latch see every other piece's writes before it
        // reports completion.
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n_pieces {
            self.wait.lock().unwrap().finished = true;
            self.wait_cv.notify_all();
        }
    }

    /// Claim a contiguous run of unclaimed pieces — half of what remains,
    /// at least one — giving the claimer a range worth splitting onto its
    /// deque for thieves. Mixes safely with `drain`'s single-piece
    /// `fetch_add` claims.
    fn claim_range(&self) -> Option<(u32, u32)> {
        // Relaxed: the cursor only partitions piece indices (RMW atomicity
        // gives exactly-once); data visibility rides the `done` latch.
        self.cursor
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c < self.n_pieces).then(|| c + ((self.n_pieces - c) / 2).max(1))
            })
            .ok()
            .map(|c| (c as u32, (c + ((self.n_pieces - c) / 2).max(1)) as u32))
    }

    /// Hand a stolen-but-unticketable range back for the submitter (which
    /// always holds a ticket for its own job) to run. Spins on a full
    /// buffer instead of allocating; the submitter drains it, so the wait
    /// is bounded by pieces already running.
    fn return_range(&self, lo: u32, hi: u32) {
        loop {
            {
                let mut w = self.wait.lock().unwrap();
                if w.returned_len < RETURNED_CAP {
                    let n = w.returned_len;
                    w.returned[n] = (lo, hi);
                    w.returned_len = n + 1;
                    self.wait_cv.notify_all();
                    return;
                }
            }
            crate::sync::thread::yield_now();
        }
    }

    /// Block until every piece completes, running any handed-back ranges
    /// in the meantime. Must run under the submitter's `CtxGuard` so the
    /// ranges' bodies see the right budget.
    fn wait_and_drain(&self) {
        let mut w = self.wait.lock().unwrap();
        loop {
            if w.returned_len > 0 {
                w.returned_len -= 1;
                let (lo, hi) = w.returned[w.returned_len];
                drop(w);
                for i in lo..hi {
                    self.run_piece(i as usize);
                }
                w = self.wait.lock().unwrap();
                continue;
            }
            if w.finished {
                return;
            }
            w = self.wait_cv.wait(w).unwrap();
        }
    }

    /// Claim and run pieces until the cursor is exhausted.
    fn drain(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_pieces {
                break;
            }
            self.run_piece(i);
        }
    }

    fn exhausted(&self) -> bool {
        // Relaxed: advisory — a stale cursor read only delays retiring
        // the job from the board by one scan.
        self.cursor.load(Ordering::Relaxed) >= self.n_pieces
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

// ---------------------------------------------------------------------------
// The shared pool: job board + persistent workers
// ---------------------------------------------------------------------------

struct PoolState {
    open: Vec<Arc<Job>>,
    spawned: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// Mirror of `PoolState::spawned` readable without the lock.
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static PoolShared {
    static P: OnceLock<PoolShared> = OnceLock::new();
    P.get_or_init(|| PoolShared {
        state: Mutex::new(PoolState {
            open: Vec::new(),
            spawned: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Total pool worker OS threads ever spawned. Monotone; workers are
/// spawned lazily and never exit, so a warm workload holds this constant —
/// the test hook for the "zero spawns after warm-up" invariant. (Shim
/// extension; real rayon has no equivalent.)
pub fn pool_spawn_count() -> usize {
    SPAWNED.load(Ordering::Relaxed)
}

/// Put a job on the board, lazily growing the worker set so up to
/// `max_helpers` workers could attach, and wake parked workers.
fn publish(job: &Arc<Job>, max_helpers: usize) {
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    st.open.retain(|j| !j.exhausted());
    st.open.push(job.clone());
    // The `pool_max_workers` clamp keeps worker indices inside the bound
    // per-worker scratch arrays are sized for (see `pool_max_workers`).
    let want = max_helpers
        .min(job.region.cap.saturating_sub(1))
        .min(pool_max_workers());
    while st.spawned < want {
        let index = st.spawned;
        crate::sync::thread::Builder::new()
            .name(format!("fastbcc-pool-{index}"))
            .spawn(move || worker_loop(index))
            .expect("failed to spawn pool worker");
        st.spawned += 1;
        // Relaxed: lock-free mirror of a counter written under the pool
        // lock; readers only need an eventually-fresh statistic.
        SPAWNED.store(st.spawned, Ordering::Relaxed);
    }
    drop(st);
    pool.work_cv.notify_all();
}

/// Remove a completed job from the board.
fn retire(job: &Arc<Job>) {
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    st.open.retain(|j| !Arc::ptr_eq(j, job) && !j.exhausted());
}

/// Find an open job this worker may help: unexhausted, under its worker
/// cap, and with a region ticket to spare.
fn try_attach(st: &mut PoolState) -> Option<Arc<Job>> {
    st.open.retain(|j| !j.exhausted());
    for job in &st.open {
        // +1 for the submitter, which is not counted in `helpers`.
        // Relaxed: `helpers` is a soft per-job cap checked under the pool
        // lock on this path; a stale read can only under-attach.
        if job.helpers.load(Ordering::Relaxed) + 1 >= job.cap {
            continue;
        }
        if !job.region.try_ticket() {
            continue;
        }
        // Relaxed: pure counter, decremented by the same worker on detach.
        job.helpers.fetch_add(1, Ordering::Relaxed);
        return Some(job.clone());
    }
    None
}

fn worker_loop(index: usize) {
    WORKER_INDEX.with(|c| c.set(Some(index)));
    let deque = &deques()[index];
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    loop {
        if let Some(job) = try_attach(&mut st) {
            drop(st);
            work_attached(&job, deque);
            // The freed ticket may unblock another open job's helpers.
            pool.work_cv.notify_all();
            st = pool.state.lock().unwrap();
            continue;
        }
        // Park/wake handshake (Dekker): raise PARKED (SeqCst) *before*
        // scanning the deques; pushers store `bottom` (SeqCst) before
        // loading PARKED. Whichever ordering the hardware picks, either
        // we see the task or the pusher sees us parked and — after
        // serializing on the pool lock we hold until `wait` — wakes us.
        PARKED.fetch_add(1, Ordering::SeqCst);
        if any_stealable(index) {
            PARKED.fetch_sub(1, Ordering::SeqCst);
            drop(st);
            steal_spin(index, deque);
            st = pool.state.lock().unwrap();
            continue;
        }
        st = pool.work_cv.wait(st).unwrap();
        // SeqCst: the Dekker counterpart of the raise above — we are no
        // longer parked, so pushers stop paying the wake cost for us.
        PARKED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Drain an attached job: pop our own deque first (LIFO), else claim a
/// fresh range from the shared cursor and split it as we go. Popped tasks
/// always belong to `job` (we push only while attached here), so the held
/// `Arc` keeps every dereference alive.
fn work_attached(job: &Arc<Job>, deque: &Deque) {
    {
        let _ctx = CtxGuard::install(Ctx {
            threads: job.cap,
            region: job.region.clone(),
            holds_ticket: true,
        });
        loop {
            if let Some(t) = deque.pop() {
                execute_range(job, t.lo, t.hi, Some(deque));
                continue;
            }
            match job.claim_range() {
                Some((lo, hi)) => execute_range(job, lo, hi, Some(deque)),
                None => break,
            }
        }
    }
    // Relaxed: pure counter, pairs with the attach-side fetch_add.
    job.helpers.fetch_sub(1, Ordering::Relaxed);
    job.region.release_ticket();
}

/// Run pieces `[lo, hi)`, publishing the upper half onto `deque` at each
/// step so idle workers can steal it. A full deque just keeps the rest of
/// the range inline.
fn execute_range(job: &Job, lo: u32, mut hi: u32, deque: Option<&Deque>) {
    if let Some(d) = deque {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if d.push(Task {
                job: job as *const Job,
                lo: mid,
                hi,
            })
            .is_err()
            {
                break;
            }
            // SeqCst: Dekker pairing with the worker's SeqCst PARKED
            // raise — our `push` stored `bottom` SeqCst before this load,
            // so either we see the parker or the parker sees the task.
            if PARKED.load(Ordering::SeqCst) > 0 {
                // Serialize on the pool lock so a worker between its
                // deque scan and `wait` cannot miss this wakeup.
                drop(pool().state.lock().unwrap());
                pool().work_cv.notify_one();
            }
            hi = mid;
        }
    }
    for i in lo..hi {
        job.run_piece(i as usize);
    }
}

/// Any other worker's deque visibly non-empty?
fn any_stealable(self_index: usize) -> bool {
    deques()
        .iter()
        .enumerate()
        .any(|(i, d)| i != self_index && !d.is_empty())
}

/// Bounded steal-spin: sweep the other deques until a steal lands, the
/// work disappears, or the round budget runs out.
fn steal_spin(index: usize, deque: &Deque) {
    for round in 0..STEAL_SPIN_ROUNDS {
        if steal_and_run(index, deque) || !any_stealable(index) {
            return;
        }
        crate::sync::hint::spin_loop();
        if round & 7 == 7 {
            crate::sync::thread::yield_now();
        }
    }
}

thread_local! {
    /// Per-thread victim-rotation state, so concurrent thieves don't all
    /// hammer the same deque.
    static STEAL_SEED: Cell<usize> = const { Cell::new(0x9E37_79B9) };
}

/// One sweep over the other workers' deques in a rotated order; on a
/// successful steal, runs the range (and everything it splits off).
fn steal_and_run(self_index: usize, my_deque: &Deque) -> bool {
    let all = deques();
    let n = all.len();
    if n <= 1 {
        return false;
    }
    let seed = STEAL_SEED.with(|s| {
        let v = s
            .get()
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(self_index + 1);
        s.set(v);
        v
    });
    for k in 0..n {
        let v = (seed + k) % n;
        if v == self_index {
            continue;
        }
        if let Some(task) = all[v].steal() {
            run_stolen(task, my_deque);
            return true;
        }
    }
    false
}

/// Run a stolen range under a fresh region ticket, or hand it back to the
/// submitter if the budget is saturated.
fn run_stolen(task: Task, my_deque: &Deque) {
    // SAFETY: the stolen range's pieces are unexecuted, so `done` has not
    // reached `n_pieces` and the submitter still blocks in
    // `wait_and_drain`, keeping the job (and the body it points at) alive
    // until our last `run_piece` returns.
    let job = unsafe { &*task.job };
    let region = job.region.clone();
    if !region.try_ticket() {
        job.return_range(task.lo, task.hi);
        return;
    }
    {
        let _ctx = CtxGuard::install(Ctx {
            threads: job.cap,
            region: region.clone(),
            holds_ticket: true,
        });
        execute_range(job, task.lo, task.hi, Some(my_deque));
        // Drain our own splits (same job, same ticket) before releasing.
        while let Some(t) = my_deque.pop() {
            // SAFETY: same argument as the steal above — popped splits
            // are unexecuted pieces of a job whose submitter still waits.
            let j = unsafe { &*t.job };
            execute_range(j, t.lo, t.hi, Some(my_deque));
        }
    }
    region.release_ticket();
    pool().work_cv.notify_all();
}

// ---------------------------------------------------------------------------
// Submission entry points
// ---------------------------------------------------------------------------

/// Run `body(i)` for every `i in 0..n_pieces`, each exactly once, sharing
/// the pieces between the calling thread and any pool workers the region
/// budget admits. Returns after every piece has completed; panics from
/// pieces are rethrown here.
pub(crate) fn run_parallel(n_pieces: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_pieces == 0 {
        return;
    }
    let cap = current_num_threads();
    if cap <= 1 || n_pieces == 1 {
        for i in 0..n_pieces {
            body(i);
        }
        return;
    }
    let (region, holds) = current_region_ticket();
    if holds && region.saturated() {
        // Every budgeted thread in this region is already busy, so no
        // helper could attach — skip the job machinery and run inline.
        for i in 0..n_pieces {
            body(i);
        }
        return;
    }
    if !holds {
        region.take_ticket();
    }
    let job = Arc::new(Job::new(body, n_pieces, cap, region.clone()));
    publish(&job, cap.saturating_sub(1).min(n_pieces - 1));
    {
        let _ctx = CtxGuard::install(Ctx {
            threads: cap,
            region: region.clone(),
            holds_ticket: true,
        });
        job.drain();
        job.wait_and_drain();
    }
    retire(&job);
    if !holds {
        region.release_ticket();
        pool().work_cv.notify_all();
    }
    if let Some(payload) = job.take_panic() {
        resume_unwind(payload);
    }
}

/// Potentially-parallel fork–join: publishes the right branch to the pool,
/// runs the left branch on the calling thread, then runs the right branch
/// inline if no worker picked it up in the meantime.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let cap = current_num_threads();
    if cap <= 1 {
        return (a(), b());
    }
    let (region, holds) = current_region_ticket();
    if holds && region.saturated() {
        return (a(), b());
    }
    if !holds {
        region.take_ticket();
    }

    let b_fn = Mutex::new(Some(b));
    let b_out: Mutex<Option<RB>> = Mutex::new(None);
    let body = |_: usize| {
        let f = b_fn
            .lock()
            .unwrap()
            .take()
            .expect("join branch claimed twice");
        let r = f();
        *b_out.lock().unwrap() = Some(r);
    };
    let job = Arc::new(Job::new(&body, 1, cap, region.clone()));
    publish(&job, 1);
    let ra = {
        let _ctx = CtxGuard::install(Ctx {
            threads: cap,
            region: region.clone(),
            holds_ticket: true,
        });
        let ra = catch_unwind(AssertUnwindSafe(a));
        // Steal-visible fairness: a worker that attached has already woken
        // and paid a region ticket to run this branch — claiming it out
        // from under it would send the worker straight back to the parked
        // state and waste the wakeup. Defer to it; the cursor still
        // arbitrates, so if its claim loses a race the piece runs exactly
        // once regardless. Only when no worker has attached do we claim
        // the branch inline.
        if job.helpers.load(Ordering::Relaxed) == 0 {
            job.drain();
        }
        job.wait_and_drain();
        ra
    };
    retire(&job);
    if !holds {
        region.release_ticket();
        pool().work_cv.notify_all();
    }
    match ra {
        Err(payload) => resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = job.take_panic() {
                resume_unwind(payload);
            }
            let rb = b_out
                .into_inner()
                .unwrap()
                .expect("join branch produced no result");
            (ra, rb)
        }
    }
}

// ---------------------------------------------------------------------------
// Scopes and thread-pool handles
// ---------------------------------------------------------------------------

use std::marker::PhantomData;

/// Scope handle (`rayon::scope`). Spawned closures run inline, which is a
/// legal schedule for rayon scopes and keeps the shim simple.
pub struct Scope<'scope> {
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self);
    }
}

/// Create a scope; the workspace only uses it as a structured block around
/// parallel iterators, so the callback simply runs on the calling thread.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: PhantomData,
    })
}

/// Error building a pool (never produced by this shim; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means "use `FASTBCC_THREADS`, else the hardware
    /// parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            threads,
            region: Region::new(threads),
        })
    }
}

/// A worker-count scope over the shared persistent pool. `install` does
/// not spawn threads; it installs this pool's concurrency `Region` so
/// every operation inside runs with at most `threads` workers — reusing
/// one `ThreadPool` across calls shares one budget. Note that a
/// submitting thread always participates in its own operations, so
/// entering one pool's region from `S` OS threads at once runs up to
/// `max(S, threads)` workers; the budget caps the pool *helpers*, not
/// the callers.
pub struct ThreadPool {
    threads: usize,
    region: Arc<Region>,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count and budget installed.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let _guard = CtxGuard::install(Ctx {
            threads: self.threads,
            region: self.region.clone(),
            holds_ticket: false,
        });
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(all(test, feature = "model"))]
mod model_tests;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// Track the peak number of closures running at once.
    struct Gauge {
        active: AtomicUsize,
        peak: AtomicUsize,
    }

    impl Gauge {
        fn new() -> Self {
            Self {
                active: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }
        }

        fn enter(&self) {
            let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            // Dwell long enough that overlapping workers actually overlap.
            std::thread::sleep(Duration::from_micros(200));
            self.active.fetch_sub(1, Ordering::SeqCst);
        }

        fn peak(&self) -> usize {
            self.peak.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let base = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), base);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    /// Regression: the old shim budgeted join helpers on the *hardware*
    /// thread count, so `with_threads(2)` could run on every core. The
    /// budget must derive from the installed pool size.
    #[test]
    fn join_budget_respects_installed_pool_size() {
        fn go(depth: usize, gauge: &Gauge) {
            if depth == 0 {
                gauge.enter();
                return;
            }
            join(|| go(depth - 1, gauge), || go(depth - 1, gauge));
        }
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let gauge = Gauge::new();
        pool.install(|| go(6, &gauge));
        assert!(gauge.peak() >= 1);
        assert!(
            gauge.peak() <= 2,
            "join ran {} concurrent leaves under with_threads(2)",
            gauge.peak()
        );
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || -> usize { panic!("right branch") }))
        }));
        assert!(caught.is_err());
        // The pool must stay usable after a propagated panic.
        let (a, b) = pool.install(|| join(|| 2, || 3));
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn run_parallel_covers_every_piece_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            run_parallel(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_parallel_bounds_workers_for_small_caps() {
        for k in [1usize, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(k).build().unwrap();
            let gauge = Gauge::new();
            pool.install(|| run_parallel(4 * k.max(2), &|_| gauge.enter()));
            assert!(gauge.peak() >= 1);
            assert!(
                gauge.peak() <= k,
                "{} concurrent workers under with_threads({k})",
                gauge.peak()
            );
        }
    }

    #[test]
    fn workers_spawn_once_then_park() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let work = || {
            pool.install(|| {
                run_parallel(16, &|_| {
                    std::hint::black_box(0u64);
                })
            })
        };
        work(); // warm-up may spawn
                // Concurrently running tests may still be spawning workers (the
                // counter is global), so allow the count a few rounds to settle.
        let mut stable = false;
        for _ in 0..16 {
            let before = pool_spawn_count();
            work();
            work();
            if pool_spawn_count() == before {
                stable = true;
                break;
            }
        }
        assert!(stable, "pool kept spawning threads on warm operations");
    }

    #[test]
    fn worker_index_is_none_outside_pool() {
        assert_eq!(current_thread_index(), None);
    }

    /// Worker identities never escape the `pool_max_workers` ceiling, even
    /// when the installed budget asks for far more workers than the
    /// machine has cores — the invariant per-worker scratch arrays rely on.
    #[test]
    fn worker_indices_stay_under_ceiling_for_oversized_budgets() {
        let cap = pool_max_workers();
        let pool = ThreadPoolBuilder::new()
            .num_threads(4 * cap)
            .build()
            .unwrap();
        pool.install(|| {
            run_parallel(64 * cap, &|_| {
                if let Some(w) = current_thread_index() {
                    assert!(w < cap, "worker index {w} >= ceiling {cap}");
                }
                std::hint::black_box(0u64);
            });
        });
        assert!(
            pool_spawn_count() <= cap,
            "pool spawned {} workers past the ceiling {cap}",
            pool_spawn_count()
        );
    }

    #[test]
    fn parse_threads_env_values() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("junk")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    /// Pure deque semantics: owner pops LIFO, thieves steal FIFO, a full
    /// deque rejects pushes instead of wrapping onto live slots. Uses a
    /// null job pointer — deque operations never dereference it.
    #[test]
    fn deque_pops_lifo_steals_fifo_rejects_when_full() {
        let d = Deque::new();
        let t = |lo: u32| Task {
            job: std::ptr::null(),
            lo,
            hi: lo + 1,
        };
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        for i in 0..3 {
            d.push(t(i)).unwrap();
        }
        assert_eq!(d.steal().map(|x| x.lo), Some(0), "steal takes the oldest");
        assert_eq!(d.pop().map(|x| x.lo), Some(2), "pop takes the newest");
        assert_eq!(d.pop().map(|x| x.lo), Some(1));
        assert!(d.pop().is_none());
        for i in 0..DEQUE_CAP as u32 {
            d.push(t(i)).unwrap();
        }
        assert!(d.push(t(9999)).is_err(), "full deque must reject pushes");
        assert_eq!(d.steal().map(|x| x.lo), Some(0));
        // One stolen slot frees one push.
        d.push(t(7777)).unwrap();
        assert_eq!(d.pop().map(|x| x.lo), Some(7777));
    }

    /// Steal-fairness regression for `join`: with a deliberately slow left
    /// branch, a worker that attached to run the right branch must get it
    /// — the submitter must not race it inline after finishing `a`.
    #[test]
    fn join_defers_right_branch_to_attached_worker() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut worker_ran_b = false;
        for _ in 0..5 {
            let b_worker = pool.install(|| {
                let (_, b_idx) = join(
                    || std::thread::sleep(Duration::from_millis(60)),
                    current_thread_index,
                );
                b_idx
            });
            if b_worker.is_some() {
                worker_ran_b = true;
                break;
            }
        }
        assert!(
            worker_ran_b,
            "a pool worker never got the slow-left right branch"
        );
    }

    /// The steal counters are observable and sane: monotone, and the deque
    /// depth high-water mark moves once workers split ranges. Steals
    /// themselves need >= 2 pool workers, which a 1-core default budget
    /// never spawns — so only assert on them when the ceiling admits two.
    #[test]
    fn steal_counters_are_monotone_and_observable() {
        let steals0 = pool_steal_count();
        let depth0 = pool_deque_max_depth();
        let pool = ThreadPoolBuilder::new()
            .num_threads(pool_max_workers().max(2))
            .build()
            .unwrap();
        for _ in 0..50 {
            pool.install(|| {
                run_parallel(256, &|_| {
                    std::hint::black_box(0u64);
                })
            });
        }
        assert!(pool_steal_count() >= steals0);
        assert!(pool_deque_max_depth() >= depth0);
        if pool_spawn_count() >= 1 {
            assert!(
                pool_deque_max_depth() > 0,
                "workers ran 256-piece jobs without ever splitting a range"
            );
        }
    }

    #[test]
    fn scope_spawn_runs() {
        let mut hits = 0;
        scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
