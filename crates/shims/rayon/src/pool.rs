//! The persistent work-sharing pool behind [`join`] and the parallel
//! iterators, plus the worker-count bookkeeping (`current_num_threads`,
//! `ThreadPool::install`).
//!
//! # Architecture
//!
//! Worker threads are spawned **once** (lazily, on first demand) and park
//! on a condvar between parallel operations — a warm solve spawns zero OS
//! threads ([`pool_spawn_count`] is the test hook for that invariant).
//! A parallel operation publishes a type-erased [`Job`] to a shared board:
//! a chunk cursor claimed via atomic `fetch_add`, a completion latch, and
//! a raw pointer to the operation's body on the submitting thread's stack.
//! The submitting thread immediately helps drain its own job; idle workers
//! wake, attach to any open job they may legally help, and drain it too
//! (work *sharing*: jobs come to the board, workers go to jobs — there is
//! no per-worker deque to steal from).
//!
//! # Worker-count fidelity
//!
//! Every `ThreadPool` owns a [`Region`] — a concurrency budget of `cap`
//! tickets shared by *all* operations submitted under that `install`
//! scope, however deeply nested. A pool worker may only attach to a job
//! if it can take a ticket from the job's region, while a submitting
//! thread always participates in its own job — so a region entered by `S`
//! concurrent submitting threads runs at most `max(S, cap)` workers, and
//! in the usual single-submitter case (`with_threads(k)` creates a fresh
//! region per call) never more than `k`, no matter how many cores the
//! machine has or how many jobs the region publishes. Threads with no
//! installed pool share one default region whose budget is
//! `FASTBCC_THREADS` (if set) or the hardware parallelism — concurrent
//! engines on different OS threads therefore share the pool's helpers
//! without oversubscribing the machine (helpers only fill the budget the
//! submitters haven't already used).
//!
//! # Deadlock freedom
//!
//! Only submitters ever block (on their own job's latch), and only after
//! draining every unclaimed chunk themselves; helpers never wait for
//! anything. A blocked submitter is thus only waiting on chunks that some
//! other thread is actively running, so progress is guaranteed even when
//! every worker is busy and nested operations run inline.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

fn hardware_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    })
}

/// Parse a `FASTBCC_THREADS`-style value: a positive integer, else `None`.
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Default worker budget when no pool is installed: the `FASTBCC_THREADS`
/// environment variable if set to a positive integer, else the hardware
/// parallelism.
fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        parse_threads(std::env::var("FASTBCC_THREADS").ok().as_deref())
            .unwrap_or_else(hardware_threads)
    })
}

/// Process-wide ceiling on pool-worker OS threads — the hardware
/// parallelism or the `FASTBCC_THREADS` budget, whichever is larger.
///
/// Worker indices ([`current_thread_index`]) are assigned in spawn order
/// and workers never exit, so this is also a hard upper bound on every
/// index the pool will ever hand out: `current_thread_index() <
/// pool_max_workers()` on any pool worker, forever. Callers building
/// per-worker scratch arrays (one slot per possible worker identity) size
/// them off this constant. An installed budget larger than the ceiling —
/// `with_threads(4 * cores)` — still gets a faithful *at most k* region
/// budget; it simply cannot recruit more distinct worker identities than
/// the machine has cores, which costs nothing (extra workers beyond the
/// core count would time-slice, not add parallelism).
pub fn pool_max_workers() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| hardware_threads().max(default_threads()))
}

// ---------------------------------------------------------------------------
// Regions: the concurrency budget of one installed pool scope
// ---------------------------------------------------------------------------

/// A budget of `cap` tickets shared by every job submitted under one
/// `install` scope (or the process-wide default scope). One ticket is one
/// thread — submitter or helper — currently running the region's bodies.
struct Region {
    cap: usize,
    active: AtomicUsize,
}

impl Region {
    fn new(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            cap: cap.max(1),
            active: AtomicUsize::new(0),
        })
    }

    /// Helper-side acquisition: backs off when the region is at capacity.
    fn try_ticket(&self) -> bool {
        let prev = self.active.fetch_add(1, Ordering::Relaxed);
        if prev >= self.cap {
            self.active.fetch_sub(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Submitter-side acquisition: a submitter always participates in its
    /// own job, so it takes a ticket unconditionally.
    fn take_ticket(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    fn release_ticket(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    fn saturated(&self) -> bool {
        self.active.load(Ordering::Relaxed) >= self.cap
    }
}

fn default_region() -> Arc<Region> {
    static R: OnceLock<Arc<Region>> = OnceLock::new();
    R.get_or_init(|| Region::new(default_threads())).clone()
}

// ---------------------------------------------------------------------------
// Per-thread context
// ---------------------------------------------------------------------------

/// What a thread currently runs under: the installed worker count, the
/// region whose budget bounds it, and whether this thread already holds a
/// region ticket (true while running job bodies, so nested submissions
/// don't double-count themselves).
#[derive(Clone)]
struct Ctx {
    threads: usize,
    region: Arc<Region>,
    holds_ticket: bool,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Stable pool-worker index, set once per worker thread.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// RAII guard that installs a [`Ctx`] on the current thread.
struct CtxGuard {
    prev: Option<Ctx>,
}

impl CtxGuard {
    fn install(ctx: Ctx) -> Self {
        let prev = CTX.with(|c| c.borrow_mut().replace(ctx));
        Self { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Number of worker threads parallel operations on this thread may use.
pub fn current_num_threads() -> usize {
    CTX.with(|c| c.borrow().as_ref().map(|x| x.threads))
        .unwrap_or_else(default_threads)
}

/// The pool-worker index of the current thread (`0..` in spawn order), or
/// `None` on threads outside the pool (matches `rayon::current_thread_index`).
/// Stable per worker, so callers can key per-worker scratch off it.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

fn current_region_ticket() -> (Arc<Region>, bool) {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|x| (x.region.clone(), x.holds_ticket))
    })
    .unwrap_or_else(|| (default_region(), false))
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A published parallel operation: `n_pieces` chunks claimed via an atomic
/// cursor, a completion latch, and a type-erased pointer to the body on
/// the submitter's stack.
struct Job {
    body: *const (dyn Fn(usize) + Sync),
    n_pieces: usize,
    /// Installed worker count at submission — the max threads (submitter
    /// included) that may run this job, and the `current_num_threads`
    /// value its bodies observe.
    cap: usize,
    region: Arc<Region>,
    /// Next unclaimed piece.
    cursor: AtomicUsize,
    /// Completed pieces; the latch fires when it reaches `n_pieces`.
    done: AtomicUsize,
    /// Attached helper workers (excludes the submitter).
    helpers: AtomicUsize,
    /// First panic payload raised by any piece, rethrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

// SAFETY: `body` points into the submitting thread's stack frame. The
// submitter never returns from `run_parallel`/`join` until the latch fires
// (`done == n_pieces`), and every dereference of `body` happens inside
// `run_piece` for a claimed piece, which counts toward `done` only after
// the call returns — so the pointee outlives every access. The remaining
// fields are ordinary sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Erase the body's lifetime; sound per the safety argument above.
    fn new(
        body: &(dyn Fn(usize) + Sync),
        n_pieces: usize,
        cap: usize,
        region: Arc<Region>,
    ) -> Self {
        let body: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<*const _, *const _>(body as *const _) };
        Self {
            body,
            n_pieces,
            cap,
            region,
            cursor: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            helpers: AtomicUsize::new(0),
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        }
    }

    fn run_piece(&self, i: usize) {
        let body = unsafe { &*self.body };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n_pieces {
            *self.finished.lock().unwrap() = true;
            self.finished_cv.notify_all();
        }
    }

    /// Claim and run pieces until the cursor is exhausted.
    fn drain(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_pieces {
                break;
            }
            self.run_piece(i);
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.n_pieces
    }

    /// Block until every piece has completed (claimed pieces may still be
    /// running on helpers after the submitter's own drain returns).
    fn wait_finished(&self) {
        let mut fin = self.finished.lock().unwrap();
        while !*fin {
            fin = self.finished_cv.wait(fin).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

// ---------------------------------------------------------------------------
// The shared pool: job board + persistent workers
// ---------------------------------------------------------------------------

struct PoolState {
    open: Vec<Arc<Job>>,
    spawned: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// Mirror of `PoolState::spawned` readable without the lock.
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static PoolShared {
    static P: OnceLock<PoolShared> = OnceLock::new();
    P.get_or_init(|| PoolShared {
        state: Mutex::new(PoolState {
            open: Vec::new(),
            spawned: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Total pool worker OS threads ever spawned. Monotone; workers are
/// spawned lazily and never exit, so a warm workload holds this constant —
/// the test hook for the "zero spawns after warm-up" invariant. (Shim
/// extension; real rayon has no equivalent.)
pub fn pool_spawn_count() -> usize {
    SPAWNED.load(Ordering::Relaxed)
}

/// Put a job on the board, lazily growing the worker set so up to
/// `max_helpers` workers could attach, and wake parked workers.
fn publish(job: &Arc<Job>, max_helpers: usize) {
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    st.open.retain(|j| !j.exhausted());
    st.open.push(job.clone());
    // The `pool_max_workers` clamp keeps worker indices inside the bound
    // per-worker scratch arrays are sized for (see `pool_max_workers`).
    let want = max_helpers
        .min(job.region.cap.saturating_sub(1))
        .min(pool_max_workers());
    while st.spawned < want {
        let index = st.spawned;
        std::thread::Builder::new()
            .name(format!("fastbcc-pool-{index}"))
            .spawn(move || worker_loop(index))
            .expect("failed to spawn pool worker");
        st.spawned += 1;
        SPAWNED.store(st.spawned, Ordering::Relaxed);
    }
    drop(st);
    pool.work_cv.notify_all();
}

/// Remove a completed job from the board.
fn retire(job: &Arc<Job>) {
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    st.open.retain(|j| !Arc::ptr_eq(j, job) && !j.exhausted());
}

/// Find an open job this worker may help: unexhausted, under its worker
/// cap, and with a region ticket to spare.
fn try_attach(st: &mut PoolState) -> Option<Arc<Job>> {
    st.open.retain(|j| !j.exhausted());
    for job in &st.open {
        // +1 for the submitter, which is not counted in `helpers`.
        if job.helpers.load(Ordering::Relaxed) + 1 >= job.cap {
            continue;
        }
        if !job.region.try_ticket() {
            continue;
        }
        job.helpers.fetch_add(1, Ordering::Relaxed);
        return Some(job.clone());
    }
    None
}

fn worker_loop(index: usize) {
    WORKER_INDEX.with(|c| c.set(Some(index)));
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    loop {
        if let Some(job) = try_attach(&mut st) {
            drop(st);
            {
                let _ctx = CtxGuard::install(Ctx {
                    threads: job.cap,
                    region: job.region.clone(),
                    holds_ticket: true,
                });
                job.drain();
            }
            job.helpers.fetch_sub(1, Ordering::Relaxed);
            job.region.release_ticket();
            // The freed ticket may unblock another open job's helpers.
            pool.work_cv.notify_all();
            st = pool.state.lock().unwrap();
        } else {
            st = pool.work_cv.wait(st).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Submission entry points
// ---------------------------------------------------------------------------

/// Run `body(i)` for every `i in 0..n_pieces`, each exactly once, sharing
/// the pieces between the calling thread and any pool workers the region
/// budget admits. Returns after every piece has completed; panics from
/// pieces are rethrown here.
pub(crate) fn run_parallel(n_pieces: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_pieces == 0 {
        return;
    }
    let cap = current_num_threads();
    if cap <= 1 || n_pieces == 1 {
        for i in 0..n_pieces {
            body(i);
        }
        return;
    }
    let (region, holds) = current_region_ticket();
    if holds && region.saturated() {
        // Every budgeted thread in this region is already busy, so no
        // helper could attach — skip the job machinery and run inline.
        for i in 0..n_pieces {
            body(i);
        }
        return;
    }
    if !holds {
        region.take_ticket();
    }
    let job = Arc::new(Job::new(body, n_pieces, cap, region.clone()));
    publish(&job, cap.saturating_sub(1).min(n_pieces - 1));
    {
        let _ctx = CtxGuard::install(Ctx {
            threads: cap,
            region: region.clone(),
            holds_ticket: true,
        });
        job.drain();
    }
    job.wait_finished();
    retire(&job);
    if !holds {
        region.release_ticket();
        pool().work_cv.notify_all();
    }
    if let Some(payload) = job.take_panic() {
        resume_unwind(payload);
    }
}

/// Potentially-parallel fork–join: publishes the right branch to the pool,
/// runs the left branch on the calling thread, then runs the right branch
/// inline if no worker picked it up in the meantime.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let cap = current_num_threads();
    if cap <= 1 {
        return (a(), b());
    }
    let (region, holds) = current_region_ticket();
    if holds && region.saturated() {
        return (a(), b());
    }
    if !holds {
        region.take_ticket();
    }

    let b_fn = Mutex::new(Some(b));
    let b_out: Mutex<Option<RB>> = Mutex::new(None);
    let body = |_: usize| {
        let f = b_fn
            .lock()
            .unwrap()
            .take()
            .expect("join branch claimed twice");
        let r = f();
        *b_out.lock().unwrap() = Some(r);
    };
    let job = Arc::new(Job::new(&body, 1, cap, region.clone()));
    publish(&job, 1);
    let ra = {
        let _ctx = CtxGuard::install(Ctx {
            threads: cap,
            region: region.clone(),
            holds_ticket: true,
        });
        let ra = catch_unwind(AssertUnwindSafe(a));
        // Claims the right branch iff no worker beat us to it.
        job.drain();
        ra
    };
    job.wait_finished();
    retire(&job);
    if !holds {
        region.release_ticket();
        pool().work_cv.notify_all();
    }
    match ra {
        Err(payload) => resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = job.take_panic() {
                resume_unwind(payload);
            }
            let rb = b_out
                .into_inner()
                .unwrap()
                .expect("join branch produced no result");
            (ra, rb)
        }
    }
}

// ---------------------------------------------------------------------------
// Scopes and thread-pool handles
// ---------------------------------------------------------------------------

use std::marker::PhantomData;

/// Scope handle (`rayon::scope`). Spawned closures run inline, which is a
/// legal schedule for rayon scopes and keeps the shim simple.
pub struct Scope<'scope> {
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self);
    }
}

/// Create a scope; the workspace only uses it as a structured block around
/// parallel iterators, so the callback simply runs on the calling thread.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: PhantomData,
    })
}

/// Error building a pool (never produced by this shim; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means "use `FASTBCC_THREADS`, else the hardware
    /// parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            threads,
            region: Region::new(threads),
        })
    }
}

/// A worker-count scope over the shared persistent pool. `install` does
/// not spawn threads; it installs this pool's concurrency `Region` so
/// every operation inside runs with at most `threads` workers — reusing
/// one `ThreadPool` across calls shares one budget. Note that a
/// submitting thread always participates in its own operations, so
/// entering one pool's region from `S` OS threads at once runs up to
/// `max(S, threads)` workers; the budget caps the pool *helpers*, not
/// the callers.
pub struct ThreadPool {
    threads: usize,
    region: Arc<Region>,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count and budget installed.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let _guard = CtxGuard::install(Ctx {
            threads: self.threads,
            region: self.region.clone(),
            holds_ticket: false,
        });
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// Track the peak number of closures running at once.
    struct Gauge {
        active: AtomicUsize,
        peak: AtomicUsize,
    }

    impl Gauge {
        fn new() -> Self {
            Self {
                active: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }
        }

        fn enter(&self) {
            let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            // Dwell long enough that overlapping workers actually overlap.
            std::thread::sleep(Duration::from_micros(200));
            self.active.fetch_sub(1, Ordering::SeqCst);
        }

        fn peak(&self) -> usize {
            self.peak.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let base = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), base);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    /// Regression: the old shim budgeted join helpers on the *hardware*
    /// thread count, so `with_threads(2)` could run on every core. The
    /// budget must derive from the installed pool size.
    #[test]
    fn join_budget_respects_installed_pool_size() {
        fn go(depth: usize, gauge: &Gauge) {
            if depth == 0 {
                gauge.enter();
                return;
            }
            join(|| go(depth - 1, gauge), || go(depth - 1, gauge));
        }
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let gauge = Gauge::new();
        pool.install(|| go(6, &gauge));
        assert!(gauge.peak() >= 1);
        assert!(
            gauge.peak() <= 2,
            "join ran {} concurrent leaves under with_threads(2)",
            gauge.peak()
        );
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || -> usize { panic!("right branch") }))
        }));
        assert!(caught.is_err());
        // The pool must stay usable after a propagated panic.
        let (a, b) = pool.install(|| join(|| 2, || 3));
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn run_parallel_covers_every_piece_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            run_parallel(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_parallel_bounds_workers_for_small_caps() {
        for k in [1usize, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(k).build().unwrap();
            let gauge = Gauge::new();
            pool.install(|| run_parallel(4 * k.max(2), &|_| gauge.enter()));
            assert!(gauge.peak() >= 1);
            assert!(
                gauge.peak() <= k,
                "{} concurrent workers under with_threads({k})",
                gauge.peak()
            );
        }
    }

    #[test]
    fn workers_spawn_once_then_park() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let work = || {
            pool.install(|| {
                run_parallel(16, &|_| {
                    std::hint::black_box(0u64);
                })
            })
        };
        work(); // warm-up may spawn
                // Concurrently running tests may still be spawning workers (the
                // counter is global), so allow the count a few rounds to settle.
        let mut stable = false;
        for _ in 0..16 {
            let before = pool_spawn_count();
            work();
            work();
            if pool_spawn_count() == before {
                stable = true;
                break;
            }
        }
        assert!(stable, "pool kept spawning threads on warm operations");
    }

    #[test]
    fn worker_index_is_none_outside_pool() {
        assert_eq!(current_thread_index(), None);
    }

    /// Worker identities never escape the `pool_max_workers` ceiling, even
    /// when the installed budget asks for far more workers than the
    /// machine has cores — the invariant per-worker scratch arrays rely on.
    #[test]
    fn worker_indices_stay_under_ceiling_for_oversized_budgets() {
        let cap = pool_max_workers();
        let pool = ThreadPoolBuilder::new()
            .num_threads(4 * cap)
            .build()
            .unwrap();
        pool.install(|| {
            run_parallel(64 * cap, &|_| {
                if let Some(w) = current_thread_index() {
                    assert!(w < cap, "worker index {w} >= ceiling {cap}");
                }
                std::hint::black_box(0u64);
            });
        });
        assert!(
            pool_spawn_count() <= cap,
            "pool spawned {} workers past the ceiling {cap}",
            pool_spawn_count()
        );
    }

    #[test]
    fn parse_threads_env_values() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("junk")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn scope_spawn_runs() {
        let mut hits = 0;
        scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
