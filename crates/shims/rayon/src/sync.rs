//! Synchronization facade for the pool: one import surface, two backends.
//!
//! Everything in `pool.rs` that synchronizes — atomics, fences, `Mutex` /
//! `Condvar`, thread spawning, yields, spin hints — goes through this
//! module instead of naming `std::sync` / `std::thread` directly (the
//! `xtask` lint enforces that containment workspace-wide). The backend is
//! chosen at compile time:
//!
//! * **default** — re-exports of the plain `std` types; zero overhead,
//!   identical to importing them directly.
//! * **`--features model`** (or `--cfg fastbcc_model` in `RUSTFLAGS`) —
//!   the in-repo `loom` model checker's drop-in types. Outside
//!   `loom::model(..)` they pass through to `std` (so the regular unit
//!   tests still run); inside it, every operation becomes a schedule
//!   point of the interleaving explorer and every `Ordering` feeds its
//!   happens-before race detector. The model tests in
//!   `pool/model_tests.rs` use this to *prove* the deque / handshake /
//!   region protocols rather than stress-sample them:
//!
//!   ```text
//!   cargo test -p fastbcc-rayon --features model
//!   ```

#[cfg(not(any(feature = "model", fastbcc_model)))]
mod imp {
    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};
    }

    pub use std::sync::{Condvar, Mutex};

    pub mod thread {
        pub use std::thread::{yield_now, Builder};
    }

    pub mod hint {
        pub use std::hint::spin_loop;
    }
}

#[cfg(any(feature = "model", fastbcc_model))]
mod imp {
    pub mod atomic {
        pub use loom::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};
    }

    pub use loom::sync::{Condvar, Mutex};

    pub mod thread {
        pub use loom::thread::{yield_now, Builder};
    }

    pub mod hint {
        pub use loom::hint::spin_loop;
    }
}

pub(crate) use imp::*;
