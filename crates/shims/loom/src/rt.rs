//! The model-checking runtime: a deterministic cooperative scheduler that
//! runs each model thread on a real OS thread but lets exactly **one** of
//! them execute at a time, switching only at *schedule points* (every
//! visible synchronization operation). Each iteration replays a recorded
//! prefix of scheduling choices and extends it with default choices; after
//! the iteration the deepest branch with an unexplored alternative is
//! advanced (depth-first search over the interleaving tree), bounded by a
//! configurable number of preemptions.
//!
//! # What the explorer checks
//!
//! * **Deadlocks / lost wakeups** — if no thread is runnable and at least
//!   one is blocked (mutex, condvar wait, join), the schedule that got
//!   there is reported. A "lost wakeup" (a `notify` that raced a park and
//!   woke nobody) is exactly such a state, since the model `Condvar` has
//!   no spurious wakeups.
//! * **Data races** — `cell::UnsafeCell` accesses are checked against a
//!   happens-before order derived from Acquire/Release edges (vector
//!   clocks): release stores publish the writer's clock on the atomic,
//!   acquire loads join it, mutexes publish on unlock and join on lock.
//!   Two unordered accesses (at least one a write) fail the model.
//! * **Livelocks** — an iteration that exceeds the per-run step budget
//!   (e.g. a spin loop whose exit condition no other thread can satisfy).
//! * **Assertion failures** — a panic in model code fails the model with
//!   the schedule that produced it.
//!
//! Failures carry the full scheduling choice list; replaying it
//! (`Builder::replay`, or the `FASTBCC_LOOM_REPLAY` environment variable)
//! deterministically reproduces the failing execution.
//!
//! # Model limits
//!
//! Value semantics are sequentially consistent: a load observes the most
//! recent store in the explored interleaving. Acquire/Release orderings
//! affect the *happens-before* relation used for race detection, not the
//! values loads can return — so store-buffering (weak-memory) executions
//! are not explored, the same trade-off the real loom makes. `yield_now`
//! and `spin_loop` deprioritize the calling thread until every other
//! runnable thread has had a chance to run (the standard fair-scheduling
//! assumption for spin loops).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

pub(crate) type Tid = usize;

/// Hard ceiling on model threads per execution; keeps `VClock`s and the
/// branch `enabled` sets small.
pub(crate) const MAX_THREADS: usize = 16;

/// Sentinel panic payload used to unwind model threads out of a failed or
/// abandoned execution. Never reported as a model panic.
pub(crate) struct ModelAbort;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model-thread ids; the happens-before backbone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: Tid) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: Tid, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn tick(&mut self, t: Tid) {
        let v = self.get(t) + 1;
        self.set(t, v);
    }

    fn join(&mut self, o: &VClock) {
        if self.0.len() < o.0.len() {
            self.0.resize(o.0.len(), 0);
        }
        for (i, &v) in o.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    fn clear(&mut self) {
        self.0.clear();
    }
}

// ---------------------------------------------------------------------------
// Public failure report types
// ---------------------------------------------------------------------------

/// Why a model run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread is runnable and at least one is blocked — a deadlock or a
    /// lost wakeup.
    Deadlock,
    /// Two `cell::UnsafeCell` accesses (one a write) with no
    /// happens-before edge between them.
    DataRace,
    /// A model thread panicked (failed assertion in model code).
    Panic,
    /// The per-iteration step budget was exhausted (unbounded spin).
    Livelock,
}

/// A failed execution: what went wrong, and the exact scheduling choice
/// sequence that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Branch choices (indices into each branch's enabled set) replaying
    /// the failing execution: `Builder::replay(&schedule)`.
    pub schedule: Vec<usize>,
    /// 1-based iteration at which the failure was found.
    pub iteration: usize,
    /// The last few operations of the failing execution, newest last.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model failure ({:?}) at iteration {}: {}",
            self.kind, self.iteration, self.message
        )?;
        writeln!(f, "recent operations:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        let sched: Vec<String> = self.schedule.iter().map(|c| c.to_string()).collect();
        write!(
            f,
            "replay with FASTBCC_LOOM_REPLAY={} or Builder::replay(&[{}])",
            sched.join(","),
            sched.join(", ")
        )
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Blocked {
    Mutex(usize),
    Condvar(usize),
    Join(Tid),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum State {
    /// Schedulable (includes the thread currently executing).
    Ready,
    /// Voluntarily descheduled until no un-yielded thread is runnable.
    Yielded,
    Blocked(Blocked),
    Finished,
}

/// One scheduling decision with more than one enabled thread.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    enabled: Vec<Tid>,
    chosen: usize,
    prev: Tid,
    preemptions_before: usize,
}

#[derive(Clone, Debug)]
pub(crate) struct Config {
    /// Per-iteration cap on scheduling steps; exceeding it is a livelock.
    pub max_steps: usize,
}

struct AtomicObj {
    /// Clock published by the last release store (joined by release RMWs,
    /// cleared by relaxed stores, preserved by relaxed RMWs — the
    /// release-sequence rule).
    release: VClock,
}

struct MutexObj {
    holder: Option<Tid>,
    release: VClock,
}

struct CvObj {
    /// FIFO park order; `notify_one` wakes the front.
    waiters: Vec<Tid>,
}

#[derive(Default)]
struct CellObj {
    writer: Option<(Tid, u64)>,
    writer_desc: String,
    reads: VClock,
}

/// Ring capacity of the per-execution operation trace.
const TRACE_CAP: usize = 40;

struct Inner {
    cfg: Config,
    active: Tid,
    states: Vec<State>,
    clocks: Vec<VClock>,
    final_clocks: Vec<Option<VClock>>,
    schedule: Vec<Branch>,
    prefix: Vec<usize>,
    step: usize,
    ops: usize,
    preemptions: usize,
    failure: Option<Failure>,
    done: bool,
    trace: Vec<String>,
    atomics: HashMap<usize, AtomicObj>,
    mutexes: HashMap<usize, MutexObj>,
    condvars: HashMap<usize, CvObj>,
    cells: HashMap<usize, CellObj>,
    fence_release: VClock,
}

impl Inner {
    fn push_trace(&mut self, me: Tid, desc: &str) {
        if self.trace.len() == TRACE_CAP {
            self.trace.remove(0);
        }
        self.trace.push(format!("[thread {me}] {desc}"));
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                schedule: self.schedule.iter().map(|b| b.chosen).collect(),
                iteration: 0,
                trace: self.trace.clone(),
            });
        }
        self.done = true;
    }
}

/// One exploration iteration: shared between the runner and every model
/// thread of that iteration.
pub(crate) struct Execution {
    inner: StdMutex<Inner>,
    /// Model threads wait here for their turn (`inner.active == tid`).
    turn_cv: StdCondvar,
    /// The runner waits here for `inner.done`.
    done_cv: StdCondvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing model thread's context, or `None` when called from a
/// thread outside any model run (the pass-through fallback path).
///
/// Also `None` while the thread is *unwinding*: a `ModelAbort` tearing
/// down a failed iteration runs `Drop` impls (e.g. `MutexGuard`) that
/// would otherwise re-enter the scheduler and abort again mid-unwind — a
/// fatal double panic. Falling back to plain `std` behavior during any
/// unwind is safe because a panicking iteration is abandoned either way.
pub(crate) fn current() -> Option<(Arc<Execution>, Tid)> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

// Classify user-requested orderings for the happens-before machinery:
// acquire-class loads join the location's release clock, release-class
// stores publish the writer's clock.
fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Execution {
    pub(crate) fn new(cfg: Config, prefix: Vec<usize>) -> Self {
        Self {
            inner: StdMutex::new(Inner {
                cfg,
                active: 0,
                states: vec![State::Ready],
                clocks: vec![VClock::default()],
                final_clocks: vec![None],
                schedule: Vec::new(),
                prefix,
                step: 0,
                ops: 0,
                preemptions: 0,
                failure: None,
                done: false,
                trace: Vec::new(),
                atomics: HashMap::new(),
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                cells: HashMap::new(),
                fence_release: VClock::default(),
            }),
            turn_cv: StdCondvar::new(),
            done_cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    // -- scheduling core ----------------------------------------------------

    /// Unwind the calling model thread out of a finished/failed execution.
    fn abort() -> ! {
        std::panic::panic_any(ModelAbort)
    }

    /// Pick the next thread to run. `Ready` threads are preferred over
    /// `Yielded` ones (which only run when nothing else can, implementing
    /// the fair-scheduling assumption spin loops need). Returns false when
    /// the execution ended instead (all finished, or a detected deadlock).
    fn pick_next(&self, g: &mut Inner) -> bool {
        let mut enabled: Vec<Tid> = (0..g.states.len())
            .filter(|&t| g.states[t] == State::Ready)
            .collect();
        if enabled.is_empty() {
            // Fall back to yielded threads, clearing their yield status.
            enabled = (0..g.states.len())
                .filter(|&t| g.states[t] == State::Yielded)
                .collect();
            for &t in &enabled {
                g.states[t] = State::Ready;
            }
        }
        if enabled.is_empty() {
            if g.states.iter().all(|s| *s == State::Finished) {
                g.done = true;
            } else {
                let blocked: Vec<String> = g
                    .states
                    .iter()
                    .enumerate()
                    .filter_map(|(t, s)| match s {
                        State::Blocked(Blocked::Mutex(_)) => {
                            Some(format!("thread {t} blocked locking a Mutex"))
                        }
                        State::Blocked(Blocked::Condvar(_)) => {
                            Some(format!("thread {t} parked in Condvar::wait"))
                        }
                        State::Blocked(Blocked::Join(o)) => {
                            Some(format!("thread {t} joining thread {o}"))
                        }
                        _ => None,
                    })
                    .collect();
                g.fail(
                    FailureKind::Deadlock,
                    format!(
                        "no runnable thread — deadlock or lost wakeup ({})",
                        blocked.join("; ")
                    ),
                );
            }
            self.turn_cv.notify_all();
            self.done_cv.notify_all();
            return false;
        }
        let prev = g.active;
        // Keep the default choice at index 0 by moving the previous thread
        // (when still enabled) to the front: `next_prefix` enumerates
        // alternatives as `chosen+1..`, so the default MUST be first or
        // the alternatives sorting below it would never be explored. The
        // reorder depends only on `prev`, so replays stay deterministic.
        if let Some(p) = enabled.iter().position(|&t| t == prev) {
            enabled.swap(0, p);
        }
        let idx = if enabled.len() == 1 {
            0
        } else {
            let idx = if g.step < g.prefix.len() {
                let i = g.prefix[g.step];
                if i >= enabled.len() {
                    g.fail(
                        FailureKind::Panic,
                        format!(
                            "replay diverged: prefix chose {i} of {} enabled threads \
                             (the model closure must be deterministic)",
                            enabled.len()
                        ),
                    );
                    self.turn_cv.notify_all();
                    self.done_cv.notify_all();
                    return false;
                }
                i
            } else {
                // Default: keep running the previous thread when possible
                // (index 0 after the reorder above — costs no preemption,
                // so bounded search prunes well).
                0
            };
            let preemptive = enabled[idx] != prev && enabled.contains(&prev);
            g.schedule.push(Branch {
                enabled: enabled.clone(),
                chosen: idx,
                prev,
                preemptions_before: g.preemptions,
            });
            if preemptive {
                g.preemptions += 1;
            }
            g.step += 1;
            idx
        };
        g.active = enabled[idx];
        self.turn_cv.notify_all();
        true
    }

    /// Block until it is `me`'s turn to run; aborts the thread if the
    /// execution ended first. Consumes and re-takes the inner lock.
    fn wait_for_turn<'a>(
        &'a self,
        mut g: std::sync::MutexGuard<'a, Inner>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, Inner> {
        loop {
            if g.done || g.failure.is_some() {
                drop(g);
                Self::abort();
            }
            if g.active == me && g.states[me] == State::Ready {
                return g;
            }
            g = self.turn_cv.wait(g).expect("model scheduler poisoned");
        }
    }

    /// A schedule point: the operation described by `desc` is about to
    /// execute on thread `me`. Gives the scheduler (and the DFS) the
    /// chance to run any other thread first. Returns with `me` active.
    pub(crate) fn schedule_point(&self, me: Tid, desc: &str) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        if g.done || g.failure.is_some() {
            drop(g);
            Self::abort();
        }
        g.ops += 1;
        if g.ops > g.cfg.max_steps {
            let max = g.cfg.max_steps;
            g.fail(
                FailureKind::Livelock,
                format!("execution exceeded {max} scheduling steps — livelock or unbounded spin"),
            );
            self.turn_cv.notify_all();
            self.done_cv.notify_all();
            drop(g);
            Self::abort();
        }
        g.push_trace(me, desc);
        let t = g.clocks[me].get(me) + 1;
        g.clocks[me].set(me, t);
        if !self.pick_next(&mut g) {
            drop(g);
            Self::abort();
        }
        let g = self.wait_for_turn(g, me);
        drop(g);
    }

    /// Deschedule `me` voluntarily (`yield_now` / `spin_loop`).
    pub(crate) fn yield_now(&self, me: Tid) {
        self.schedule_point(me, "yield");
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        // Only deprioritize when someone else could run; a lone thread
        // yielding in a loop is a livelock the step budget will catch.
        let others = (0..g.states.len()).any(|t| t != me && g.states[t] == State::Ready);
        if others {
            g.states[me] = State::Yielded;
            if !self.pick_next(&mut g) {
                drop(g);
                Self::abort();
            }
            let g2 = self.wait_for_turn(g, me);
            drop(g2);
        }
    }

    // -- atomics ------------------------------------------------------------
    //
    // The wrappers in `sync::atomic` call `schedule_point` *before* the
    // underlying std operation (so every pair of adjacent operations has
    // an interleaving opportunity between them), then one of these
    // happens-before hooks *after* it. The hooks never reschedule.

    pub(crate) fn atomic_load(&self, addr: usize, me: Tid, order: Ordering) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        if is_acquire(order) {
            if let Some(obj) = g.atomics.get(&addr) {
                let rel = obj.release.clone();
                g.clocks[me].join(&rel);
            }
        }
    }

    pub(crate) fn atomic_store(&self, addr: usize, me: Tid, order: Ordering) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        let clock = g.clocks[me].clone();
        let obj = g.atomics.entry(addr).or_insert_with(|| AtomicObj {
            release: VClock::default(),
        });
        if is_release(order) {
            obj.release = clock;
        } else {
            // A relaxed store hides earlier release stores from later
            // acquire loads (it starts a new, clock-less modification).
            obj.release.clear();
        }
    }

    /// Read-modify-write: acquire side joins the published clock, release
    /// side publishes; a fully relaxed RMW leaves the published clock in
    /// place (it continues the release sequence).
    pub(crate) fn atomic_rmw(&self, addr: usize, me: Tid, order: Ordering) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        if is_acquire(order) {
            if let Some(obj) = g.atomics.get(&addr) {
                let rel = obj.release.clone();
                g.clocks[me].join(&rel);
            }
        }
        if is_release(order) {
            let clock = g.clocks[me].clone();
            let obj = g.atomics.entry(addr).or_insert_with(|| AtomicObj {
                release: VClock::default(),
            });
            obj.release.join(&clock);
        }
    }

    pub(crate) fn fence(&self, me: Tid, order: Ordering) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        if is_acquire(order) {
            let rel = g.fence_release.clone();
            g.clocks[me].join(&rel);
        }
        if is_release(order) {
            let clock = g.clocks[me].clone();
            g.fence_release.join(&clock);
        }
    }

    // -- cells (race detection) --------------------------------------------

    pub(crate) fn cell_access(&self, addr: usize, me: Tid, write: bool, desc: &str) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        let my_clock = g.clocks[me].clone();
        let my_time = my_clock.get(me);
        let n_threads = g.states.len();
        let (writer, writer_desc, reads) = {
            let cell = g.cells.entry(addr).or_default();
            (cell.writer, cell.writer_desc.clone(), cell.reads.clone())
        };
        let mut race: Option<String> = None;
        if let Some((w, wt)) = writer {
            if w != me && my_clock.get(w) < wt {
                race = Some(format!(
                    "data race: {desc} on thread {me} is concurrent with prior write \
                     `{writer_desc}` by thread {w} (no happens-before edge)"
                ));
            }
        }
        if write && race.is_none() {
            if let Some(u) = (0..n_threads).find(|&u| u != me && reads.get(u) > my_clock.get(u)) {
                race = Some(format!(
                    "data race: write {desc} on thread {me} is concurrent with a \
                     prior read by thread {u} (no happens-before edge)"
                ));
            }
        }
        if let Some(msg) = race {
            g.fail(FailureKind::DataRace, msg);
            self.turn_cv.notify_all();
            self.done_cv.notify_all();
            drop(g);
            Self::abort();
        }
        let cell = g.cells.get_mut(&addr).expect("cell entry just inserted");
        if write {
            cell.writer = Some((me, my_time));
            cell.writer_desc = desc.to_string();
            cell.reads.clear();
        } else {
            cell.reads.set(me, my_time);
        }
    }

    // -- mutexes ------------------------------------------------------------

    pub(crate) fn mutex_lock(&self, addr: usize, me: Tid) {
        self.schedule_point(me, "Mutex::lock");
        loop {
            let mut g = self.inner.lock().expect("model scheduler poisoned");
            let obj = g.mutexes.entry(addr).or_insert_with(|| MutexObj {
                holder: None,
                release: VClock::default(),
            });
            if obj.holder.is_none() {
                obj.holder = Some(me);
                let rel = obj.release.clone();
                g.clocks[me].join(&rel);
                return;
            }
            g.states[me] = State::Blocked(Blocked::Mutex(addr));
            if !self.pick_next(&mut g) {
                drop(g);
                Self::abort();
            }
            let g = self.wait_for_turn(g, me);
            drop(g);
            // Re-contend: another thread may have taken the lock between
            // our wakeup and our turn.
        }
    }

    pub(crate) fn mutex_unlock(&self, addr: usize, me: Tid) {
        self.schedule_point(me, "Mutex::unlock");
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        self.mutex_unlock_locked(&mut g, addr, me);
    }

    fn mutex_unlock_locked(&self, g: &mut Inner, addr: usize, me: Tid) {
        let clock = g.clocks[me].clone();
        let obj = g
            .mutexes
            .get_mut(&addr)
            .expect("unlock of an untracked mutex");
        debug_assert_eq!(obj.holder, Some(me), "unlock by non-holder");
        obj.holder = None;
        obj.release.join(&clock);
        // Wake every thread contending for this mutex; the scheduler
        // arbitrates which one wins (each re-checks the holder).
        for t in 0..g.states.len() {
            if g.states[t] == State::Blocked(Blocked::Mutex(addr)) {
                g.states[t] = State::Ready;
            }
        }
    }

    // -- condvars ------------------------------------------------------------

    /// `Condvar::wait`: atomically release the mutex and park; once
    /// notified, re-acquire. No spurious wakeups — a wakeup that never
    /// comes is reported as a deadlock.
    pub(crate) fn condvar_wait(&self, cv_addr: usize, mutex_addr: usize, me: Tid) {
        self.schedule_point(me, "Condvar::wait");
        {
            let mut g = self.inner.lock().expect("model scheduler poisoned");
            g.condvars
                .entry(cv_addr)
                .or_insert_with(|| CvObj {
                    waiters: Vec::new(),
                })
                .waiters
                .push(me);
            self.mutex_unlock_locked(&mut g, mutex_addr, me);
            g.states[me] = State::Blocked(Blocked::Condvar(cv_addr));
            if !self.pick_next(&mut g) {
                drop(g);
                Self::abort();
            }
            let g2 = self.wait_for_turn(g, me);
            drop(g2);
        }
        self.mutex_relock(mutex_addr, me);
    }

    /// Re-acquire after a condvar wakeup (no schedule point of its own —
    /// the wakeup already passed through the scheduler).
    fn mutex_relock(&self, addr: usize, me: Tid) {
        loop {
            let mut g = self.inner.lock().expect("model scheduler poisoned");
            let obj = g.mutexes.entry(addr).or_insert_with(|| MutexObj {
                holder: None,
                release: VClock::default(),
            });
            if obj.holder.is_none() {
                obj.holder = Some(me);
                let rel = obj.release.clone();
                g.clocks[me].join(&rel);
                return;
            }
            g.states[me] = State::Blocked(Blocked::Mutex(addr));
            if !self.pick_next(&mut g) {
                drop(g);
                Self::abort();
            }
            let g = self.wait_for_turn(g, me);
            drop(g);
        }
    }

    pub(crate) fn condvar_notify(&self, cv_addr: usize, me: Tid, all: bool) {
        let desc = if all {
            "Condvar::notify_all"
        } else {
            "Condvar::notify_one"
        };
        self.schedule_point(me, desc);
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        let Some(obj) = g.condvars.get_mut(&cv_addr) else {
            return;
        };
        let woken: Vec<Tid> = if all {
            std::mem::take(&mut obj.waiters)
        } else if obj.waiters.is_empty() {
            Vec::new()
        } else {
            vec![obj.waiters.remove(0)]
        };
        for t in woken {
            debug_assert_eq!(g.states[t], State::Blocked(Blocked::Condvar(cv_addr)));
            g.states[t] = State::Ready;
        }
    }

    // -- threads -------------------------------------------------------------

    /// Register a new model thread (happens-before: child starts after the
    /// spawn). Returns the new tid.
    pub(crate) fn register_thread(&self, parent: Tid) -> Tid {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        let tid = g.states.len();
        assert!(tid < MAX_THREADS, "model exceeded {MAX_THREADS} threads");
        let mut clock = g.clocks[parent].clone();
        clock.tick(tid);
        g.states.push(State::Ready);
        g.clocks.push(clock);
        g.final_clocks.push(None);
        g.push_trace(parent, &format!("spawn thread {tid}"));
        tid
    }

    pub(crate) fn add_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .expect("model scheduler poisoned")
            .push(h);
    }

    /// First wait of a freshly spawned model thread: block until scheduled.
    pub(crate) fn wait_first_turn(&self, me: Tid) {
        let g = self.inner.lock().expect("model scheduler poisoned");
        let g = self.wait_for_turn(g, me);
        drop(g);
    }

    /// Normal completion of a model thread's closure.
    pub(crate) fn finish(&self, me: Tid) {
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        g.states[me] = State::Finished;
        let clock = g.clocks[me].clone();
        g.final_clocks[me] = Some(clock);
        g.push_trace(me, "finish");
        for t in 0..g.states.len() {
            if g.states[t] == State::Blocked(Blocked::Join(me)) {
                g.states[t] = State::Ready;
            }
        }
        let _ = self.pick_next(&mut g);
    }

    /// A model thread's closure panicked: fail the whole model.
    pub(crate) fn finish_panic(&self, me: Tid, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        g.states[me] = State::Finished;
        g.fail(FailureKind::Panic, format!("thread {me} panicked: {msg}"));
        self.turn_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// `JoinHandle::join`: block until the target finishes, then join its
    /// clock (happens-before edge from everything the child did).
    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        self.schedule_point(me, &format!("join thread {target}"));
        let mut g = self.inner.lock().expect("model scheduler poisoned");
        while g.states[target] != State::Finished {
            g.states[me] = State::Blocked(Blocked::Join(target));
            if !self.pick_next(&mut g) {
                drop(g);
                Self::abort();
            }
            g = self.wait_for_turn(g, me);
        }
        let fc = g.final_clocks[target]
            .clone()
            .expect("finished thread has a final clock");
        g.clocks[me].join(&fc);
    }

    // -- runner side ---------------------------------------------------------

    /// Block until the iteration completes; returns its failure (if any)
    /// and the recorded branch schedule, then joins every OS thread the
    /// iteration spawned.
    pub(crate) fn wait_done(&self) -> (Option<Failure>, Vec<Branch>) {
        let (failure, schedule) = {
            let mut g = self.inner.lock().expect("model scheduler poisoned");
            while !g.done {
                g = self.done_cv.wait(g).expect("model scheduler poisoned");
            }
            (g.failure.clone(), std::mem::take(&mut g.schedule))
        };
        let handles: Vec<_> =
            std::mem::take(&mut *self.os_handles.lock().expect("model scheduler poisoned"));
        for h in handles {
            // Model threads exit via normal completion or a ModelAbort
            // unwind; both land here as Ok/Err we can ignore.
            let _ = h.join();
        }
        (failure, schedule)
    }
}

/// Spawn the OS thread backing model thread `tid`. The thread installs its
/// model identity, waits for its first turn, runs `f`, then reports back.
pub(crate) fn spawn_model_thread<F>(exec: &Arc<Execution>, tid: Tid, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
            let aborted = {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    exec2.wait_first_turn(tid);
                }));
                r.is_err()
            };
            if aborted {
                return;
            }
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => exec2.finish(tid),
                Err(p) => {
                    if p.downcast_ref::<ModelAbort>().is_none() {
                        exec2.finish_panic(tid, p.as_ref());
                    }
                }
            }
        })
        .expect("failed to spawn model OS thread");
    exec.add_os_handle(handle);
}

/// Depth-first successor of an explored schedule: advance the deepest
/// branch with an unexplored alternative whose preemption cost stays within
/// the bound, truncating everything after it. `None` when the space is
/// exhausted.
pub(crate) fn next_prefix(schedule: &[Branch], bound: Option<usize>) -> Option<Vec<usize>> {
    for i in (0..schedule.len()).rev() {
        let b = &schedule[i];
        for alt in b.chosen + 1..b.enabled.len() {
            let cost = usize::from(b.enabled[alt] != b.prev && b.enabled.contains(&b.prev));
            if bound.is_none_or(|lim| b.preemptions_before + cost <= lim) {
                let mut prefix: Vec<usize> = schedule[..i].iter().map(|x| x.chosen).collect();
                prefix.push(alt);
                return Some(prefix);
            }
        }
    }
    None
}

/// Install (once) a panic hook that silences the `ModelAbort` unwinds used
/// to tear down failed executions, delegating everything else.
pub(crate) fn install_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_some() {
                return;
            }
            // Panics on model threads are captured into the Failure
            // report (kind = Panic, with the failing schedule and trace);
            // suppress the default stderr print so exploring thousands of
            // interleavings stays readable.
            if std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("loom-model-"))
            {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vclock_join_and_tick() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::default();
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        b.clear();
        assert_eq!(b.get(0), 0);
    }

    #[test]
    fn next_prefix_walks_alternatives_depth_first() {
        let mk = |enabled: Vec<Tid>, chosen: usize, prev: Tid, pb: usize| Branch {
            enabled,
            chosen,
            prev,
            preemptions_before: pb,
        };
        // Two binary branches, defaults taken: successor flips the deeper.
        let sched = vec![mk(vec![0, 1], 0, 0, 0), mk(vec![0, 1], 0, 0, 0)];
        assert_eq!(next_prefix(&sched, None), Some(vec![0, 1]));
        // Deeper branch exhausted: flip the shallower, truncate.
        let sched = vec![mk(vec![0, 1], 0, 0, 0), mk(vec![0, 1], 1, 0, 0)];
        assert_eq!(next_prefix(&sched, None), Some(vec![1]));
        // Fully exhausted.
        let sched = vec![mk(vec![0, 1], 1, 0, 0)];
        assert_eq!(next_prefix(&sched, None), None);
        // A preemption bound of 0 rules out the preemptive alternative
        // (prev enabled, different thread chosen).
        let sched = vec![mk(vec![0, 1], 0, 0, 0)];
        assert_eq!(next_prefix(&sched, Some(0)), None);
        assert_eq!(next_prefix(&sched, Some(1)), Some(vec![1]));
    }
}
