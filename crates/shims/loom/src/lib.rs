//! Hermetic in-repo stand-in for the `loom` concurrency model checker.
//!
//! The FAST-BCC workspace builds with no network access, so — like the
//! `rayon` / `proptest` / `criterion` shims — this crate implements, from
//! scratch on `std`, the loom surface the workspace needs to *prove* its
//! hand-rolled synchronization instead of stress-sampling it:
//!
//! * virtualized [`sync::atomic`] atomics, [`sync::Mutex`] /
//!   [`sync::Condvar`], [`thread::spawn`] and [`cell::UnsafeCell`], all
//!   `const`-constructible drop-ins that pass through to `std` outside a
//!   model run;
//! * [`model`] / [`Builder::check`]: a deterministic cooperative
//!   scheduler that runs the closure over and over, exploring a **new
//!   thread interleaving each iteration** (depth-first over every
//!   scheduling decision, bounded by [`Builder::preemption_bound`]),
//!   detecting deadlocks and lost wakeups, data races (vector-clock
//!   happens-before from Acquire/Release pairs, mutexes, fences, and
//!   spawn/join edges), livelocks, and assertion failures;
//! * replayable failures: every [`Failure`] carries the scheduling choice
//!   list that produced it; [`Builder::replay`] (or the
//!   `FASTBCC_LOOM_REPLAY` environment variable) re-runs exactly that
//!   execution.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::Builder::default().check(|| {
//!     let v = Arc::new(AtomicUsize::new(0));
//!     let v2 = Arc::clone(&v);
//!     let t = loom::thread::spawn(move || v2.fetch_add(1, Ordering::Relaxed));
//!     v.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(v.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.complete);
//! ```
//!
//! See [`rt`](crate) internals for the exploration algorithm and the
//! model's limits (sequentially consistent value semantics — the same
//! trade-off the real loom makes).

mod rt;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use rt::{Failure, FailureKind};

use std::sync::Arc;

/// Exploration configuration; `Builder::default()` matches what the
/// workspace's model tests use.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum context switches away from a runnable thread per explored
    /// execution (`None` = unbounded). Two or three preemptions reach the
    /// overwhelming majority of concurrency bugs (CHESS-style bounding)
    /// while keeping the schedule space tractable.
    pub preemption_bound: Option<usize>,
    /// Stop after this many explored interleavings even if alternatives
    /// remain (`Report::complete` turns false).
    pub max_iterations: usize,
    /// Per-iteration step budget; exceeding it fails as a livelock.
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: Some(2),
            max_iterations: 250_000,
            max_steps: 10_000,
        }
    }
}

/// The outcome of an exploration: how many distinct interleavings ran,
/// whether the bounded space was exhausted, and the first failure found.
#[derive(Debug)]
pub struct Report {
    /// Distinct interleavings executed.
    pub iterations: usize,
    /// True when every schedule within the preemption bound was explored.
    pub complete: bool,
    pub failure: Option<Failure>,
}

impl Builder {
    /// Explore `f` under every thread interleaving within the preemption
    /// bound, returning statistics and the first failure (if any) instead
    /// of panicking — the programmatic face of [`model`].
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::install_abort_hook();
        let f = Arc::new(f);
        if let Ok(replay) = std::env::var("FASTBCC_LOOM_REPLAY") {
            let prefix = parse_replay(&replay);
            let (failure, _) = self.run_once(&f, prefix);
            return Report {
                iterations: 1,
                complete: false,
                failure: failure.map(|mut x| {
                    x.iteration = 1;
                    x
                }),
            };
        }
        let mut prefix = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let (failure, schedule) = self.run_once(&f, prefix);
            if let Some(mut fail) = failure {
                fail.iteration = iterations;
                return Report {
                    iterations,
                    complete: false,
                    failure: Some(fail),
                };
            }
            match rt::next_prefix(&schedule, self.preemption_bound) {
                None => {
                    return Report {
                        iterations,
                        complete: true,
                        failure: None,
                    }
                }
                Some(next) => {
                    if iterations >= self.max_iterations {
                        return Report {
                            iterations,
                            complete: false,
                            failure: None,
                        };
                    }
                    prefix = next;
                }
            }
        }
    }

    /// Re-run the single execution identified by `schedule` (a
    /// [`Failure::schedule`]); returns its failure, if it still occurs.
    pub fn replay<F>(&self, schedule: &[usize], f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::install_abort_hook();
        let f = Arc::new(f);
        let (failure, _) = self.run_once(&f, schedule.to_vec());
        Report {
            iterations: 1,
            complete: false,
            failure: failure.map(|mut x| {
                x.iteration = 1;
                x
            }),
        }
    }

    fn run_once<F>(&self, f: &Arc<F>, prefix: Vec<usize>) -> (Option<Failure>, Vec<rt::Branch>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Arc::new(rt::Execution::new(
            rt::Config {
                max_steps: self.max_steps,
            },
            prefix,
        ));
        let f2 = Arc::clone(f);
        rt::spawn_model_thread(&exec, 0, move || f2());
        exec.wait_done()
    }
}

fn parse_replay(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .expect("FASTBCC_LOOM_REPLAY must be a comma-separated list of choice indices")
        })
        .collect()
}

/// Exhaustively explore `f` (within the default preemption bound),
/// panicking with a replayable schedule trace on the first deadlock, lost
/// wakeup, data race, livelock, or assertion failure — the loom entry
/// point.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::default().check(f);
    if let Some(failure) = report.failure {
        panic!("{failure}");
    }
}
