//! Model-checked `std::hint` surface.

use crate::rt;

/// Spin-loop hint. On a model thread this is a *yield*: a spinning thread
/// is deprioritized until every other runnable thread has run, which is
/// the fair-scheduling assumption that makes bounded spins terminate
/// under the model (an unbounded spin whose exit no other thread can
/// satisfy still fails via the step budget, as a livelock).
pub fn spin_loop() {
    if let Some((exec, me)) = rt::current() {
        exec.yield_now(me);
    } else {
        std::hint::spin_loop();
    }
}
