//! Race-checked shared-memory cell, mirroring `loom::cell::UnsafeCell`.
//!
//! Non-atomic shared state routed through [`UnsafeCell::with`] /
//! [`UnsafeCell::with_mut`] is checked against the happens-before order
//! the model derives from Acquire/Release pairs, mutexes, fences, and
//! spawn/join edges: two accesses with no such edge between them, at
//! least one a write, fail the model as a data race — exactly the state a
//! `Relaxed`-only flag handoff leaves behind.

use crate::rt;

/// A checked `UnsafeCell`. Inside a model run every access is validated
/// for data races; outside one, it behaves as a plain `std` cell.
#[derive(Debug, Default)]
pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

// SAFETY: same contract as `std::cell::UnsafeCell` shared across threads
// guarded by external synchronization — which is precisely what the model
// verifies: every `with`/`with_mut` pair without a happens-before edge is
// reported as a race instead of being silently undefined.
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub const fn new(t: T) -> Self {
        Self(std::cell::UnsafeCell::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    fn addr(&self) -> usize {
        self as *const UnsafeCell<T> as *const () as usize
    }

    /// Immutable access; recorded as a read in the race detector.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((ex, me)) = rt::current() {
            ex.schedule_point(me, "UnsafeCell::with (read)");
            ex.cell_access(self.addr(), me, false, "UnsafeCell::with (read)");
        }
        f(self.0.get())
    }

    /// Mutable access; recorded as a write in the race detector.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((ex, me)) = rt::current() {
            ex.schedule_point(me, "UnsafeCell::with_mut (write)");
            ex.cell_access(self.addr(), me, true, "UnsafeCell::with_mut (write)");
        }
        f(self.0.get())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}
