//! Model-checked drop-in replacements for `std::sync` types.
//!
//! Every type wraps its `std` counterpart (`#[repr(transparent)]` where
//! possible, all `const`-constructible so statics work) and adds **zero**
//! state of its own: the model bookkeeping lives in the active
//! `rt` execution, keyed by object address. On a thread that is not
//! part of a model run, every operation passes straight through to `std`
//! — so code compiled against these types still behaves normally outside
//! `loom::model`.
//!
//! Operation shape on a model thread: a *schedule point* first (giving
//! the explorer the chance to run any other thread before this operation
//! takes effect), then the real `std` operation, then the happens-before
//! bookkeeping for that operation's `Ordering`.

use crate::rt;

pub use std::sync::Arc;

pub mod atomic {
    //! Model atomics. Value semantics are those of the underlying `std`
    //! atomic under the explored (sequentially consistent) interleaving;
    //! the `Ordering` argument additionally drives the happens-before
    //! edges used for `cell::UnsafeCell` race detection.

    use crate::rt;
    pub use std::sync::atomic::Ordering;

    /// An `atomic::fence`: a schedule point that joins/publishes the
    /// global fence clock according to `order`.
    pub fn fence(order: Ordering) {
        if let Some((ex, me)) = rt::current() {
            ex.schedule_point(me, "fence");
            ex.fence(me, order);
        } else {
            std::sync::atomic::fence(order);
        }
    }

    macro_rules! model_rmw {
        ($name:ident, $method:ident, $val:ty) => {
            pub fn $method(&self, v: $val, order: Ordering) -> $val {
                if let Some((ex, me)) = rt::current() {
                    ex.schedule_point(me, concat!(stringify!($name), "::", stringify!($method)));
                    let out = self.0.$method(v, order);
                    ex.atomic_rmw(self.addr(), me, order);
                    return out;
                }
                self.0.$method(v, order)
            }
        };
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Model-checked atomic; see the module docs.
            #[repr(transparent)]
            #[derive(Debug, Default)]
            pub struct $name(pub(crate) $std);

            impl $name {
                pub const fn new(v: $val) -> Self {
                    Self(<$std>::new(v))
                }

                fn addr(&self) -> usize {
                    self as *const _ as usize
                }

                pub fn load(&self, order: Ordering) -> $val {
                    if let Some((ex, me)) = rt::current() {
                        ex.schedule_point(me, concat!(stringify!($name), "::load"));
                        let out = self.0.load(order);
                        ex.atomic_load(self.addr(), me, order);
                        return out;
                    }
                    self.0.load(order)
                }

                pub fn store(&self, v: $val, order: Ordering) {
                    if let Some((ex, me)) = rt::current() {
                        ex.schedule_point(me, concat!(stringify!($name), "::store"));
                        self.0.store(v, order);
                        ex.atomic_store(self.addr(), me, order);
                        return;
                    }
                    self.0.store(v, order)
                }

                pub fn swap(&self, v: $val, order: Ordering) -> $val {
                    if let Some((ex, me)) = rt::current() {
                        ex.schedule_point(me, concat!(stringify!($name), "::swap"));
                        let out = self.0.swap(v, order);
                        ex.atomic_rmw(self.addr(), me, order);
                        return out;
                    }
                    self.0.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    if let Some((ex, me)) = rt::current() {
                        ex.schedule_point(me, concat!(stringify!($name), "::compare_exchange"));
                        let out = self.0.compare_exchange(current, new, success, failure);
                        match out {
                            // A successful CAS is a read-modify-write; a
                            // failed one is a pure load at the failure
                            // ordering.
                            Ok(_) => ex.atomic_rmw(self.addr(), me, success),
                            Err(_) => ex.atomic_load(self.addr(), me, failure),
                        }
                        return out;
                    }
                    self.0.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    // The model never fails spuriously.
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    mut f: F,
                ) -> Result<$val, $val>
                where
                    F: FnMut($val) -> Option<$val>,
                {
                    // Expressed as the load + CAS loop `std` documents, so
                    // the model explores interleavings inside the loop.
                    let mut prev = self.load(fetch_order);
                    while let Some(next) = f(prev) {
                        match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                            Ok(v) => return Ok(v),
                            Err(v) => prev = v,
                        }
                    }
                    Err(prev)
                }

                pub fn into_inner(self) -> $val {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $std:ty, $val:ty) => {
            model_atomic!($name, $std, $val);

            impl $name {
                model_rmw!($name, fetch_add, $val);
                model_rmw!($name, fetch_sub, $val);
                model_rmw!($name, fetch_or, $val);
                model_rmw!($name, fetch_and, $val);
                model_rmw!($name, fetch_xor, $val);
                model_rmw!($name, fetch_max, $val);
                model_rmw!($name, fetch_min, $val);
            }
        };
    }

    model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);

    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicBool {
        model_rmw!(AtomicBool, fetch_or, bool);
        model_rmw!(AtomicBool, fetch_and, bool);
    }

    /// Model-checked `AtomicPtr`; see the module docs.
    #[repr(transparent)]
    #[derive(Debug)]
    pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(p))
        }

        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        pub fn load(&self, order: Ordering) -> *mut T {
            if let Some((ex, me)) = rt::current() {
                ex.schedule_point(me, "AtomicPtr::load");
                let out = self.0.load(order);
                ex.atomic_load(self.addr(), me, order);
                return out;
            }
            self.0.load(order)
        }

        pub fn store(&self, p: *mut T, order: Ordering) {
            if let Some((ex, me)) = rt::current() {
                ex.schedule_point(me, "AtomicPtr::store");
                self.0.store(p, order);
                ex.atomic_store(self.addr(), me, order);
                return;
            }
            self.0.store(p, order)
        }

        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            if let Some((ex, me)) = rt::current() {
                ex.schedule_point(me, "AtomicPtr::swap");
                let out = self.0.swap(p, order);
                ex.atomic_rmw(self.addr(), me, order);
                return out;
            }
            self.0.swap(p, order)
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            if let Some((ex, me)) = rt::current() {
                ex.schedule_point(me, "AtomicPtr::compare_exchange");
                let out = self.0.compare_exchange(current, new, success, failure);
                match out {
                    Ok(_) => ex.atomic_rmw(self.addr(), me, success),
                    Err(_) => ex.atomic_load(self.addr(), me, failure),
                }
                return out;
            }
            self.inner_cas(current, new, success, failure)
        }

        fn inner_cas(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.0.compare_exchange(current, new, success, failure)
        }
    }
}

use std::sync::{LockResult, PoisonError};

/// Model-checked `Mutex`. Lock acquisition order is a scheduling decision
/// the explorer branches on; the data itself lives in an inner
/// `std::sync::Mutex` that is uncontended by construction inside a model
/// run (only one model thread executes at a time).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the model-level lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can drop and re-take the std guard.
    std_guard: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    model: bool,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((ex, me)) = rt::current() {
            ex.mutex_lock(self.addr(), me);
            // The model layer granted us the lock, so the std mutex is
            // free (model threads run one at a time under that grant).
            let std_guard = self
                .inner
                .try_lock()
                .expect("model-held std mutex contended — mixed model/non-model use");
            return Ok(MutexGuard {
                std_guard: Some(std_guard),
                mutex: self,
                model: true,
            });
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                std_guard: Some(g),
                mutex: self,
                model: false,
            }),
            Err(poison) => Err(PoisonError::new(MutexGuard {
                std_guard: Some(poison.into_inner()),
                mutex: self,
                model: false,
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.std_guard.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_guard.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.std_guard = None;
        if self.model {
            if let Some((ex, me)) = rt::current() {
                ex.mutex_unlock(self.mutex.addr(), me);
            }
        }
    }
}

/// Model-checked `Condvar` with **no spurious wakeups** — a notification
/// that races past a not-yet-parked waiter is genuinely lost, so
/// lost-wakeup bugs surface as deadlocks instead of hiding behind the
/// spurious-wakeup safety net.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model {
            if let Some((ex, me)) = rt::current() {
                let mutex = guard.mutex;
                // Release the std-level lock, park at the model level
                // (which re-acquires the model lock before returning),
                // then re-take the std-level lock under that grant.
                guard.std_guard = None;
                guard.model = false; // neuter the drop: rt takes over the model lock
                drop(guard);
                ex.condvar_wait(self.addr(), mutex.addr(), me);
                let std_guard = mutex
                    .inner
                    .try_lock()
                    .expect("model-held std mutex contended — mixed model/non-model use");
                return Ok(MutexGuard {
                    std_guard: Some(std_guard),
                    mutex,
                    model: true,
                });
            }
        }
        let mutex = guard.mutex;
        let std_guard = guard.std_guard.take().expect("guard already released");
        drop(guard);
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(MutexGuard {
                std_guard: Some(g),
                mutex,
                model: false,
            }),
            Err(poison) => Err(PoisonError::new(MutexGuard {
                std_guard: Some(poison.into_inner()),
                mutex,
                model: false,
            })),
        }
    }

    pub fn notify_one(&self) {
        if let Some((ex, me)) = rt::current() {
            ex.condvar_notify(self.addr(), me, false);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((ex, me)) = rt::current() {
            ex.condvar_notify(self.addr(), me, true);
        }
        self.inner.notify_all();
    }
}
