//! Model-checked `std::thread` surface: `spawn` / `Builder` / `JoinHandle`
//! / `yield_now`. On a model thread, spawning registers a new model thread
//! whose execution is driven by the explorer; outside a model run,
//! everything passes through to `std::thread`.

use crate::rt;
use std::sync::{Arc, Mutex as StdMutex};

pub use std::thread::Result;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<rt::Execution>,
        tid: rt::Tid,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned (model or OS) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its result. On a model
    /// thread this is a blocking model operation (a join that can never
    /// complete is reported as a deadlock); a panic in the target thread
    /// fails the whole model rather than returning `Err`.
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, tid, slot } => {
                let me = rt::current()
                    .map(|(_, me)| me)
                    .expect("model JoinHandle joined from outside the model");
                exec.join_thread(me, tid);
                let v = slot
                    .lock()
                    .expect("model join slot poisoned")
                    .take()
                    .expect("model thread finished without a result");
                Ok(v)
            }
        }
    }
}

/// Spawn a thread. Inside a model run this registers a new model thread
/// (subject to the explorer's schedule); outside, it is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((exec, me)) = rt::current() {
        // Spawning is itself a visible operation: give the explorer a
        // chance to interleave before the child becomes schedulable.
        exec.schedule_point(me, "thread::spawn");
        let tid = exec.register_thread(me);
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot2 = Arc::clone(&slot);
        rt::spawn_model_thread(&exec, tid, move || {
            let v = f();
            *slot2.lock().expect("model join slot poisoned") = Some(v);
        });
        return JoinHandle(Inner::Model { exec, tid, slot });
    }
    JoinHandle(Inner::Std(std::thread::spawn(f)))
}

/// Yield the current thread. On a model thread this deprioritizes the
/// caller until every other runnable thread has had a chance to run — the
/// fair-scheduling assumption spin loops rely on.
pub fn yield_now() {
    if let Some((exec, me)) = rt::current() {
        exec.yield_now(me);
    } else {
        std::thread::yield_now();
    }
}

/// Mirror of `std::thread::Builder` (the `name` is kept for OS threads and
/// ignored by the model scheduler).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if rt::current().is_some() {
            return Ok(spawn(f));
        }
        let mut b = std::thread::Builder::new();
        if let Some(name) = self.name {
            b = b.name(name);
        }
        b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
    }
}
