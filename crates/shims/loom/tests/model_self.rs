//! Self-tests for the model checker: deliberately buggy miniatures of the
//! work-stealing pool's synchronization patterns that the explorer MUST
//! catch (with a replayable schedule), next to their corrected twins that
//! it must exhaustively pass.
//!
//! These are the ground truth for the `fastbcc-rayon` model tests: if the
//! checker misses the seeded bugs here, a green pool model run means
//! nothing.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::{Builder, FailureKind};

/// Seeded bug #1: a flag handoff that publishes non-atomic data with a
/// `Relaxed` store. Without a Release→Acquire edge the reader's access to
/// the cell has no happens-before relation to the writer's — a data race
/// the explorer must report even though the *values* always look fine.
fn relaxed_flag_handoff(store_order: Ordering, load_order: Ordering) -> impl Fn() + Send + Sync {
    move || {
        let data = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (data2, flag2) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = loom::thread::spawn(move || {
            data2.with_mut(|p| {
                // SAFETY: the whole point — this write is unsynchronized
                // iff the flag orderings below are too weak, which is
                // what the model checks.
                unsafe { *p = 42 };
            });
            flag2.store(true, store_order);
        });
        if flag.load(load_order) {
            let v = data.with(|p| {
                // SAFETY: guarded by the flag handoff under test.
                unsafe { *p }
            });
            assert_eq!(v, 42);
        }
        writer.join().unwrap();
    }
}

#[test]
fn catches_relaxed_flag_handoff_race() {
    let report =
        Builder::default().check(relaxed_flag_handoff(Ordering::Relaxed, Ordering::Relaxed));
    let failure = report
        .failure
        .expect("the Relaxed-only flag handoff must be reported as a data race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(
        failure.message.contains("data race"),
        "unexpected message: {}",
        failure.message
    );
    // The report must carry a non-trivial replayable schedule.
    assert!(!failure.schedule.is_empty());
}

#[test]
fn passes_release_acquire_flag_handoff() {
    let report =
        Builder::default().check(relaxed_flag_handoff(Ordering::Release, Ordering::Acquire));
    assert!(
        report.failure.is_none(),
        "false positive on the Release/Acquire handoff: {}",
        report.failure.unwrap()
    );
    assert!(report.complete, "exploration did not exhaust the space");
    assert!(report.iterations > 1, "only one interleaving explored");
}

#[test]
fn replay_reproduces_the_race() {
    let report =
        Builder::default().check(relaxed_flag_handoff(Ordering::Relaxed, Ordering::Relaxed));
    let failure = report.failure.expect("race must be found");
    let replayed = Builder::default().replay(
        &failure.schedule,
        relaxed_flag_handoff(Ordering::Relaxed, Ordering::Relaxed),
    );
    let refound = replayed
        .failure
        .expect("replaying the failing schedule must reproduce the failure");
    assert_eq!(refound.kind, FailureKind::DataRace);
    assert_eq!(replayed.iterations, 1, "replay must be a single execution");
}

/// Seeded bug #2: a sleeper that checks its wake condition, then parks —
/// without re-checking under the lock that guards the notify. The notify
/// can slip between the check and the park; since the model `Condvar` has
/// no spurious wakeups, the lost wakeup shows up as a deadlock.
fn park_without_recheck() -> impl Fn() + Send + Sync {
    move || {
        let ready = Arc::new(AtomicBool::new(false));
        let lock = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (ready2, lock2, cv2) = (Arc::clone(&ready), Arc::clone(&lock), Arc::clone(&cv));
        let sleeper = loom::thread::spawn(move || {
            if !ready2.load(Ordering::Acquire) {
                // BUG: `ready` may flip (and the notify fire) right here,
                // before we hold the lock — we then park forever.
                let guard = lock2.lock().unwrap();
                let _guard = cv2.wait(guard).unwrap();
            }
        });
        ready.store(true, Ordering::Release);
        drop(lock.lock().unwrap());
        cv.notify_one();
        sleeper.join().unwrap();
    }
}

#[test]
fn catches_park_without_recheck_lost_wakeup() {
    let report = Builder::default().check(park_without_recheck());
    let failure = report
        .failure
        .expect("the park-without-recheck sleeper must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("Condvar::wait"),
        "deadlock report should name the parked thread: {}",
        failure.message
    );
}

/// Corrected twin of [`park_without_recheck`]: the condition lives inside
/// the mutex and is re-checked in the canonical `while`-wait loop, so the
/// notify can never be lost.
#[test]
fn passes_park_with_recheck() {
    let report = Builder::default().check(|| {
        let state = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (state2, cv2) = (Arc::clone(&state), Arc::clone(&cv));
        let sleeper = loom::thread::spawn(move || {
            let mut ready = state2.lock().unwrap();
            while !*ready {
                ready = cv2.wait(ready).unwrap();
            }
        });
        *state.lock().unwrap() = true;
        cv.notify_one();
        sleeper.join().unwrap();
    });
    assert!(
        report.failure.is_none(),
        "false positive on the correct park protocol: {}",
        report.failure.unwrap()
    );
    assert!(report.complete);
}

/// A torn read-modify-write (separate load and store instead of
/// `fetch_add`): the explorer must find the interleaving where one
/// increment is lost, surfacing the failed assertion as a model panic.
#[test]
fn catches_torn_increment_lost_update() {
    let report = Builder::default().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    let failure = report.failure.expect("the lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("an increment was lost"));
}

/// Corrected twin: real `fetch_add` RMWs never lose updates, in any
/// interleaving.
#[test]
fn passes_atomic_increment() {
    let report = Builder::default().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(report.failure.is_none());
    assert!(report.complete);
}

/// Classic ABBA lock-ordering deadlock: the explorer must find the
/// schedule where each thread holds one lock and wants the other.
#[test]
fn catches_lock_ordering_deadlock() {
    let report = Builder::default().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _b = b2.lock().unwrap();
            let _a = a2.lock().unwrap();
        });
        let _a = a.lock().unwrap();
        let _b = b.lock().unwrap();
        drop(_b);
        drop(_a);
        t.join().unwrap();
    });
    let failure = report.failure.expect("the ABBA deadlock must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("Mutex"));
}

/// A spin loop whose exit condition no other thread ever satisfies must
/// fail via the step budget, not hang the test suite.
#[test]
fn catches_unbounded_spin_as_livelock() {
    let report = Builder {
        max_steps: 200,
        ..Builder::default()
    }
    .check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        while !flag.load(Ordering::Acquire) {
            loom::hint::spin_loop();
        }
    });
    let failure = report.failure.expect("the unbounded spin must be caught");
    assert_eq!(failure.kind, FailureKind::Livelock);
}

/// Mutual exclusion itself: two threads bump a plain cell under a mutex —
/// no race, no lost update, in every schedule.
#[test]
fn passes_mutex_protected_cell() {
    let report = Builder::default().check(|| {
        let cell = Arc::new((Mutex::new(()), UnsafeCell::new(0u32)));
        let cell2 = Arc::clone(&cell);
        let t = loom::thread::spawn(move || {
            let _g = cell2.0.lock().unwrap();
            cell2.1.with_mut(|p| {
                // SAFETY: exclusive by the mutex held above.
                unsafe { *p += 1 };
            });
        });
        {
            let _g = cell.0.lock().unwrap();
            cell.1.with_mut(|p| {
                // SAFETY: exclusive by the mutex held above.
                unsafe { *p += 1 };
            });
        }
        t.join().unwrap();
        let total = {
            let _g = cell.0.lock().unwrap();
            cell.1.with(|p| {
                // SAFETY: exclusive by the mutex held above.
                unsafe { *p }
            })
        };
        assert_eq!(total, 2);
    });
    assert!(
        report.failure.is_none(),
        "false positive on mutex-protected access: {}",
        report.failure.unwrap()
    );
    assert!(report.complete);
}

/// The failure display must include the replay recipe verbatim, so a CI
/// log line is enough to reproduce locally.
#[test]
fn failure_display_carries_replay_recipe() {
    let report =
        Builder::default().check(relaxed_flag_handoff(Ordering::Relaxed, Ordering::Relaxed));
    let failure = report.failure.expect("race must be found");
    let text = failure.to_string();
    assert!(text.contains("FASTBCC_LOOM_REPLAY="), "display: {text}");
    assert!(text.contains("Builder::replay"), "display: {text}");
    assert!(text.contains("recent operations:"), "display: {text}");
}
