//! Hermetic stand-in for the `criterion` crate.
//!
//! Supports the bench surface this workspace uses — `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — implemented as plain
//! median-of-k wall-clock timing printed to stdout. No statistics, plots,
//! or baselines; swap for the real crate via the workspace manifest when
//! a registry is available.
//!
//! Sample counts are intentionally small (capped by `measurement_time`)
//! so a full `cargo bench` sweep stays in CI budget.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Time `f`, reporting the median of up to `samples` runs (stopping
    /// early when the measurement budget is exhausted).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let started = Instant::now();
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self // Bencher::iter always warms up with one untimed run.
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{}: median {:?}", self.name, id, b.last_median);
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.default_sample_size,
            budget: self.default_measurement_time,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("{}: median {:?}", id, b.last_median);
        self
    }
}

/// Group benchmark functions under one callable (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Bench binary entry point (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }
}
