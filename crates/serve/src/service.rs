//! The always-on serving surface: [`start`] a service on an initial graph,
//! hand the [`Rebuilder`] to a background thread, and let any number of
//! [`ServiceReader`]s answer query batches against the current snapshot
//! while the next graph version is being solved.
//!
//! ```text
//!          readers (wait-free snapshot loads, batched admission)
//!   ──────▶ ServiceReader::answer_batch / submit ──▶ ServedBatch{version, answers}
//!                          │ epoch::Reader::load (hazard-pointer adopt)
//!                          ▼
//!                 Arc<Snapshot { version, BccIndex }>
//!                          ▲
//!                          │ epoch::Publisher::publish (atomic swap + retire)
//!   ──────▶ Rebuilder::rebuild(next graph) — pooled BccEngine solve,
//!           build_index_versioned, publish; old snapshot freed when its
//!           last reader drops
//! ```
//!
//! Guarantees (gated by `tests/serve_stress.rs` in the facade crate):
//!
//! * **Readers never block on a rebuild.** A batch adopts one snapshot via
//!   a hazard-pointer load (no locks anywhere on the read path) and runs
//!   entirely against it.
//! * **No torn or mixed batches.** Every answer in a [`ServedBatch`] comes
//!   from the single immutable snapshot whose version tags the batch.
//! * **Bounded staleness.** A batch's version is never older than the
//!   version [`ServeStats::current_version`] returned before the load.
//! * **Retirement.** A replaced snapshot's memory is released when its
//!   last reader drops it; the service counts published/retired/dropped
//!   snapshots so leaks are observable.

use crate::epoch;
use crate::stats::ServeStats;
use fastbcc_core::query::{Query, QueryAnswer, QueryScratch};
use fastbcc_core::{BccEngine, BccIndex, BccOpts};
use fastbcc_graph::{Graph, GraphDelta, GraphView, V};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeOpts {
    /// Hazard-slot roster size: the maximum number of concurrently
    /// registered [`ServiceReader`]s.
    pub max_readers: usize,
    /// Batched-admission flush threshold: [`ServiceReader::submit`] groups
    /// queries until this many are pending, then answers them in one
    /// `answer_batch` call. Also pre-sizes each reader's scratch so even
    /// its first batch allocates nothing.
    pub batch_capacity: usize,
    /// Solver options for every rebuild.
    pub bcc: BccOpts,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self {
            max_readers: 64,
            batch_capacity: 4096,
            bcc: BccOpts::default(),
        }
    }
}

/// One immutable graph version: the query index plus identifying metadata.
/// Always handled as `Arc<Snapshot>`; dropping the last `Arc` is what the
/// `snapshots_dropped` counter observes.
pub struct Snapshot {
    /// Graph-version tag (also stamped on `index`): 1 for the initial
    /// snapshot, +1 per publish.
    pub version: u64,
    /// Vertex count of the snapshot's graph.
    pub n: usize,
    /// Undirected edge count of the snapshot's graph.
    pub m: usize,
    /// The read-only query index.
    pub index: BccIndex,
    stats: Arc<ServeStats>,
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Relaxed counter: observability only.
        self.stats.snapshots_dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Cloneable entry point: registers readers and exposes the service's
/// observability counters.
#[derive(Clone)]
pub struct ServiceHandle {
    cell: epoch::Handle<Snapshot>,
    stats: Arc<ServeStats>,
    batch_capacity: usize,
    deltas: mpsc::Sender<GraphDelta>,
}

impl ServiceHandle {
    /// Register a reader (claims one hazard slot; released on drop). Its
    /// scratch and admission buffer are pre-sized to `batch_capacity`, so
    /// batches up to that size never allocate — not even the first.
    pub fn reader(&self) -> ServiceReader {
        ServiceReader {
            reader: self.cell.reader(),
            scratch: QueryScratch::with_capacity(self.batch_capacity),
            pending: Vec::with_capacity(self.batch_capacity),
            serving: Vec::with_capacity(self.batch_capacity),
            batch_capacity: self.batch_capacity,
            stats: self.stats.clone(),
        }
    }

    /// The service's shared counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// An owned reference to the counters that outlives the service —
    /// e.g. for asserting final retirement accounting after every handle,
    /// reader, and the rebuilder have been dropped.
    pub fn stats_handle(&self) -> Arc<ServeStats> {
        self.stats.clone()
    }

    /// Snapshot the counters (JSON-serializable).
    pub fn stats_report(&self) -> crate::stats::StatsReport {
        self.stats.report()
    }

    /// Version of the latest published snapshot (see
    /// [`ServeStats::current_version`] for the ordering guarantee).
    pub fn current_version(&self) -> u64 {
        self.stats.current_version()
    }

    /// Readers currently registered / the roster capacity.
    pub fn reader_occupancy(&self) -> (usize, usize) {
        (self.cell.registered_readers(), self.cell.max_readers())
    }

    /// Queue an edge batch for the rebuilder. The delta is applied (and a
    /// new snapshot version published) at the rebuilder's next
    /// [`Rebuilder::rebuild_pending`] call; readers keep answering against
    /// the current snapshot until then. Returns the delta back if the
    /// rebuilder has been dropped.
    pub fn submit_delta(&self, delta: GraphDelta) -> Result<(), GraphDelta> {
        match self.deltas.send(delta) {
            Ok(()) => {
                // Relaxed counter: observability only.
                self.stats.deltas_submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(mpsc::SendError(delta)) => Err(delta),
        }
    }
}

/// Per-version answer batch: every answer was computed against the single
/// snapshot identified by `version`.
pub struct ServedBatch<'a> {
    /// Version of the snapshot that answered the batch.
    pub version: u64,
    /// Answers, positionally matching the submitted queries.
    pub answers: &'a [QueryAnswer],
}

/// A registered reader: wait-free snapshot adoption plus a pooled scratch
/// and an admission buffer. `Send` but not `Sync` (inherited from
/// [`epoch::Reader`]: a hazard slot admits one announcing thread, so even
/// the `&self` [`snapshot`](Self::snapshot) must not race from two
/// threads) — create one per serving thread via
/// [`ServiceHandle::reader`]; they are cheap.
pub struct ServiceReader {
    reader: epoch::Reader<Snapshot>,
    scratch: QueryScratch,
    pending: Vec<Query>,
    serving: Vec<Query>,
    batch_capacity: usize,
    stats: Arc<ServeStats>,
}

// Compile-time guard mirroring `epoch::Reader`'s: the hazard-slot
// single-announcer contract must hold through the high-level API too, so
// `ServiceReader` is `Send` (move it to its serving thread) but must never
// become `Sync` (the second closure stops compiling if it does).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ServiceReader>();
};
const _: fn() = || {
    trait AmbiguousIfSync<A> {
        fn some_item() {}
    }
    impl<T: ?Sized> AmbiguousIfSync<()> for T {}
    #[allow(dead_code)]
    struct IsSync;
    impl<T: ?Sized + Sync> AmbiguousIfSync<IsSync> for T {}
    let _ = <ServiceReader as AmbiguousIfSync<_>>::some_item;
};

impl ServiceReader {
    /// Adopt the current snapshot and answer `queries` against it in one
    /// parallel batch. Never blocks on a rebuild; the returned batch is
    /// tagged with the adopted snapshot's version and is internally
    /// consistent with exactly that graph version.
    pub fn answer_batch(&mut self, queries: &[Query]) -> ServedBatch<'_> {
        let snap = self.reader.load();
        self.note_served(queries.len());
        let answers = snap.index.answer_batch(queries, &mut self.scratch);
        ServedBatch {
            version: snap.version,
            answers,
        }
    }

    /// Adopt the current snapshot without answering anything — for callers
    /// that want direct [`BccIndex`] access pinned to one version.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.reader.load()
    }

    /// Batched admission: enqueue one query; when `batch_capacity` are
    /// pending, answer them all in one batch and return it. Queries keep
    /// their submission order within the flushed batch.
    pub fn submit(&mut self, q: Query) -> Option<ServedBatch<'_>> {
        self.pending.push(q);
        if self.pending.len() >= self.batch_capacity {
            self.flush()
        } else {
            None
        }
    }

    /// Answer every pending submitted query now (e.g. at the end of an
    /// admission tick); `None` when nothing is pending.
    pub fn flush(&mut self) -> Option<ServedBatch<'_>> {
        if self.pending.is_empty() {
            return None;
        }
        // Swap the pending queries into the serving buffer so the borrow
        // of `self.serving` (queries) and `self.scratch` (answers) are
        // disjoint fields; both keep their capacity across flushes.
        std::mem::swap(&mut self.pending, &mut self.serving);
        self.pending.clear();
        let snap = self.reader.load();
        self.note_served(self.serving.len());
        let answers = snap.index.answer_batch(&self.serving, &mut self.scratch);
        Some(ServedBatch {
            version: snap.version,
            answers,
        })
    }

    /// Queries admitted but not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Scratch capacity newly allocated by the most recent batch — 0 for
    /// every batch no larger than the reader's `batch_capacity` (and for
    /// any batch no larger than the largest served so far).
    pub fn fresh_alloc_bytes(&self) -> usize {
        self.scratch.fresh_alloc_bytes()
    }

    fn note_served(&self, len: usize) {
        // Relaxed counters: observability only.
        self.stats
            .queries_served
            .fetch_add(len as u64, Ordering::Relaxed);
        self.stats.batches_served.fetch_add(1, Ordering::Relaxed);
        self.stats
            .batch_size_max
            .fetch_max(len as u64, Ordering::Relaxed);
    }
}

/// What one [`Rebuilder::rebuild`] did.
#[derive(Clone, Copy, Debug)]
pub struct RebuildReport {
    /// Version tag of the snapshot this rebuild published.
    pub version: u64,
    /// Wall time of the whole rebuild (solve + index build + publish).
    pub total: Duration,
    /// Wall time of the BCC solve alone.
    pub solve: Duration,
    /// Heap bytes of the published index.
    pub index_bytes: usize,
    /// Retired snapshots whose publisher reference this publish released.
    pub retired_now: usize,
    /// Did this rebuild take the incremental `apply_batch` path end to
    /// end? Always `false` for [`Rebuilder::rebuild`]; for delta rebuilds,
    /// `false` means at least one batch fell back to a full solve.
    pub incremental: bool,
    /// Why the incremental path was abandoned (the last
    /// [`fastbcc_core::ApplyReport::fallback`] reason observed), if it was.
    pub fallback: Option<&'static str>,
}

/// The service's single background solver: owns the pooled [`BccEngine`]
/// and the epoch cell's [`epoch::Publisher`]. Run it wherever you like —
/// it is `Send`, and nothing it does blocks the readers.
pub struct Rebuilder {
    publisher: epoch::Publisher<Snapshot>,
    engine: BccEngine,
    stats: Arc<ServeStats>,
    next_version: u64,
    delta_rx: mpsc::Receiver<GraphDelta>,
}

impl Rebuilder {
    /// Solve `g` from scratch, build its index, and atomically publish it
    /// as the next snapshot version. Warm rebuilds reuse every pooled
    /// engine buffer (same zero-fresh-allocation discipline as `BccEngine`
    /// itself), and the engine stays attached to `g` so subsequent
    /// [`rebuild_delta`](Self::rebuild_delta) calls evolve it in place.
    pub fn rebuild(&mut self, g: &Graph) -> RebuildReport {
        // Relaxed flag: advisory "rebuild window" marker for latency
        // classification, not synchronization.
        self.stats.rebuild_in_flight.store(true, Ordering::Relaxed);
        let t0 = Instant::now();
        self.engine.attach(g);
        let solve = t0.elapsed();
        self.finish_rebuild(t0, solve, false, None, g.n(), g.m_undirected())
    }

    /// [`rebuild`](Self::rebuild) over any [`GraphView`] backend — a
    /// [`fastbcc_graph::CompressedGraph`] or an mmap-backed
    /// [`fastbcc_graph::MappedGraph`] snapshot loaded with
    /// [`fastbcc_graph::load_snapshot`]. Solves through the engine's
    /// pooled view path and publishes exactly like `rebuild`.
    ///
    /// Because the engine does not own the view, this path is
    /// **static-snapshot serving**: the engine's batch-dynamic graph is
    /// detached, so subsequent [`rebuild_delta`](Self::rebuild_delta) /
    /// [`rebuild_pending`](Self::rebuild_pending) calls panic until a
    /// flat-`Graph` [`rebuild`](Self::rebuild) re-attaches one. Serve
    /// deltas from flat rebuilds; serve immutable mmap/compressed
    /// snapshots from this.
    pub fn rebuild_view<G: GraphView>(&mut self, g: &G) -> RebuildReport {
        // Relaxed flag: advisory marker, as in `rebuild`.
        self.stats.rebuild_in_flight.store(true, Ordering::Relaxed);
        let t0 = Instant::now();
        self.engine.solve_view(g);
        let solve = t0.elapsed();
        self.finish_rebuild(t0, solve, false, None, g.n(), g.m_undirected())
    }

    /// Apply an edge batch to the attached graph with the incremental
    /// solver and publish the updated result as the next snapshot version.
    /// Falls back to a warm full solve inside `apply_batch` when the batch
    /// is not incrementally tractable (see the returned report's
    /// [`fallback`](RebuildReport::fallback) and the service's
    /// `fallback_*` counters); either way the published snapshot is exact.
    pub fn rebuild_delta(&mut self, adds: &[(V, V)], dels: &[(V, V)]) -> RebuildReport {
        // Relaxed flag: advisory marker, as in `rebuild`.
        self.stats.rebuild_in_flight.store(true, Ordering::Relaxed);
        let t0 = Instant::now();
        self.engine.apply_batch(adds, dels);
        let solve = t0.elapsed();
        let rep = self
            .engine
            .last_apply_report()
            .expect("apply_batch sets a report");
        if let Some(reason) = rep.fallback {
            self.stats.note_fallback(reason);
        }
        let (n, m) = self.attached_shape();
        self.finish_rebuild(t0, solve, rep.incremental, rep.fallback, n, m)
    }

    /// Drain every delta queued via [`ServiceHandle::submit_delta`], apply
    /// them in submission order, and publish one snapshot covering them
    /// all. Returns `None` (and publishes nothing) when the queue is
    /// empty — the idle branch of a rebuilder loop.
    pub fn rebuild_pending(&mut self) -> Option<RebuildReport> {
        let mut applied = 0u64;
        let mut incremental = true;
        let mut fallback = None;
        let mut t0 = Instant::now();
        let mut solve = Duration::ZERO;
        while let Ok(d) = self.delta_rx.try_recv() {
            if applied == 0 {
                // Relaxed flag: advisory marker, as in `rebuild`.
                self.stats.rebuild_in_flight.store(true, Ordering::Relaxed);
                t0 = Instant::now();
            }
            self.engine.apply_batch(&d.adds, &d.dels);
            solve = t0.elapsed();
            let rep = self
                .engine
                .last_apply_report()
                .expect("apply_batch sets a report");
            incremental &= rep.incremental;
            if let Some(reason) = rep.fallback {
                fallback = Some(reason);
                self.stats.note_fallback(reason);
            }
            applied += 1;
        }
        if applied == 0 {
            return None;
        }
        // Relaxed counter: observability only.
        self.stats
            .deltas_applied
            .fetch_add(applied, Ordering::Relaxed);
        let (n, m) = self.attached_shape();
        Some(self.finish_rebuild(t0, solve, incremental, fallback, n, m))
    }

    /// Shape of the engine's attached batch-dynamic graph — the delta
    /// rebuild paths read it after `apply_batch` has evolved the CSR.
    fn attached_shape(&self) -> (usize, usize) {
        let g = self
            .engine
            .graph()
            .expect("delta rebuild paths leave a graph attached");
        (g.n(), g.m_undirected())
    }

    /// Shared publish tail: index the engine's current result, publish it
    /// as the next version, and update every counter. `n`/`m` are the
    /// solved graph's shape, passed explicitly because view rebuilds
    /// leave no graph attached to the engine.
    fn finish_rebuild(
        &mut self,
        t0: Instant,
        solve: Duration,
        incremental: bool,
        fallback: Option<&'static str>,
        n: usize,
        m: usize,
    ) -> RebuildReport {
        let version = self.next_version;
        let index = self.engine.build_index_versioned(version);
        let index_bytes = index.bytes();
        let snapshot = Snapshot {
            version,
            n,
            m,
            index,
            stats: self.stats.clone(),
        };
        let retired_now = self.publisher.publish(Arc::new(snapshot));
        let total = t0.elapsed();
        self.next_version += 1;

        let stats = &self.stats;
        stats.snapshots_published.fetch_add(1, Ordering::Relaxed);
        stats
            .snapshots_retired
            .fetch_add(retired_now as u64, Ordering::Relaxed);
        stats
            .retire_backlog
            .store(self.publisher.retire_backlog() as u64, Ordering::Relaxed);
        stats.rebuilds.fetch_add(1, Ordering::Relaxed);
        if incremental {
            stats.rebuilds_incremental.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.rebuilds_full.fetch_add(1, Ordering::Relaxed);
        }
        stats
            .rebuild_ns_last
            .store(total.as_nanos() as u64, Ordering::Relaxed);
        stats
            .rebuild_ns_total
            .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        stats.rebuild_in_flight.store(false, Ordering::Relaxed);
        // Release store: pairs with the Acquire in
        // `ServeStats::current_version` — a reader that observes version
        // `v` there is ordered after this publish, so its next snapshot
        // load returns version ≥ v (the staleness bound).
        stats.published_version.store(version, Ordering::Release);

        RebuildReport {
            version,
            total,
            solve,
            index_bytes,
            retired_now,
            incremental,
            fallback,
        }
    }

    /// Release retired snapshots that have become hazard-free since the
    /// last publish; returns how many. Useful during long publish-free
    /// stretches; otherwise every `rebuild` drains as it publishes.
    pub fn reclaim(&mut self) -> usize {
        let freed = self.publisher.try_drain();
        let stats = &self.stats;
        stats
            .snapshots_retired
            .fetch_add(freed as u64, Ordering::Relaxed);
        stats
            .retire_backlog
            .store(self.publisher.retire_backlog() as u64, Ordering::Relaxed);
        freed
    }

    /// The pooled engine (e.g. for workspace space inspection).
    pub fn engine(&self) -> &BccEngine {
        &self.engine
    }
}

/// Solve `g` once, publish it as snapshot version 1, and return the
/// service's two halves: the cloneable [`ServiceHandle`] (readers,
/// observability) and the single [`Rebuilder`] (background publishes).
pub fn start(g: &Graph, opts: ServeOpts) -> (ServiceHandle, Rebuilder) {
    let stats = Arc::new(ServeStats::default());
    let mut engine = BccEngine::new(opts.bcc);
    // Attach (not just solve) so delta rebuilds can evolve the graph
    // in place from the very first snapshot.
    engine.attach(g);
    let index = engine.build_index_versioned(1);
    let snapshot = Snapshot {
        version: 1,
        n: g.n(),
        m: g.m_undirected(),
        index,
        stats: stats.clone(),
    };
    let (publisher, cell) = epoch::new(Arc::new(snapshot), opts.max_readers);
    let (delta_tx, delta_rx) = mpsc::channel();
    stats.snapshots_published.store(1, Ordering::Relaxed);
    // Release: same published_version protocol as `Rebuilder::rebuild`.
    stats.published_version.store(1, Ordering::Release);
    (
        ServiceHandle {
            cell,
            stats: stats.clone(),
            batch_capacity: opts.batch_capacity.max(1),
            deltas: delta_tx,
        },
        Rebuilder {
            publisher,
            engine,
            stats,
            next_version: 2,
            delta_rx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_core::query::random_mixed_batch;
    use fastbcc_graph::generators::classic::{cycle, path, windmill};

    #[test]
    fn serves_and_swaps_versions() {
        let (handle, mut rebuilder) = start(&path(9), ServeOpts::default());
        let mut reader = handle.reader();
        // path(9): every interior vertex is an articulation point.
        let b = reader.answer_batch(&[Query::IsArticulation(4), Query::SameBcc(0, 1)]);
        assert_eq!(b.version, 1);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(true), QueryAnswer::Bool(true)]
        );

        let rep = rebuilder.rebuild(&cycle(9));
        assert_eq!(rep.version, 2);
        // cycle(9): no articulation points, everything one BCC.
        let b = reader.answer_batch(&[Query::IsArticulation(4), Query::SameBcc(0, 5)]);
        assert_eq!(b.version, 2);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(false), QueryAnswer::Bool(true)]
        );
        assert_eq!(handle.current_version(), 2);
    }

    #[test]
    fn pinned_snapshot_survives_publishes() {
        let (handle, mut rebuilder) = start(&windmill(4), ServeOpts::default());
        let reader = handle.reader();
        let pinned = reader.snapshot();
        assert_eq!(pinned.version, 1);
        assert!(pinned.index.is_articulation(0));
        for _ in 0..3 {
            rebuilder.rebuild(&cycle(9));
        }
        // The pinned snapshot still answers as version 1's graph.
        assert!(pinned.index.is_articulation(0));
        assert_eq!(handle.current_version(), 4);
        let rep = handle.stats_report();
        assert_eq!(rep.snapshots_published, 4);
        // Versions 2 and 3 are fully gone; version 1 is pinned.
        assert_eq!(rep.snapshots_dropped, 2);
        drop(pinned);
        drop(reader);
        rebuilder.reclaim();
        assert_eq!(handle.stats_report().snapshots_dropped, 3);
    }

    #[test]
    fn batched_admission_flushes_at_capacity() {
        let opts = ServeOpts {
            batch_capacity: 4,
            ..Default::default()
        };
        let (handle, _rebuilder) = start(&path(6), opts);
        let mut reader = handle.reader();
        assert!(reader.submit(Query::SameBcc(0, 1)).is_none());
        assert!(reader.submit(Query::IsArticulation(1)).is_none());
        assert!(reader.submit(Query::IsBridge(2, 3)).is_none());
        let b = reader
            .submit(Query::CutVerticesOnPath(0, 5))
            .expect("flush at capacity");
        assert_eq!(b.version, 1);
        assert_eq!(
            b.answers,
            &[
                QueryAnswer::Bool(true),
                QueryAnswer::Bool(true),
                QueryAnswer::Bool(true),
                QueryAnswer::Count(Some(4)),
            ]
        );
        assert_eq!(reader.pending(), 0);
        assert!(reader.flush().is_none());
        // Partial fill flushes on demand.
        reader.submit(Query::SameBcc(0, 5));
        let b = reader.flush().expect("partial flush");
        assert_eq!(b.answers, &[QueryAnswer::Bool(false)]);
    }

    #[test]
    fn warm_batches_allocate_nothing() {
        let opts = ServeOpts {
            batch_capacity: 512,
            ..Default::default()
        };
        let (handle, mut rebuilder) = start(&windmill(16), opts);
        let mut reader = handle.reader();
        let queries = random_mixed_batch(33, 512, 0xEB0C);
        for round in 0..4 {
            reader.answer_batch(&queries);
            assert_eq!(
                reader.fresh_alloc_bytes(),
                0,
                "batch in round {round} allocated (pre-sized scratch)"
            );
            rebuilder.rebuild(&windmill(16));
        }
        let rep = handle.stats_report();
        assert_eq!(rep.queries_served, 4 * 512);
        assert_eq!(rep.batches_served, 4);
        assert_eq!(rep.batch_size_max, 512);
        assert!(rep.rebuild_secs_total >= rep.rebuild_secs_last);
    }

    #[test]
    fn delta_rebuilds_publish_incremental_versions() {
        let (handle, mut rebuilder) = start(&cycle(12), ServeOpts::default());
        let mut reader = handle.reader();
        assert!(rebuilder.rebuild_pending().is_none(), "empty queue is idle");

        // Cut one cycle edge: vertices interior to the remaining path
        // become articulation points.
        handle
            .submit_delta(GraphDelta::from_slices(&[], &[(0, 11)]))
            .unwrap();
        let rep = rebuilder.rebuild_pending().expect("one queued delta");
        assert_eq!(rep.version, 2);
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        let b = reader.answer_batch(&[Query::IsArticulation(5), Query::IsBridge(0, 1)]);
        assert_eq!(b.version, 2);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(true), QueryAnswer::Bool(true)]
        );

        // Re-close the cycle through the direct API.
        let rep = rebuilder.rebuild_delta(&[(0, 11)], &[]);
        assert_eq!(rep.version, 3);
        assert!(rep.incremental, "fell back: {:?}", rep.fallback);
        let b = reader.answer_batch(&[Query::IsArticulation(5), Query::SameBcc(0, 6)]);
        assert_eq!(b.version, 3);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(false), QueryAnswer::Bool(true)]
        );

        let stats = handle.stats_report();
        assert_eq!(stats.rebuilds, 2);
        assert_eq!(stats.rebuilds_incremental, 2);
        assert_eq!(stats.rebuilds_full, 0);
        assert_eq!(stats.deltas_submitted, 1);
        assert_eq!(stats.deltas_applied, 1);
    }

    #[test]
    fn queued_deltas_coalesce_into_one_publish() {
        let (handle, mut rebuilder) = start(&cycle(16), ServeOpts::default());
        for k in 0..3 {
            handle
                .submit_delta(GraphDelta::from_slices(&[(0, 4 + k)], &[]))
                .unwrap();
        }
        let rep = rebuilder.rebuild_pending().expect("queued deltas");
        // Three deltas, one snapshot.
        assert_eq!(rep.version, 2);
        assert_eq!(handle.current_version(), 2);
        let stats = handle.stats_report();
        assert_eq!(stats.deltas_submitted, 3);
        assert_eq!(stats.deltas_applied, 3);
        assert_eq!(stats.rebuilds, 1);
    }

    #[test]
    fn untractable_deltas_fall_back_and_are_counted() {
        let (handle, mut rebuilder) = start(&cycle(20), ServeOpts::default());
        // Delete half the cycle in one batch: way past the churn
        // threshold, so the engine re-solves from scratch — but the
        // published snapshot is exact either way.
        let dels: Vec<(V, V)> = (0..10).map(|i| (i, i + 1)).collect();
        let rep = rebuilder.rebuild_delta(&[], &dels);
        assert!(!rep.incremental);
        assert_eq!(rep.fallback, Some(fastbcc_core::dynamic::FB_CHURN));
        let mut reader = handle.reader();
        let b = reader.answer_batch(&[Query::IsArticulation(15), Query::SameBcc(0, 1)]);
        assert_eq!(b.version, 2);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(true), QueryAnswer::Bool(false)]
        );

        let stats = handle.stats_report();
        assert_eq!(stats.rebuilds_full, 1);
        assert_eq!(stats.fallback_churn, 1);
        let json = stats.to_json();
        assert!(json.contains("\"rebuilds_incremental\":0"));
        assert!(json.contains("\"fallback_churn\":1"));
    }

    #[test]
    fn submit_delta_after_rebuilder_drop_returns_the_delta() {
        let (handle, rebuilder) = start(&path(4), ServeOpts::default());
        drop(rebuilder);
        let d = GraphDelta::from_slices(&[(0, 3)], &[]);
        let d = handle.submit_delta(d).expect_err("rebuilder gone");
        assert_eq!(d.adds, vec![(0, 3)]);
        assert_eq!(handle.stats_report().deltas_submitted, 0);
    }

    #[test]
    fn rebuild_view_publishes_from_compressed_and_mapped_backends() {
        let (handle, mut rebuilder) = start(&path(9), ServeOpts::default());
        let mut reader = handle.reader();

        let cg = fastbcc_graph::CompressedGraph::from_graph(&cycle(9));
        let rep = rebuilder.rebuild_view(&cg);
        assert_eq!(rep.version, 2);
        let b = reader.answer_batch(&[Query::IsArticulation(4), Query::SameBcc(0, 5)]);
        assert_eq!(b.version, 2);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(false), QueryAnswer::Bool(true)]
        );

        let dir = std::env::temp_dir().join(format!("fastbcc-serve-view-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("wind.fbcc");
        fastbcc_graph::save_snapshot(&windmill(4), &file).unwrap();
        let mg = fastbcc_graph::load_snapshot(&file).unwrap();
        let rep = rebuilder.rebuild_view(&mg);
        assert_eq!(rep.version, 3);
        let b = reader.answer_batch(&[Query::IsArticulation(0), Query::SameBcc(1, 2)]);
        assert_eq!(
            b.answers,
            &[QueryAnswer::Bool(true), QueryAnswer::Bool(true)]
        );
        std::fs::remove_dir_all(&dir).ok();

        // A flat rebuild re-attaches; delta serving works again after it.
        rebuilder.rebuild(&cycle(12));
        let rep = rebuilder.rebuild_delta(&[], &[(0, 11)]);
        assert_eq!(rep.version, 5);
    }

    #[test]
    #[should_panic(expected = "attach")]
    fn delta_rebuild_after_view_rebuild_panics() {
        let (_handle, mut rebuilder) = start(&cycle(8), ServeOpts::default());
        let cg = fastbcc_graph::CompressedGraph::from_graph(&cycle(8));
        rebuilder.rebuild_view(&cg);
        // The view solve detached the batch-dynamic graph: evolving a
        // stale CSR must be a loud error, not a silent wrong answer.
        rebuilder.rebuild_delta(&[(0, 4)], &[]);
    }

    #[test]
    fn stats_track_retirement() {
        let (handle, mut rebuilder) = start(&path(5), ServeOpts::default());
        for _ in 0..5 {
            rebuilder.rebuild(&path(5));
        }
        let rep = handle.stats_report();
        assert_eq!(rep.published_version, 6);
        assert_eq!(rep.snapshots_published, 6);
        // No readers: every replaced snapshot drains immediately.
        assert_eq!(rep.snapshots_retired, 5);
        assert_eq!(rep.snapshots_dropped, 5);
        assert_eq!(rep.retire_backlog, 0);
        assert_eq!(rep.rebuilds, 5);
    }
}
