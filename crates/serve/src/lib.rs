//! `fastbcc-serve` — an always-on biconnectivity query service over
//! epoch-swapped immutable [`BccIndex`](fastbcc_core::BccIndex)
//! snapshots.
//!
//! The solver crates answer "given a graph, what are its BCCs?"; this
//! crate answers the operational question that follows: **how do you keep
//! serving queries while the graph changes?** The design is RCU-style
//! publication over a hazard-pointer epoch cell:
//!
//! * **Readers are wait-free.** A [`ServiceReader`] adopts the current
//!   snapshot with two atomic loads and a hazard-pointer store — no locks,
//!   no waiting on the rebuilder — then answers a whole query batch
//!   against that one immutable index. Warm batches allocate nothing.
//! * **The rebuilder never stops the world.** The single [`Rebuilder`]
//!   owns a pooled [`BccEngine`](fastbcc_core::BccEngine); it solves the
//!   next graph version off to the side and publishes the finished index
//!   with one atomic pointer swap.
//! * **Every answer is version-tagged.** A [`ServedBatch`] carries the
//!   version of the snapshot that produced it, so consumers can reason
//!   about exactly which graph they were told about — and tests can prove
//!   no batch mixes two versions.
//! * **Memory is reclaimed, observably.** Replaced snapshots are retired
//!   through the hazard roster and freed when their last reader drops
//!   them; [`ServeStats`] counts published / retired / dropped snapshots,
//!   rebuild durations, and per-batch serving totals as one JSON record.
//! * **Small graph changes rebuild incrementally.** Edge batches queued
//!   via [`ServiceHandle::submit_delta`] are drained by
//!   [`Rebuilder::rebuild_pending`], which evolves the attached graph with
//!   the batch-dynamic solver (`BccEngine::apply_batch`) instead of
//!   re-solving from scratch; untractable batches fall back to a warm full
//!   solve, and [`ServeStats`] counts both paths and every fallback
//!   reason.
//!
//! ```
//! use fastbcc_serve::{start, ServeOpts};
//! use fastbcc_core::query::Query;
//! use fastbcc_graph::generators::classic::{cycle, path};
//! use fastbcc_graph::GraphDelta;
//!
//! // Start serving version 1 (a path: interior vertices are cuts).
//! let (handle, mut rebuilder) = start(&path(8), ServeOpts::default());
//! let mut reader = handle.reader();
//! let batch = reader.answer_batch(&[Query::IsArticulation(3)]);
//! assert_eq!(batch.version, 1);
//!
//! // Publish version 2 (a cycle: no cuts). Readers pick it up on their
//! // next batch; in-flight batches keep using the version they adopted.
//! rebuilder.rebuild(&cycle(8));
//! let batch = reader.answer_batch(&[Query::IsArticulation(3)]);
//! assert_eq!(batch.version, 2);
//!
//! // Version 3 via an incremental delta: cut one cycle edge, making the
//! // remaining path's interior vertices articulation points again.
//! handle
//!     .submit_delta(GraphDelta::from_slices(&[], &[(0, 7)]))
//!     .unwrap();
//! let report = rebuilder.rebuild_pending().expect("one queued delta");
//! assert!(report.incremental);
//! let batch = reader.answer_batch(&[Query::IsArticulation(3)]);
//! assert_eq!(batch.version, 3);
//! ```
//!
//! The operator's guide — lifecycle diagrams, guarantees, tuning knobs,
//! and how to read the `serve` benchmark's output — lives in
//! `docs/serving.md` at the workspace root.

pub mod epoch;
pub mod harness;
pub mod service;
pub mod stats;

pub use harness::run_concurrent;
pub use service::{
    start, RebuildReport, Rebuilder, ServeOpts, ServedBatch, ServiceHandle, ServiceReader, Snapshot,
};
pub use stats::{ServeStats, StatsReport};
