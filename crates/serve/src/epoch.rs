//! The epoch/RCU-style snapshot cell: wait-free-in-practice `Arc<T>` loads
//! for unbounded concurrent readers, atomic publication by a single
//! writer, and deferred retirement of replaced snapshots.
//!
//! This is a classic **hazard-pointer** construction specialized to one
//! protected location (the current snapshot pointer) and a fixed roster of
//! registered readers:
//!
//! * [`Reader::load`] announces the pointer it is about to adopt in its
//!   own cache-padded hazard slot, validates that the pointer is still
//!   current, bumps the `Arc` strong count, and clears the slot. No locks,
//!   no waiting on the publisher: the only retry is a re-read when a
//!   publish lands exactly between announce and validate, so a load
//!   performs at most one extra pointer read per concurrent publish —
//!   readers never block on a rebuild, however long it runs.
//! * [`Publisher::publish`] swaps the current pointer and moves the old
//!   snapshot onto a retire list. A retired snapshot's reference is
//!   released only once no hazard slot names it (at which point any reader
//!   that adopted it holds its own strong count, so the snapshot itself is
//!   freed exactly when its **last reader drops** — the epoch-retirement
//!   contract of the serving layer).
//!
//! Single-writer is enforced by ownership: [`new`] returns the one
//! (non-`Clone`) [`Publisher`]. Readers register via [`Handle::reader`],
//! which claims one of the `max_readers` hazard slots; the handle is
//! freely cloneable and slot claims are released on `Reader` drop.
//!
//! The protocol needs the store-load ordering of `SeqCst` between the
//! reader's hazard announce and the publisher's post-swap hazard scan
//! (exactly the classic hazard-pointer fence); everything else is
//! acquire/release. The unsafe surface is the raw-pointer `Arc` traffic
//! (`into_raw`/`from_raw`/`increment_strong_count`), audited like the rest
//! of the workspace by `cargo run -p xtask -- lint`.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

/// One reader's hazard slot, padded to its own cache line pair so
/// announce/clear traffic from different readers never false-shares.
#[repr(align(128))]
struct Slot<T> {
    /// The pointer this reader is currently adopting; null when idle.
    hazard: AtomicPtr<T>,
    /// Slot-roster occupancy (claimed by `Handle::reader`).
    claimed: AtomicBool,
}

impl<T> Slot<T> {
    fn empty() -> Self {
        Self {
            hazard: AtomicPtr::new(std::ptr::null_mut()),
            claimed: AtomicBool::new(false),
        }
    }
}

/// Shared state of one epoch cell.
struct Inner<T> {
    /// The published snapshot: always a live pointer produced by
    /// `Arc::into_raw`; the publisher owns the strong count it carries.
    current: AtomicPtr<T>,
    slots: Box<[Slot<T>]>,
}

// SAFETY: `Inner` shares `T` across threads only behind `Arc` semantics —
// readers obtain real `Arc<T>` clones and the publisher transfers whole
// `Arc`s through `into_raw`/`from_raw` — so `T: Send + Sync` is exactly
// the bound `Arc<T>` itself would demand of cross-thread use.
unsafe impl<T: Send + Sync> Send for Inner<T> {}
// SAFETY: as above; all mutation of the pointer/slot words is atomic.
unsafe impl<T: Send + Sync> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let p = *self.current.get_mut();
        // SAFETY: `Inner` drops only after every `Handle`, `Reader`, and
        // the `Publisher` are gone, so this thread exclusively owns the
        // publisher-side strong count `current` carries (installed by
        // `Arc::into_raw` in `new`/`publish`), and no hazard can be live.
        unsafe { drop(Arc::from_raw(p)) };
    }
}

/// Cloneable registration handle: hands out [`Reader`]s and answers
/// capacity questions. Obtained from [`new`].
pub struct Handle<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Handle<T> {
    /// Claim a hazard slot and return a reader bound to it, or `None` when
    /// all `max_readers` slots are taken.
    pub fn try_reader(&self) -> Option<Reader<T>> {
        for (i, s) in self.inner.slots.iter().enumerate() {
            // Acquire pairs with the Release in `Reader::drop`: a reclaimed
            // slot's hazard word is observed cleared before reuse.
            if s.claimed
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(Reader {
                    inner: self.inner.clone(),
                    slot: i,
                    _not_sync: PhantomData,
                });
            }
        }
        None
    }

    /// [`try_reader`](Self::try_reader), panicking on slot exhaustion.
    pub fn reader(&self) -> Reader<T> {
        let cap = self.inner.slots.len();
        self.try_reader().unwrap_or_else(|| {
            panic!("epoch cell out of reader slots (max_readers = {cap}); drop an idle Reader or raise max_readers")
        })
    }

    /// Total hazard slots (the `max_readers` this cell was built with).
    pub fn max_readers(&self) -> usize {
        self.inner.slots.len()
    }

    /// Hazard slots currently claimed by live [`Reader`]s.
    pub fn registered_readers(&self) -> usize {
        self.inner
            .slots
            .iter()
            // Relaxed: an advisory gauge — a monotone-free counter read for
            // reporting, never used for synchronization.
            .filter(|s| s.claimed.load(Ordering::Relaxed))
            .count()
    }
}

/// A registered reader: one claimed hazard slot, one wait-free-in-practice
/// [`load`](Self::load). Not `Clone` (a slot admits one announcing thread)
/// and not `Sync` (the `PhantomData<Cell<()>>` marker suppresses the auto
/// impl while keeping `Send`) — a slot admits one announcing thread at a
/// time, and two threads racing `load` through a shared `&Reader` could
/// overwrite each other's hazard announce between validate and the strong
/// count bump, defeating the retirement scan. Create one `Reader` per
/// serving thread instead; they are cheap.
pub struct Reader<T> {
    inner: Arc<Inner<T>>,
    slot: usize,
    /// `Cell` is `Send + !Sync`, so this marker removes only `Sync`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<T> Reader<T> {
    /// Adopt the current snapshot: returns an `Arc` that keeps it alive
    /// for as long as the caller holds it, regardless of how many epochs
    /// the publisher advances in the meantime. Never blocks; retries the
    /// pointer read only if a publish lands between announce and validate.
    pub fn load(&self) -> Arc<T> {
        let slot = &self.inner.slots[self.slot];
        // Acquire pairs with the publisher's swap: adopting `p` must also
        // see the snapshot `p` points at fully constructed.
        let mut p = self.inner.current.load(Ordering::Acquire);
        loop {
            // SeqCst announce + SeqCst validate: the store-load fence makes
            // the announce globally visible *before* the re-read, pairing
            // with the publisher's SeqCst swap → SeqCst hazard scan. If the
            // validate still observes `p`, the publisher's scan cannot have
            // missed this hazard and freed `p`.
            slot.hazard.store(p, Ordering::SeqCst);
            let q = self.inner.current.load(Ordering::SeqCst);
            if q == p {
                break;
            }
            p = q;
        }
        // SAFETY: the announce was validated above, so `p` is protected:
        // the publisher either has not yet retired `p` (it is still
        // current) or will observe our hazard in every retirement scan and
        // keep its strong count alive until the slot clears. Bumping the
        // count here therefore acts on a live Arc allocation.
        unsafe { Arc::increment_strong_count(p) };
        // Release: the count bump above is ordered before the hazard
        // clears — a publisher that sees the slot empty may free its own
        // reference, but ours is already in place.
        slot.hazard.store(std::ptr::null_mut(), Ordering::Release);
        // SAFETY: we own the strong count incremented just above.
        unsafe { Arc::from_raw(p) }
    }
}

// Compile-time guard for the `Reader` thread-safety contract: `Send` (a
// reader may migrate to its serving thread) but NOT `Sync` (a slot admits
// one announcing thread — see the field doc on `_not_sync`). The second
// closure compiles only while `Reader<u64>: Sync` does NOT hold: if the
// marker were ever removed, both `AmbiguousIfSync` impls would apply and
// the method resolution below turns into a compile error.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Reader<u64>>();
};
const _: fn() = || {
    trait AmbiguousIfSync<A> {
        fn some_item() {}
    }
    impl<T: ?Sized> AmbiguousIfSync<()> for T {}
    #[allow(dead_code)]
    struct IsSync;
    impl<T: ?Sized + Sync> AmbiguousIfSync<IsSync> for T {}
    let _ = <Reader<u64> as AmbiguousIfSync<_>>::some_item;
};

impl<T> Drop for Reader<T> {
    fn drop(&mut self) {
        let slot = &self.inner.slots[self.slot];
        slot.hazard.store(std::ptr::null_mut(), Ordering::Relaxed);
        // Release pairs with the Acquire claim in `try_reader`.
        slot.claimed.store(false, Ordering::Release);
    }
}

/// The cell's single writer: publishes new snapshots and retires old ones.
/// Exactly one exists per cell ([`new`] returns it by value and it is not
/// `Clone`), which is what makes the retire list plain owned state.
pub struct Publisher<T> {
    inner: Arc<Inner<T>>,
    /// Replaced snapshots whose publisher-side strong count has not been
    /// released yet because a hazard named them at the last scan.
    retired: Vec<*const T>,
}

// SAFETY: the raw pointers in `retired` are owned strong counts of
// `Arc<T>`s (produced by `Arc::into_raw`), so moving the publisher to
// another thread moves `Arc` ownership — sound for `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for Publisher<T> {}

impl<T: Send + Sync> Publisher<T> {
    /// Atomically replace the current snapshot. Readers loading during the
    /// swap obtain either the old or the new snapshot, never a mixture;
    /// the old snapshot is retired and its publisher reference released as
    /// soon as no reader is mid-adoption (its memory is freed when the
    /// last reader-held `Arc` drops). Returns the number of retired
    /// snapshots whose publisher reference was released by this call.
    pub fn publish(&mut self, next: Arc<T>) -> usize {
        let p = Arc::into_raw(next) as *mut T;
        // SeqCst swap: pairs with the readers' SeqCst announce/validate
        // (see `Reader::load`) and orders the swap before the hazard scan
        // in `try_drain` — the hazard-pointer store-load fence.
        let old = self.inner.current.swap(p, Ordering::SeqCst);
        self.retired.push(old);
        self.try_drain()
    }

    /// Release the publisher reference of every retired snapshot no hazard
    /// names. Called by [`publish`](Self::publish); callable directly to
    /// bound the backlog during publish-free stretches. Returns how many
    /// references were released.
    pub fn try_drain(&mut self) -> usize {
        let inner = &self.inner;
        let before = self.retired.len();
        self.retired.retain(|&p| {
            let hazarded = inner
                .slots
                .iter()
                // SeqCst scan: pairs with the SeqCst announce in
                // `Reader::load`; together with the SeqCst swap that
                // preceded this scan, a reader that validated `p` as
                // current is guaranteed visible here.
                .any(|s| std::ptr::eq(s.hazard.load(Ordering::SeqCst), p));
            if hazarded {
                return true;
            }
            // SAFETY: `p` was produced by `Arc::into_raw` (in `new` or
            // `publish`) and has been swapped out of `current`, so no new
            // reader can announce it; no existing hazard names it (scan
            // above, fenced against announces by SeqCst), so every reader
            // that adopted it already holds its own strong count. The
            // publisher reference is therefore exclusively ours to drop.
            unsafe { drop(Arc::from_raw(p)) };
            false
        });
        before - self.retired.len()
    }

    /// Retired snapshots still awaiting a hazard-free scan.
    pub fn retire_backlog(&self) -> usize {
        self.retired.len()
    }
}

impl<T> Drop for Publisher<T> {
    fn drop(&mut self) {
        // Drain the backlog before the retire list disappears. A hazard
        // window (announce→validate→bump) is a handful of instructions
        // with no blocking inside, so this usually terminates within a
        // few spins — but the announcing thread can be descheduled
        // mid-adoption, so after a short spin burst yield the core back
        // to the scheduler instead of burning it until the reader runs.
        let mut rounds = 0u32;
        while !self.retired.is_empty() {
            let inner = &self.inner;
            self.retired.retain(|&p| {
                // SeqCst: same hazard-scan protocol as `try_drain`.
                let hazarded = inner
                    .slots
                    .iter()
                    .any(|s| std::ptr::eq(s.hazard.load(Ordering::SeqCst), p));
                if hazarded {
                    return true;
                }
                // SAFETY: identical to `try_drain` — retired, unhazarded,
                // publisher-owned strong count.
                unsafe { drop(Arc::from_raw(p)) };
                false
            });
            if self.retired.is_empty() {
                break;
            }
            rounds += 1;
            if rounds < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Create an epoch cell holding `initial`, with room for `max_readers`
/// concurrently registered readers. Returns the single [`Publisher`] and a
/// cloneable [`Handle`] for reader registration.
pub fn new<T: Send + Sync>(initial: Arc<T>, max_readers: usize) -> (Publisher<T>, Handle<T>) {
    assert!(
        max_readers >= 1,
        "an epoch cell needs at least one reader slot"
    );
    let slots: Box<[Slot<T>]> = (0..max_readers).map(|_| Slot::empty()).collect();
    let inner = Arc::new(Inner {
        current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
        slots,
    });
    (
        Publisher {
            inner: inner.clone(),
            retired: Vec::new(),
        },
        Handle { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts drops so retirement is observable.
    struct Tracked {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn tracked(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Tracked> {
        Arc::new(Tracked {
            value,
            drops: drops.clone(),
        })
    }

    #[test]
    fn load_sees_latest_publish() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut publisher, handle) = new(tracked(0, &drops), 4);
        let reader = handle.reader();
        assert_eq!(reader.load().value, 0);
        for v in 1..=5 {
            publisher.publish(tracked(v, &drops));
            assert_eq!(reader.load().value, v);
        }
    }

    #[test]
    fn replaced_snapshots_drop_once_unreferenced() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut publisher, handle) = new(tracked(0, &drops), 2);
        let reader = handle.reader();
        let held = reader.load(); // pin version 0
        publisher.publish(tracked(1, &drops));
        publisher.publish(tracked(2, &drops));
        // Versions 0 and 1 are retired; 1 has no readers and must be gone,
        // 0 survives through `held`.
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        assert_eq!(held.value, 0);
        drop(held);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
        drop(reader);
        drop(publisher);
        drop(handle);
        // The final snapshot (version 2) dies with the cell.
        assert_eq!(drops.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn reader_slots_are_claimed_and_released() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (_publisher, handle) = new(tracked(0, &drops), 2);
        let r1 = handle.reader();
        let _r2 = handle.reader();
        assert_eq!(handle.registered_readers(), 2);
        assert!(handle.try_reader().is_none());
        drop(r1);
        assert_eq!(handle.registered_readers(), 1);
        assert!(handle.try_reader().is_some());
    }

    #[test]
    #[should_panic(expected = "out of reader slots")]
    fn reader_exhaustion_panics_with_context() {
        let (_p, handle) = new(Arc::new(7u64), 1);
        let _r = handle.reader();
        let _ = handle.reader();
    }

    #[test]
    fn concurrent_readers_across_publishes() {
        // Readers on pool workers hammer `load` while the calling thread
        // publishes; every loaded value must be a published one, and the
        // retire accounting must converge once everything drops.
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut publisher, handle) = new(tracked(0, &drops), 8);
        let publishes = 200u64;
        let stop = AtomicBool::new(false);
        let seen_max = AtomicUsize::new(0);
        let readers = 3usize;
        fastbcc_primitives::with_threads(4, || {
            rayon::join(
                || {
                    for v in 1..=publishes {
                        publisher.publish(tracked(v, &drops));
                    }
                    stop.store(true, Ordering::Release);
                },
                || {
                    let handles: Vec<_> = (0..readers).map(|_| handle.reader()).collect();
                    // Each pass loads through every reader slot; values
                    // must be monotone within one reader's consecutive
                    // loads is NOT guaranteed (no ordering across slots),
                    // but every value must be in range.
                    while !stop.load(Ordering::Acquire) {
                        for r in &handles {
                            let s = r.load();
                            assert!(s.value <= publishes);
                            seen_max.fetch_max(s.value as usize, Ordering::Relaxed);
                        }
                    }
                },
            );
        });
        drop(publisher);
        drop(handle);
        // Every snapshot ever published (including the initial one) has
        // been dropped exactly once.
        assert_eq!(drops.load(Ordering::Relaxed), publishes as usize + 1);
    }
}
