//! A tiny fork/join fan-out for running a driver task alongside reader
//! loops on the workspace runtime shim — the serving layer's substitute
//! for spawning OS threads (which the xtask lint reserves for the shims).
//!
//! [`run_concurrent`] fans a list of closures out as nested
//! `rayon::join`s. On the workspace shim, `join(a, b)` runs `a` inline
//! and offers `b` to pool workers, so **the first task is the one
//! guaranteed to run on the calling thread** — and under a sequential
//! budget (`FASTBCC_THREADS=1`, or a pool of one) the tasks simply run
//! in order, first to last.
//!
//! Convention for callers: put the *driver* (the task that eventually
//! sets the stop flag — e.g. the rebuild loop) **first**, and write the
//! other tasks to terminate once they observe the flag even if they run
//! entirely after it was set. That way the same task list is correct
//! both concurrently and under the sequential fallback.

/// Run every task to completion, potentially in parallel; returns when
/// all have finished. See the module docs for the ordering convention.
pub fn run_concurrent(tasks: Vec<Box<dyn FnOnce() + Send>>) {
    fan_out(tasks);
}

fn fan_out(mut tasks: Vec<Box<dyn FnOnce() + Send>>) {
    match tasks.len() {
        0 => {}
        1 => (tasks.pop().expect("len checked"))(),
        _ => {
            let first = tasks.remove(0);
            rayon::join(first, move || fan_out(tasks));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_every_task_once() {
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..7)
            .map(|_| {
                let hits = hits.clone();
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_concurrent(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn empty_task_list_is_fine() {
        run_concurrent(Vec::new());
    }

    #[test]
    fn driver_first_convention_terminates_sequentially() {
        // A driver that sets a stop flag plus a follower that loops until
        // it sees it: must terminate even when everything runs in order
        // on one thread.
        fastbcc_primitives::par::with_threads(1, || {
            let stop = Arc::new(AtomicBool::new(false));
            let driver_stop = stop.clone();
            let follower_stop = stop.clone();
            let follower_ran = Arc::new(AtomicBool::new(false));
            let follower_flag = follower_ran.clone();
            run_concurrent(vec![
                Box::new(move || driver_stop.store(true, Ordering::Release)),
                Box::new(move || {
                    while !follower_stop.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    follower_flag.store(true, Ordering::Relaxed);
                }),
            ]);
            assert!(follower_ran.load(Ordering::Relaxed));
        });
    }
}
