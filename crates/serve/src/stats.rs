//! Service observability: lock-free counters every reader and the
//! rebuilder update in place, snapshotted into a [`StatsReport`] that
//! serializes in the workspace's `RunRecord` JSON-lines style (no deps,
//! fixed keys) so the `serve` bench and operators read one format.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared atomic counters of one [`crate::service`] instance. All updates
/// are `Relaxed` — these are statistics, not synchronization; the one
/// exception is `published_version`, whose release/acquire pairing lets
/// tests assert the staleness bound (see `current_version`).
#[derive(Default)]
pub struct ServeStats {
    /// Version tag of the most recently published snapshot.
    pub(crate) published_version: AtomicU64,
    /// Snapshots published, initial snapshot included.
    pub(crate) snapshots_published: AtomicU64,
    /// Retired snapshots whose publisher reference has been released
    /// (hazard-free at some drain scan).
    pub(crate) snapshots_retired: AtomicU64,
    /// Snapshots actually dropped (its last `Arc` — publisher's or a
    /// reader's — went away). Trails `snapshots_retired` while readers
    /// still hold a retired epoch.
    pub(crate) snapshots_dropped: AtomicU64,
    /// Retired snapshots still awaiting a hazard-free scan.
    pub(crate) retire_backlog: AtomicU64,
    /// Completed rebuilds (solve + index build + publish).
    pub(crate) rebuilds: AtomicU64,
    /// Rebuilds that took the incremental `apply_batch` path end to end.
    pub(crate) rebuilds_incremental: AtomicU64,
    /// Rebuilds that ran a full solve: explicit `rebuild` calls plus every
    /// delta rebuild that fell back (see the `fallback_*` counters).
    pub(crate) rebuilds_full: AtomicU64,
    /// Delta rebuilds that fell back because the batch exceeded the churn
    /// threshold (`fastbcc_core::dynamic::FB_CHURN`).
    pub(crate) fallback_churn: AtomicU64,
    /// Delta rebuilds that fell back on a component-joining insertion.
    pub(crate) fallback_cross_component: AtomicU64,
    /// Delta rebuilds that fell back on a block-cut chain-walk cap.
    pub(crate) fallback_chain_cap: AtomicU64,
    /// Delta rebuilds that fell back on an affected-region size cap.
    pub(crate) fallback_region_cap: AtomicU64,
    /// Delta rebuilds that fell back on an incomplete re-hang BFS.
    pub(crate) fallback_rehang: AtomicU64,
    /// Delta rebuilds that fell back after exhausting the per-batch
    /// incremental work budget (`fastbcc_core::dynamic::FB_BUDGET`).
    pub(crate) fallback_work_budget: AtomicU64,
    /// Edge deltas accepted by `ServiceHandle::submit_delta`.
    pub(crate) deltas_submitted: AtomicU64,
    /// Edge deltas drained and applied by `Rebuilder::rebuild_pending`.
    pub(crate) deltas_applied: AtomicU64,
    /// Wall nanoseconds of the most recent rebuild.
    pub(crate) rebuild_ns_last: AtomicU64,
    /// Cumulative wall nanoseconds across all rebuilds.
    pub(crate) rebuild_ns_total: AtomicU64,
    /// True while the rebuilder is between starting a solve and
    /// publishing its snapshot — the window the `serve` bench uses to
    /// classify "during rebuild" latency samples.
    pub(crate) rebuild_in_flight: AtomicBool,
    /// Queries answered across all readers and batches.
    pub(crate) queries_served: AtomicU64,
    /// `answer_batch` calls across all readers.
    pub(crate) batches_served: AtomicU64,
    /// Largest single batch answered.
    pub(crate) batch_size_max: AtomicU64,
}

impl ServeStats {
    /// Version of the latest published snapshot. Acquire pairs with the
    /// release store in the rebuilder's publish path: a reader that
    /// observes version `v` here is guaranteed that a subsequent
    /// [`crate::service::ServiceReader`] load returns a snapshot of
    /// version ≥ `v` — the "never stale beyond the epoch current at load
    /// time" bound the stress test pins down.
    pub fn current_version(&self) -> u64 {
        self.published_version.load(Ordering::Acquire)
    }

    /// Is a rebuild currently in flight?
    pub fn rebuild_in_flight(&self) -> bool {
        self.rebuild_in_flight.load(Ordering::Relaxed)
    }

    /// Bump the per-reason fallback counter for one delta rebuild that
    /// fell back to a full solve (`reason` is an
    /// [`fastbcc_core::ApplyReport::fallback`] string).
    pub(crate) fn note_fallback(&self, reason: &str) {
        use fastbcc_core::dynamic::{
            FB_BUDGET, FB_CHAIN, FB_CHURN, FB_CROSS, FB_REGION, FB_REHANG,
        };
        // Relaxed counters: observability only.
        let counter = match reason {
            FB_CHURN => &self.fallback_churn,
            FB_CROSS => &self.fallback_cross_component,
            FB_CHAIN => &self.fallback_chain_cap,
            FB_REGION => &self.fallback_region_cap,
            FB_REHANG => &self.fallback_rehang,
            FB_BUDGET => &self.fallback_work_budget,
            _ => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every counter.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            published_version: self.published_version.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            snapshots_retired: self.snapshots_retired.load(Ordering::Relaxed),
            snapshots_dropped: self.snapshots_dropped.load(Ordering::Relaxed),
            retire_backlog: self.retire_backlog.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            rebuilds_incremental: self.rebuilds_incremental.load(Ordering::Relaxed),
            rebuilds_full: self.rebuilds_full.load(Ordering::Relaxed),
            fallback_churn: self.fallback_churn.load(Ordering::Relaxed),
            fallback_cross_component: self.fallback_cross_component.load(Ordering::Relaxed),
            fallback_chain_cap: self.fallback_chain_cap.load(Ordering::Relaxed),
            fallback_region_cap: self.fallback_region_cap.load(Ordering::Relaxed),
            fallback_rehang: self.fallback_rehang.load(Ordering::Relaxed),
            fallback_work_budget: self.fallback_work_budget.load(Ordering::Relaxed),
            deltas_submitted: self.deltas_submitted.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            rebuild_secs_last: self.rebuild_ns_last.load(Ordering::Relaxed) as f64 * 1e-9,
            rebuild_secs_total: self.rebuild_ns_total.load(Ordering::Relaxed) as f64 * 1e-9,
            queries_served: self.queries_served.load(Ordering::Relaxed),
            batches_served: self.batches_served.load(Ordering::Relaxed),
            batch_size_max: self.batch_size_max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServeStats`], serializable as one JSON
/// object (the per-epoch observability record of the serving layer).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    pub published_version: u64,
    pub snapshots_published: u64,
    pub snapshots_retired: u64,
    pub snapshots_dropped: u64,
    pub retire_backlog: u64,
    pub rebuilds: u64,
    pub rebuilds_incremental: u64,
    pub rebuilds_full: u64,
    pub fallback_churn: u64,
    pub fallback_cross_component: u64,
    pub fallback_chain_cap: u64,
    pub fallback_region_cap: u64,
    pub fallback_rehang: u64,
    pub fallback_work_budget: u64,
    pub deltas_submitted: u64,
    pub deltas_applied: u64,
    pub rebuild_secs_last: f64,
    pub rebuild_secs_total: f64,
    pub queries_served: u64,
    pub batches_served: u64,
    pub batch_size_max: u64,
}

impl StatsReport {
    /// Mean batch size served so far (0.0 before the first batch).
    pub fn batch_size_mean(&self) -> f64 {
        if self.batches_served == 0 {
            0.0
        } else {
            self.queries_served as f64 / self.batches_served as f64
        }
    }

    /// Serialize as a single JSON object, `RunRecord`-style: fixed keys,
    /// no external dependencies.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"published_version\":{},\"snapshots_published\":{},\
             \"snapshots_retired\":{},\"snapshots_dropped\":{},\
             \"retire_backlog\":{},\"rebuilds\":{},\
             \"rebuilds_incremental\":{},\"rebuilds_full\":{},\
             \"fallback_churn\":{},\"fallback_cross_component\":{},\
             \"fallback_chain_cap\":{},\"fallback_region_cap\":{},\
             \"fallback_rehang\":{},\"fallback_work_budget\":{},\
             \"deltas_submitted\":{},\"deltas_applied\":{},\
             \"rebuild_secs_last\":{:.9},\"rebuild_secs_total\":{:.9},\
             \"queries_served\":{},\"batches_served\":{},\
             \"batch_size_max\":{}}}",
            self.published_version,
            self.snapshots_published,
            self.snapshots_retired,
            self.snapshots_dropped,
            self.retire_backlog,
            self.rebuilds,
            self.rebuilds_incremental,
            self.rebuilds_full,
            self.fallback_churn,
            self.fallback_cross_component,
            self.fallback_chain_cap,
            self.fallback_region_cap,
            self.fallback_rehang,
            self.fallback_work_budget,
            self.deltas_submitted,
            self.deltas_applied,
            self.rebuild_secs_last,
            self.rebuild_secs_total,
            self.queries_served,
            self.batches_served,
            self.batch_size_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let stats = ServeStats::default();
        stats.published_version.store(3, Ordering::Relaxed);
        stats.queries_served.store(1000, Ordering::Relaxed);
        stats.batches_served.store(4, Ordering::Relaxed);
        let rep = stats.report();
        assert_eq!(rep.batch_size_mean(), 250.0);
        let j = rep.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"published_version\":3"));
        assert!(j.contains("\"queries_served\":1000"));
        assert!(j.contains("\"rebuild_secs_total\":0.000000000"));
    }

    #[test]
    fn mean_of_zero_batches_is_zero() {
        assert_eq!(ServeStats::default().report().batch_size_mean(), 0.0);
    }
}
