//! Workspace task runner. One subcommand so far:
//!
//! ```text
//! cargo run -p xtask -- lint            # audit + (re)write ANALYSIS_unsafe.json
//! cargo run -p xtask -- lint --check    # audit + fail if the inventory drifted
//! ```
//!
//! The `lint` pass enforces the workspace's concurrency-hygiene rules,
//! which rustc/clippy cannot express:
//!
//! 1. **SAFETY adjacency** — every `unsafe` site (block, fn, impl, trait)
//!    in non-test code must have a `// SAFETY:` comment within the
//!    preceding lines, or a `# Safety` doc section on the declaration.
//! 2. **Ordering protocol comments** — inside `crates/shims/` (the only
//!    code allowed to synchronize by hand), every `Ordering::` call site
//!    must sit near a comment describing the protocol it implements
//!    (which fence it pairs with, what it publishes, why Relaxed is
//!    enough, ...).
//! 3. **std-sync containment** — outside `crates/shims/rayon` and
//!    `crates/shims/loom`, non-test code must not use
//!    `std::thread::spawn` or `std::sync::{Mutex, Condvar}` directly:
//!    parallelism goes through the rayon shim so the model checker and
//!    the worker-budget machinery see every synchronization point.
//! 4. **Unsafe inventory** — the per-crate count of unsafe sites is
//!    written to `ANALYSIS_unsafe.json`; CI runs `--check`, so adding an
//!    unsafe site without regenerating the inventory (an auditable,
//!    reviewable diff) fails the build.
//!
//! Everything is plain line scanning over comment/string-stripped source —
//! deliberately dependency-free (no syn, no network) and fast enough to
//! run on every CI push.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How many lines above an `unsafe` site a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 6;
/// How many lines above an `unsafe fn`/`unsafe impl` declaration a
/// `# Safety` doc section may sit (doc sections are longer than one line).
const SAFETY_DOC_WINDOW: usize = 14;
/// How many lines above an `Ordering::` site its protocol comment may sit.
const ORDERING_WINDOW: usize = 10;

/// Crates allowed to synchronize by hand (rule 3's allowlist).
const SYNC_ALLOWLIST: &[&str] = &["crates/shims/rayon", "crates/shims/loom"];

/// Words that qualify a nearby comment as a memory-ordering protocol
/// comment (rule 2). Deliberately generous: the rule's job is to force
/// *a* stated rationale next to every ordering choice, not to grade it.
const PROTOCOL_WORDS: &[&str] = &[
    "order",
    "pair",
    "fence",
    "protocol",
    "handshake",
    "happens-before",
    "seqcst",
    "acquire",
    "release",
    "relaxed",
    "monotone",
    "publish",
    "race",
    "dekker",
    "latch",
    "cursor",
    "counter",
    "stale",
    "hint",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let check = args.iter().any(|a| a == "--check");
            std::process::exit(run_lint(&workspace_root(), check));
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--check]");
            std::process::exit(2);
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask always runs via `cargo run -p xtask`, so the manifest dir is
    // <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

fn run_lint(root: &Path, check: bool) -> i32 {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();

    let mut violations: Vec<String> = Vec::new();
    let mut inventory: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();

    for rel in &files {
        let text = match std::fs::read_to_string(root.join(rel)) {
            Ok(t) => t,
            Err(e) => {
                violations.push(format!("{}: unreadable: {e}", rel.display()));
                continue;
            }
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let report = lint_file(&rel_str, &text);
        violations.extend(report.violations);
        if report.unsafe_sites > 0 {
            inventory
                .entry(crate_of(&rel_str))
                .or_default()
                .insert(rel_str, report.unsafe_sites);
        }
    }

    let json = render_inventory(&inventory);
    let json_path = root.join("ANALYSIS_unsafe.json");
    if check {
        let on_disk = std::fs::read_to_string(&json_path).unwrap_or_default();
        if on_disk != json {
            violations.push(
                "ANALYSIS_unsafe.json is out of date — run `cargo run -p xtask -- lint` \
                 and commit the result"
                    .to_string(),
            );
        }
    } else if std::fs::write(&json_path, &json).is_err() {
        violations.push("failed to write ANALYSIS_unsafe.json".to_string());
    }

    if violations.is_empty() {
        let total: usize = inventory.values().flat_map(|f| f.values()).sum();
        println!(
            "xtask lint: OK ({} files, {} unsafe sites across {} crates)",
            files.len(),
            total,
            inventory.len()
        );
        0
    } else {
        for v in &violations {
            eprintln!("xtask lint: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        1
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Map a workspace-relative path to its crate name (directory convention:
/// `crates/<x>/…` and `crates/shims/<x>/…` are crate `<x>`'s; everything
/// else belongs to the root facade).
fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", "shims", name, ..] => format!("shims/{name}"),
        ["crates", name, ..] => (*name).to_string(),
        _ => "fast-bcc (root)".to_string(),
    }
}

struct FileReport {
    violations: Vec<String>,
    unsafe_sites: usize,
}

/// Is this file test-only by location? Either it lives under a test-only
/// directory, or it is a test module file (`tests.rs` / `*_tests.rs`,
/// which the workspace only includes behind `#[cfg(test)]` in the parent).
fn is_test_path(rel: &str) -> bool {
    if rel
        .split('/')
        .any(|seg| seg == "tests" || seg == "examples" || seg == "benches" || seg == "fixtures")
    {
        return true;
    }
    let file = rel.rsplit('/').next().unwrap_or(rel);
    file == "tests.rs" || file.ends_with("_tests.rs")
}

fn lint_file(rel: &str, text: &str) -> FileReport {
    let mut violations = Vec::new();
    let mut unsafe_sites = 0usize;

    let raw_lines: Vec<&str> = text.lines().collect();
    let stripped = strip_comments_and_strings(text);
    let code_lines: Vec<&str> = stripped.lines().collect();

    let path_is_test = is_test_path(rel);
    let in_shims = rel.starts_with("crates/shims/");
    let sync_allowed = SYNC_ALLOWLIST.iter().any(|p| rel.starts_with(p));

    // Everything from the first `#[cfg(test)]`/`#[cfg(all(test…))]` on is
    // test code (the workspace convention keeps test modules at the end
    // of the file).
    let first_test_line = raw_lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")
        })
        .unwrap_or(raw_lines.len());

    for (i, code) in code_lines.iter().enumerate() {
        let in_test = path_is_test || i >= first_test_line;
        if in_test {
            continue;
        }

        if has_word(code, "unsafe") {
            unsafe_sites += 1;
            let is_decl = {
                let after = code.split("unsafe").nth(1).unwrap_or("").trim_start();
                after.starts_with("fn")
                    || after.starts_with("impl")
                    || after.starts_with("trait")
                    || code.contains("pub unsafe fn")
                    || code.contains("unsafe extern")
            };
            let ok = has_safety_comment(&raw_lines, i, SAFETY_WINDOW)
                || (is_decl && has_safety_doc(&raw_lines, i, SAFETY_DOC_WINDOW));
            if !ok {
                violations.push(format!(
                    "{rel}:{}: `unsafe` without an adjacent `// SAFETY:` comment \
                     (or `# Safety` doc section on the declaration)",
                    i + 1
                ));
            }
        }

        if in_shims && code.contains("Ordering::") && !code.trim_start().starts_with("use ") {
            let ok = has_protocol_comment(&raw_lines, i, ORDERING_WINDOW);
            if !ok {
                violations.push(format!(
                    "{rel}:{}: `Ordering::` without a nearby memory-ordering \
                     protocol comment",
                    i + 1
                ));
            }
        }

        if !sync_allowed {
            for needle in [
                "std::thread::spawn",
                "std::sync::Mutex",
                "std::sync::Condvar",
            ] {
                if code.contains(needle) {
                    violations.push(format!(
                        "{rel}:{}: `{needle}` outside the sync-allowlisted shims — \
                         route through the rayon shim (`rayon::*` / `crate::sync`)",
                        i + 1
                    ));
                }
            }
            if code.trim_start().starts_with("use std::sync::")
                && (code.contains("Mutex") || code.contains("Condvar"))
            {
                violations.push(format!(
                    "{rel}:{}: importing Mutex/Condvar from `std::sync` outside the \
                     sync-allowlisted shims",
                    i + 1
                ));
            }
        }
    }

    FileReport {
        violations,
        unsafe_sites,
    }
}

/// Does `code` contain `word` as a standalone token (not a fragment of a
/// longer identifier, e.g. `unsafe` vs `unsafe_op_in_unsafe_fn`)?
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn has_safety_comment(raw_lines: &[&str], i: usize, window: usize) -> bool {
    let lo = i.saturating_sub(window);
    raw_lines[lo..=i.min(raw_lines.len() - 1)]
        .iter()
        .any(|l| l.contains("SAFETY:"))
}

fn has_safety_doc(raw_lines: &[&str], i: usize, window: usize) -> bool {
    let lo = i.saturating_sub(window);
    raw_lines[lo..=i.min(raw_lines.len() - 1)].iter().any(|l| {
        let t = l.trim_start();
        (t.starts_with("///") || t.starts_with("//!")) && t.contains("# Safety")
    })
}

/// A comment (line, doc, or trailing) within the window that mentions any
/// protocol word.
fn has_protocol_comment(raw_lines: &[&str], i: usize, window: usize) -> bool {
    let lo = i.saturating_sub(window);
    raw_lines[lo..=i.min(raw_lines.len() - 1)].iter().any(|l| {
        let Some(pos) = l.find("//") else {
            return false;
        };
        let comment = l[pos..].to_ascii_lowercase();
        PROTOCOL_WORDS.iter().any(|w| comment.contains(w))
    })
}

/// Replace comments and string-literal contents with spaces, preserving
/// line structure, so token scans don't trip on prose. Handles `//`
/// comments, nested `/* */` comments, `"…"` strings with escapes, and
/// (single-line or multi-line) raw strings `r"…"` / `r#"…"#`.
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut out = String::with_capacity(text.len());
    let b: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"…" or r#+"…"#+ .
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Keep line structure through `\`-newline continuations.
                    out.push(' ');
                    out.push(if b.get(i + 1) == Some(&'\n') {
                        '\n'
                    } else {
                        ' '
                    });
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
        }
    }
    out
}

/// Deterministic, dependency-free JSON rendering of the inventory
/// (BTreeMap iteration order is the sort order, so equal trees produce
/// byte-identical files — the property `--check` gates on).
fn render_inventory(inv: &BTreeMap<String, BTreeMap<String, usize>>) -> String {
    let total: usize = inv.values().flat_map(|f| f.values()).sum();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"generated_by\": \"cargo run -p xtask -- lint\",\n");
    s.push_str(
        "  \"note\": \"unsafe sites in non-test code, per crate and file; \
         regenerate with the lint, never by hand\",\n",
    );
    let _ = writeln!(s, "  \"total_unsafe_sites\": {total},");
    s.push_str("  \"crates\": {\n");
    let n_crates = inv.len();
    for (ci, (krate, files)) in inv.iter().enumerate() {
        let subtotal: usize = files.values().sum();
        let _ = writeln!(s, "    \"{krate}\": {{");
        let _ = writeln!(s, "      \"unsafe_sites\": {subtotal},");
        s.push_str("      \"files\": {\n");
        let n_files = files.len();
        for (fi, (file, count)) in files.iter().enumerate() {
            let comma = if fi + 1 == n_files { "" } else { "," };
            let _ = writeln!(s, "        \"{file}\": {count}{comma}");
        }
        s.push_str("      }\n");
        let comma = if ci + 1 == n_crates { "" } else { "," };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"unsafe\"; // unsafe in comment\nunsafe { go() } /* unsafe\nstill comment */ let y = 1;\n";
        let out = strip_comments_and_strings(src);
        let lines: Vec<&str> = out.lines().collect();
        assert!(!lines[0].contains("unsafe"), "line 0: {:?}", lines[0]);
        assert!(lines[1].contains("unsafe { go() }"));
        assert!(!lines[2].contains("unsafe"));
        assert!(lines[2].contains("let y = 1;"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let src = "let s = \"first \\\n    second\";\nunsafe { go() }\n";
        let out = strip_comments_and_strings(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(out.lines().nth(2).unwrap().contains("unsafe"));
    }

    #[test]
    fn strips_raw_strings() {
        let src =
            "let p = r#\"unsafe \"quoted\" text\"#; call();\nlet q = r\"std::sync::Mutex\";\n";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("unsafe"));
        assert!(!out.contains("Mutex"));
        assert!(out.contains("call();"));
    }

    #[test]
    fn unsafe_word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(has_word("pub unsafe fn f()", "unsafe"));
        assert!(!has_word("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
        assert!(!has_word("my_unsafe_thing", "unsafe"));
    }

    #[test]
    fn flags_unsafe_without_safety_comment() {
        let report = lint_file(
            "crates/core/src/x.rs",
            "fn f() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n",
        );
        assert_eq!(report.unsafe_sites, 1);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("SAFETY"));
    }

    #[test]
    fn accepts_unsafe_with_safety_comment() {
        let report = lint_file(
            "crates/core/src/x.rs",
            "fn f() {\n    // SAFETY: n < len checked above.\n    unsafe { go() }\n}\n",
        );
        assert_eq!(report.unsafe_sites, 1);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn accepts_unsafe_fn_with_safety_doc_section() {
        let src = "\
/// Does a thing.\n\
///\n\
/// # Safety\n\
/// Caller must uphold the contract.\n\
pub unsafe fn f() {}\n";
        let report = lint_file("crates/core/src/x.rs", src);
        assert_eq!(report.unsafe_sites, 1);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn unsafe_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() {\n        unsafe { go() }\n    }\n}\n";
        let report = lint_file("crates/core/src/x.rs", src);
        assert_eq!(report.unsafe_sites, 0);
        assert!(report.violations.is_empty());
        let report = lint_file("tests/integration.rs", "unsafe { go() }\n");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn flags_uncommented_ordering_in_shims_only() {
        let src = "fn f(a: &AtomicUsize) {\n    a.load(Ordering::Relaxed);\n}\n";
        let in_shim = lint_file("crates/shims/rayon/src/pool.rs", src);
        assert_eq!(in_shim.violations.len(), 1, "{:?}", in_shim.violations);
        assert!(in_shim.violations[0].contains("Ordering"));
        let outside = lint_file("crates/core/src/x.rs", src);
        assert!(outside.violations.is_empty(), "{:?}", outside.violations);
    }

    #[test]
    fn accepts_ordering_with_protocol_comment() {
        let src = "fn f(a: &AtomicUsize) {\n    // Monotone counter: readers tolerate staleness.\n    a.load(Ordering::Relaxed);\n}\n";
        let report = lint_file("crates/shims/rayon/src/pool.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn ordering_import_lines_are_exempt() {
        let src = "use std::sync::atomic::Ordering;\nfn f() {}\n";
        let report = lint_file("crates/shims/rayon/src/sync.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn flags_std_sync_outside_allowlist() {
        let src = "use std::sync::{Arc, Mutex};\nfn f() {\n    std::thread::spawn(|| {});\n}\n";
        let report = lint_file("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        let allowed = lint_file("crates/shims/rayon/src/pool.rs", src);
        assert!(allowed.violations.is_empty(), "{:?}", allowed.violations);
    }

    #[test]
    fn test_module_files_are_exempt() {
        let src = "fn f() {\n    unsafe { go() }\n    a.load(Ordering::Relaxed);\n}\n";
        let report = lint_file("crates/shims/rayon/src/pool/model_tests.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.unsafe_sites, 0);
        let report = lint_file("crates/core/src/tests.rs", src);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn std_sync_in_integration_tests_is_exempt() {
        let src = "use std::sync::Mutex;\n";
        let report = lint_file("tests/parallel_runtime.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn inventory_is_deterministic_json() {
        let mut inv: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        inv.entry("primitives".into())
            .or_default()
            .insert("crates/primitives/src/slice.rs".into(), 7);
        inv.entry("ett".into())
            .or_default()
            .insert("crates/ett/src/euler.rs".into(), 3);
        let a = render_inventory(&inv);
        let b = render_inventory(&inv);
        assert_eq!(a, b);
        // Sorted: "ett" precedes "primitives".
        assert!(a.find("\"ett\"").unwrap() < a.find("\"primitives\"").unwrap());
        assert!(a.contains("\"total_unsafe_sites\": 10"));
        // Well-formed enough for serde consumers: balanced braces.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn crate_mapping() {
        assert_eq!(crate_of("crates/primitives/src/slice.rs"), "primitives");
        assert_eq!(crate_of("crates/shims/rayon/src/pool.rs"), "shims/rayon");
        assert_eq!(crate_of("src/lib.rs"), "fast-bcc (root)");
        assert_eq!(crate_of("tests/x.rs"), "fast-bcc (root)");
    }
}
