//! Property-based tests for the parallel primitives: every primitive is
//! compared against its obvious sequential specification on arbitrary
//! inputs, including adversarial sizes around block/grain boundaries.

use fastbcc_primitives::rmq::{BlockRmq, RmqKind, SparseTable};
use fastbcc_primitives::{pack, reduce, scan, semisort, sort};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn scan_exclusive_is_prefix_sum(xs in proptest::collection::vec(0usize..1000, 0..5000)) {
        let mut got = xs.clone();
        let total = scan::prefix_sums(&mut got);
        let mut acc = 0usize;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn scan_inclusive_matches(xs in proptest::collection::vec(0u64..1000, 0..5000)) {
        let mut got = xs.clone();
        let total = scan::scan_inclusive_inplace(&mut got, 0, |a, b| a + b);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            acc += x;
            prop_assert_eq!(got[i], acc);
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn pack_equals_filter(xs in proptest::collection::vec(any::<u32>(), 0..5000)) {
        let got = pack::filter_slice(&xs, |&x| x % 3 == 0);
        let want: Vec<u32> = xs.iter().copied().filter(|&x| x % 3 == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn counting_sort_matches_stable_sort(
        xs in proptest::collection::vec(0u32..97, 0..4000)
    ) {
        let tagged: Vec<(u32, u32)> =
            xs.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let (got, offsets) = sort::counting_sort_by(&tagged, 97, |&(k, _)| k as usize);
        let mut want = tagged.clone();
        want.sort_by_key(|&(k, _)| k); // std stable sort
        prop_assert_eq!(&got, &want);
        // Offsets delimit buckets.
        for k in 0..97usize {
            for i in offsets[k]..offsets[k + 1] {
                prop_assert_eq!(got[i].0 as usize, k);
            }
        }
    }

    #[test]
    fn radix_sort_matches_std(xs in proptest::collection::vec(any::<u64>(), 0..4000)) {
        let got = sort::radix_sort_by(&xs, u64::MAX, |&x| x);
        let mut want = xs.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn semisort_groups_and_preserves_multiset(
        xs in proptest::collection::vec(0u32..50, 0..3000)
    ) {
        let n_keys = 50;
        let (grouped, offsets) =
            semisort::semisort_by_small_key(&xs, n_keys, |&x| x as usize);
        prop_assert!(semisort::is_grouped(&grouped, |&x| x));
        let mut a = xs.clone();
        let mut b = grouped.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(offsets[n_keys], xs.len());
    }

    #[test]
    fn hash_semisort_groups(keys in proptest::collection::vec(0u64..40, 0..2000)) {
        let grouped = semisort::semisort_by_hash(&keys, |&x| x);
        prop_assert!(semisort::is_grouped(&grouped, |&x| x));
        prop_assert_eq!(grouped.len(), keys.len());
    }

    #[test]
    fn rmq_structures_agree_with_naive(
        xs in proptest::collection::vec(any::<u32>(), 1..2000),
        queries in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..50)
    ) {
        let n = xs.len();
        let full_min = SparseTable::build(&xs, RmqKind::Min);
        let block_max = BlockRmq::build(&xs, RmqKind::Max);
        for (a, b) in queries {
            let lo = a as usize % n;
            let hi = lo + (b as usize % (n - lo));
            let naive_min = xs[lo..=hi].iter().copied().min().unwrap();
            let naive_max = xs[lo..=hi].iter().copied().max().unwrap();
            prop_assert_eq!(full_min.query(lo, hi), naive_min);
            prop_assert_eq!(block_max.query(lo, hi), naive_max);
        }
    }

    #[test]
    fn reduce_ops_match_iterators(xs in proptest::collection::vec(any::<u32>(), 0..3000)) {
        prop_assert_eq!(reduce::min_slice(&xs), xs.iter().copied().min());
        prop_assert_eq!(reduce::max_slice(&xs), xs.iter().copied().max());
        let sum = reduce::sum_u64(xs.len(), |i| xs[i] as u64);
        prop_assert_eq!(sum, xs.iter().map(|&x| x as u64).sum::<u64>());
    }

    #[test]
    fn offsets_from_sorted_consistency(mut xs in proptest::collection::vec(0u32..64, 0..2000)) {
        xs.sort_unstable();
        let offsets = sort::offsets_from_sorted(&xs, 64, |&x| x as usize);
        prop_assert_eq!(offsets.len(), 65);
        prop_assert_eq!(offsets[0], 0);
        prop_assert_eq!(offsets[64], xs.len());
        for k in 0..64usize {
            prop_assert!(offsets[k] <= offsets[k + 1]);
            for i in offsets[k]..offsets[k + 1] {
                prop_assert_eq!(xs[i] as usize, k);
            }
        }
    }
}
