//! Parallel prefix sums (scan): `O(n)` work, `O(log n)` span.
//!
//! The classic blocked two-pass scheme [BFGS20 §4]:
//!
//! 1. split the input into `B` contiguous blocks and reduce each in parallel;
//! 2. exclusive-scan the `B` block sums (sequentially — `B` is a small
//!    multiple of the worker count, so this is `O(p)` ≪ `O(n)`);
//! 3. re-scan each block in parallel seeded with its block offset.
//!
//! With `B = Θ(p)` the span is `O(n/B + B) = O(n/p + p)`, which realizes the
//! `O(log n)` span bound of the recursive algorithm for all practical `n`
//! while touching the data exactly twice.

use crate::par::{block_bounds, num_blocks, DEFAULT_GRAIN};
use rayon::prelude::*;

/// In-place **exclusive** scan with operator `op` and identity `id`.
/// Returns the total reduction of the original input.
///
/// After the call, `a[i]` holds `op(id, a[0], ..., a[i-1])`.
pub fn scan_exclusive_inplace<T, Op>(a: &mut [T], id: T, op: Op) -> T
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync + Send + Copy,
{
    let n = a.len();
    if n == 0 {
        return id;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    if blocks <= 1 {
        let mut acc = id;
        for x in a.iter_mut() {
            let old = *x;
            *x = acc;
            acc = op(acc, old);
        }
        return acc;
    }
    let bounds = block_bounds(n, blocks);

    // Pass 1: per-block reductions.
    let mut sums: Vec<T> = bounds
        .par_windows(2)
        .map(|w| a[w[0]..w[1]].iter().fold(id, |acc, &x| op(acc, x)))
        .collect();

    // Sequential scan over the (few) block sums.
    let mut acc = id;
    for s in sums.iter_mut() {
        let old = *s;
        *s = acc;
        acc = op(acc, old);
    }
    let total = acc;

    // Pass 2: per-block exclusive scan seeded with the block offset.
    let sums_ref = &sums;
    let block_slices: Vec<&mut [T]> = split_at_bounds(a, &bounds);
    block_slices
        .into_par_iter()
        .enumerate()
        .for_each(|(b, blk)| {
            let mut acc = sums_ref[b];
            for x in blk.iter_mut() {
                let old = *x;
                *x = acc;
                acc = op(acc, old);
            }
        });
    total
}

/// In-place **inclusive** scan; returns the total.
pub fn scan_inclusive_inplace<T, Op>(a: &mut [T], id: T, op: Op) -> T
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync + Send + Copy,
{
    let n = a.len();
    if n == 0 {
        return id;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);
    let mut sums: Vec<T> = bounds
        .par_windows(2)
        .map(|w| a[w[0]..w[1]].iter().fold(id, |acc, &x| op(acc, x)))
        .collect();
    let mut acc = id;
    for s in sums.iter_mut() {
        let old = *s;
        *s = acc;
        acc = op(acc, old);
    }
    let total = acc;
    let sums_ref = &sums;
    let block_slices: Vec<&mut [T]> = split_at_bounds(a, &bounds);
    block_slices
        .into_par_iter()
        .enumerate()
        .for_each(|(b, blk)| {
            let mut acc = sums_ref[b];
            for x in blk.iter_mut() {
                acc = op(acc, *x);
                *x = acc;
            }
        });
    total
}

/// Exclusive prefix sums of `usize` counts — the workhorse for offsets.
/// Returns the total.
///
/// With the `simd` feature this dispatches to
/// [`prefix_sums_vectorized`]; outputs are byte-identical either way.
pub fn prefix_sums(a: &mut [usize]) -> usize {
    #[cfg(feature = "simd")]
    {
        prefix_sums_vectorized(a)
    }
    #[cfg(not(feature = "simd"))]
    {
        prefix_sums_scalar(a)
    }
}

/// The scalar [`prefix_sums`] path (always compiled, for scalar-vs-SIMD
/// equivalence tests and the `primitives` microbench).
pub fn prefix_sums_scalar(a: &mut [usize]) -> usize {
    scan_exclusive_inplace(a, 0usize, |x, y| x + y)
}

/// Kernelized [`prefix_sums`] (always compiled; the `simd` feature only
/// changes which path `prefix_sums` takes).
///
/// Sequential runs (one worker, or one block) take a **single pass**: the
/// [`crate::kernels::exclusive_scan_usize`] kernel forms each chunk's
/// prefixes in registers, halving memory traffic versus the blocked
/// two-pass scheme and skipping its block-sum allocations. Parallel runs
/// keep the two-pass shape but use the multi-accumulator sum and chunked
/// scan kernels inside each block.
pub fn prefix_sums_vectorized(a: &mut [usize]) -> usize {
    let n = a.len();
    if n == 0 {
        return 0;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    if blocks <= 1 || crate::par::num_threads() <= 1 {
        return crate::kernels::exclusive_scan_usize(a, 0);
    }
    let bounds = block_bounds(n, blocks);
    let mut sums: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| crate::kernels::sum_usize(&a[w[0]..w[1]]))
        .collect();
    let total = crate::kernels::exclusive_scan_usize(&mut sums, 0);
    let sums_ref = &sums;
    let block_slices: Vec<&mut [usize]> = split_at_bounds(a, &bounds);
    block_slices
        .into_par_iter()
        .enumerate()
        .for_each(|(b, blk)| {
            crate::kernels::exclusive_scan_usize(blk, sums_ref[b]);
        });
    total
}

/// Inclusive prefix sums of `u64` values — the weight-accumulation scan.
/// Returns the total. Dispatches like [`prefix_sums`].
pub fn scan_inclusive_u64(a: &mut [u64]) -> u64 {
    #[cfg(feature = "simd")]
    {
        scan_inclusive_u64_vectorized(a)
    }
    #[cfg(not(feature = "simd"))]
    {
        scan_inclusive_u64_scalar(a)
    }
}

/// The scalar [`scan_inclusive_u64`] path (always compiled).
pub fn scan_inclusive_u64_scalar(a: &mut [u64]) -> u64 {
    scan_inclusive_inplace(a, 0u64, |x, y| x + y)
}

/// Kernelized [`scan_inclusive_u64`] (always compiled): single-pass
/// chunked scan when sequential, kernelized blocks when parallel.
pub fn scan_inclusive_u64_vectorized(a: &mut [u64]) -> u64 {
    let n = a.len();
    if n == 0 {
        return 0;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    if blocks <= 1 || crate::par::num_threads() <= 1 {
        return crate::kernels::inclusive_scan_u64(a, 0);
    }
    let bounds = block_bounds(n, blocks);
    let mut sums: Vec<u64> = bounds
        .par_windows(2)
        .map(|w| a[w[0]..w[1]].iter().copied().fold(0u64, u64::wrapping_add))
        .collect();
    let mut acc = 0u64;
    for s in sums.iter_mut() {
        let old = *s;
        *s = acc;
        acc = acc.wrapping_add(old);
    }
    let total = acc;
    let sums_ref = &sums;
    let block_slices: Vec<&mut [u64]> = split_at_bounds(a, &bounds);
    block_slices
        .into_par_iter()
        .enumerate()
        .for_each(|(b, blk)| {
            crate::kernels::inclusive_scan_u64(blk, sums_ref[b]);
        });
    total
}

/// Split a mutable slice into the pieces delimited by `bounds`
/// (`bounds[0] = 0`, `bounds.last() = a.len()`, nondecreasing).
fn split_at_bounds<'a, T>(mut a: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
    let mut prev = 0usize;
    for &b in &bounds[1..] {
        let (head, tail) = a.split_at_mut(b - prev);
        out.push(head);
        a = tail;
        prev = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::hash64;

    fn seq_exclusive(a: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(a.len());
        let mut acc = 0;
        for &x in a {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_matches_sequential() {
        for n in [0usize, 1, 2, 100, 4096, 100_001] {
            let orig: Vec<usize> = (0..n).map(|i| (hash64(i as u64) % 10) as usize).collect();
            let (want, want_total) = seq_exclusive(&orig);
            let mut got = orig.clone();
            let total = prefix_sums(&mut got);
            assert_eq!(total, want_total, "n={n}");
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn inclusive_matches_sequential() {
        for n in [0usize, 1, 5, 4095, 65_537] {
            let orig: Vec<u64> = (0..n).map(|i| hash64(i as u64) % 100).collect();
            let mut want = Vec::with_capacity(n);
            let mut acc = 0u64;
            for &x in &orig {
                acc += x;
                want.push(acc);
            }
            let mut got = orig.clone();
            let total = scan_inclusive_inplace(&mut got, 0u64, |a, b| a + b);
            assert_eq!(total, acc);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn scan_with_max_operator() {
        let n = 10_000;
        let orig: Vec<u64> = (0..n).map(|i| hash64(i as u64) % 1000).collect();
        let mut got = orig.clone();
        let total = scan_exclusive_inplace(&mut got, 0u64, |a, b| a.max(b));
        assert_eq!(total, orig.iter().copied().max().unwrap());
        let mut run = 0u64;
        for i in 0..n {
            assert_eq!(got[i], run);
            run = run.max(orig[i]);
        }
    }

    #[test]
    fn split_at_bounds_partitions() {
        let mut v: Vec<u32> = (0..10).collect();
        let bounds = vec![0, 3, 3, 7, 10];
        let parts = split_at_bounds(&mut v, &bounds);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], &[0, 1, 2]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2], &[3, 4, 5, 6]);
        assert_eq!(parts[3], &[7, 8, 9]);
    }

    /// Scalar and kernelized paths must be byte-identical on adversarial
    /// lengths (0, 1, lane−1, lane, lane+1, large) at every thread budget,
    /// so the `simd` feature can ride under the determinism proptests.
    #[test]
    fn vectorized_paths_match_scalar_paths() {
        use crate::kernels::LANES;
        let mut r = crate::rng::Rng::new(9);
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 65_537] {
            let a: Vec<usize> = (0..n).map(|_| r.index(50)).collect();
            let b: Vec<u64> = (0..n).map(|_| r.next_u64() % 50).collect();
            for threads in [1usize, 2, 8] {
                crate::par::with_threads(threads, || {
                    let (mut s, mut v) = (a.clone(), a.clone());
                    assert_eq!(
                        prefix_sums_scalar(&mut s),
                        prefix_sums_vectorized(&mut v),
                        "prefix total n={n} threads={threads}"
                    );
                    assert_eq!(s, v, "prefix n={n} threads={threads}");
                    let (mut s, mut v) = (b.clone(), b.clone());
                    assert_eq!(
                        scan_inclusive_u64_scalar(&mut s),
                        scan_inclusive_u64_vectorized(&mut v),
                        "inclusive total n={n} threads={threads}"
                    );
                    assert_eq!(s, v, "inclusive n={n} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn proptest_like_randomized_sizes() {
        let mut r = crate::rng::Rng::new(31);
        for _ in 0..20 {
            let n = r.index(20_000);
            let orig: Vec<usize> = (0..n).map(|_| r.index(7)).collect();
            let (want, want_total) = seq_exclusive(&orig);
            let mut got = orig.clone();
            let total = prefix_sums(&mut got);
            assert_eq!((got, total), (want, want_total));
        }
    }
}
