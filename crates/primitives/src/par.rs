//! Thin helpers over the rayon fork–join runtime.
//!
//! The paper's cost model is binary fork–join with randomized work stealing
//! (Blumofe–Leiserson). Rayon implements that model; these helpers add the
//! two things our algorithm code needs on top:
//!
//! 1. **grain-size control** — the analyses assume `O(1)` leaf bodies, and a
//!    practical implementation needs coarsened leaves ([`par_for_grain`]);
//! 2. **scoped thread pools** — the scalability experiments (Fig. 4) measure
//!    the same code under different worker counts ([`with_threads`]).

use rayon::prelude::*;

/// Default grain size for parallel loops over cheap bodies.
///
/// Chosen so that a leaf task amortizes the ~100ns steal/fork overhead over
/// at least a few microseconds of work; the usual ParlayLib default is of the
/// same order (1024–2048).
pub const DEFAULT_GRAIN: usize = 2048;

/// Number of worker threads in the current rayon pool.
#[inline]
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Run `f` on a freshly built pool with exactly `n` worker threads.
///
/// Used by the benchmark harness to produce the thread-sweep curves of
/// Fig. 4. Building a pool is milliseconds of overhead, so callers should
/// wrap whole measurements, not inner loops.
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n.max(1))
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// Parallel for over `0..n` with the default grain size.
#[inline]
pub fn par_for(n: usize, f: impl Fn(usize) + Sync + Send) {
    par_for_grain(n, DEFAULT_GRAIN, f)
}

/// Parallel for over `0..n`, splitting into chunks of at least `grain`
/// indices. `O(n)` work, `O(grain + log n)` span.
pub fn par_for_grain(n: usize, grain: usize, f: impl Fn(usize) + Sync + Send) {
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    if n <= grain {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let chunks = n.div_ceil(grain);
    (0..chunks).into_par_iter().for_each(|c| {
        let lo = c * grain;
        let hi = (lo + grain).min(n);
        for i in lo..hi {
            f(i);
        }
    });
}

/// Number of blocks used by block-based primitives (scan, pack, histogram).
///
/// We want enough blocks for load balance (a small multiple of the worker
/// count) but few enough that the sequential over-blocks pass is negligible.
#[inline]
pub fn num_blocks(n: usize, grain: usize) -> usize {
    if n == 0 {
        1
    } else {
        n.div_ceil(grain.max(1))
            .min(4 * num_threads().max(1) * 8)
            .max(1)
    }
}

/// Split `0..n` into `blocks` nearly-equal contiguous ranges; returns the
/// boundaries (length `blocks + 1`, first 0, last `n`).
pub fn block_bounds(n: usize, blocks: usize) -> Vec<usize> {
    let blocks = blocks.max(1);
    let mut b = Vec::with_capacity(blocks + 1);
    for i in 0..=blocks {
        b.push(i * n / blocks);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_and_single() {
        par_for(0, |_| panic!("must not be called"));
        let hit = AtomicUsize::new(0);
        par_for(1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_for_grain_one() {
        let n = 513;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_grain(n, 1, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn block_bounds_cover_range() {
        for n in [0usize, 1, 7, 100, 1000] {
            for blocks in [1usize, 2, 3, 8, 64] {
                let b = block_bounds(n, blocks);
                assert_eq!(b.len(), blocks + 1);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), n);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn with_threads_runs_with_requested_parallelism() {
        let t = with_threads(2, num_threads);
        assert_eq!(t, 2);
        let t = with_threads(1, num_threads);
        assert_eq!(t, 1);
    }
}
