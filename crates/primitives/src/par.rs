//! Thin helpers over the rayon fork–join runtime.
//!
//! The paper's cost model is binary fork–join with randomized work stealing
//! (Blumofe–Leiserson). Rayon implements that model; these helpers add the
//! two things our algorithm code needs on top:
//!
//! 1. **grain-size control** — the analyses assume `O(1)` leaf bodies, and a
//!    practical implementation needs coarsened leaves ([`par_for_grain`]);
//! 2. **scoped thread pools** — the scalability experiments (Fig. 4) measure
//!    the same code under different worker counts ([`with_threads`]).

use rayon::prelude::*;

/// Default grain size for parallel loops over cheap bodies.
///
/// Chosen so that a leaf task amortizes the ~100ns steal/fork overhead over
/// at least a few microseconds of work; the usual ParlayLib default is of the
/// same order (1024–2048).
pub const DEFAULT_GRAIN: usize = 2048;

/// Number of worker threads in the current rayon pool.
#[inline]
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Run `f` with a worker budget of exactly `n` threads.
///
/// Used by the benchmark harness to produce the thread-sweep curves of
/// Fig. 4. The budget is faithful: however deeply `f` nests parallel
/// operations, at most `n` workers ever run them concurrently. Workers
/// come from the shared persistent pool, so entering a region is cheap
/// (no threads are spawned after the pool is warm).
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n.max(1))
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// Stable index of the current pool worker (`0..`), or `None` on threads
/// outside the pool — the key for per-worker scratch arrays
/// ([`crate::worker_local::WorkerLocal`]).
#[inline]
pub fn worker_index() -> Option<usize> {
    rayon::current_thread_index()
}

/// Hard ceiling on pool worker identities: every [`worker_index`] the
/// runtime will ever report is `< max_workers()`, for the lifetime of the
/// process (the pool clamps spawning at the hardware parallelism or the
/// `FASTBCC_THREADS` budget, whichever is larger). Per-worker scratch
/// arrays are sized off this constant — one slot per possible worker plus
/// one for non-pool (submitter) threads.
#[inline]
pub fn max_workers() -> usize {
    rayon::pool_max_workers()
}

/// Total pool worker OS threads spawned so far (monotone). A warm
/// workload holds this constant; benchmarks record it to prove measured
/// runs paid no thread-spawn latency.
#[inline]
pub fn pool_spawns() -> usize {
    rayon::pool_spawn_count()
}

/// Successful work-steals from per-worker deques so far (monotone).
/// Benchmarks record it next to [`pool_spawns`] so scheduler behavior is
/// observable in every JSON artifact; a budget-1 run holds it constant.
#[inline]
pub fn steal_count() -> usize {
    rayon::pool_steal_count()
}

/// High-water mark of any pool worker's deque depth so far — how much
/// splittable work the scheduler has exposed to thieves at once.
#[inline]
pub fn deque_max_depth() -> usize {
    rayon::pool_deque_max_depth()
}

/// Parallel for over `0..n` with the default grain size.
#[inline]
pub fn par_for(n: usize, f: impl Fn(usize) + Sync + Send) {
    par_for_grain(n, DEFAULT_GRAIN, f)
}

/// Parallel for over `0..n`, splitting into chunks of at least `grain`
/// indices. `O(n)` work, `O(grain + log n)` span.
pub fn par_for_grain(n: usize, grain: usize, f: impl Fn(usize) + Sync + Send) {
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    if n <= grain {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let chunks = n.div_ceil(grain);
    (0..chunks).into_par_iter().for_each(|c| {
        let lo = c * grain;
        let hi = (lo + grain).min(n);
        for i in lo..hi {
            f(i);
        }
    });
}

/// Number of blocks used by block-based primitives (scan, pack, histogram).
///
/// We want enough blocks for load balance (at most 4× the worker count)
/// but few enough that the sequential over-blocks pass is negligible.
#[inline]
pub fn num_blocks(n: usize, grain: usize) -> usize {
    if n == 0 {
        1
    } else {
        n.div_ceil(grain.max(1))
            .min(4 * num_threads().max(1))
            .max(1)
    }
}

/// Split `0..n` into `blocks` nearly-equal contiguous ranges; returns the
/// boundaries (length `blocks + 1`, first 0, last `n`).
pub fn block_bounds(n: usize, blocks: usize) -> Vec<usize> {
    let blocks = blocks.max(1);
    let mut b = Vec::with_capacity(blocks + 1);
    for i in 0..=blocks {
        b.push(i * n / blocks);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_and_single() {
        par_for(0, |_| panic!("must not be called"));
        let hit = AtomicUsize::new(0);
        par_for(1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_for_grain_one() {
        let n = 513;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_grain(n, 1, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn block_bounds_cover_range() {
        for n in [0usize, 1, 7, 100, 1000] {
            for blocks in [1usize, 2, 3, 8, 64] {
                let b = block_bounds(n, blocks);
                assert_eq!(b.len(), blocks + 1);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), n);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn with_threads_runs_with_requested_parallelism() {
        let t = with_threads(2, num_threads);
        assert_eq!(t, 2);
        let t = with_threads(1, num_threads);
        assert_eq!(t, 1);
    }

    /// Acceptance: a `with_threads(k)` region never exceeds `k`
    /// concurrently-running workers, for k ∈ {1, 2, 4}, regardless of the
    /// hardware thread count.
    #[test]
    fn with_threads_bounds_concurrent_workers() {
        for k in [1usize, 2, 4] {
            let active = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            with_threads(k, || {
                par_for_grain(64, 1, |_| {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            });
            let peak = peak.load(Ordering::SeqCst);
            assert!(peak >= 1);
            assert!(
                peak <= k,
                "{peak} concurrent workers under with_threads({k})"
            );
        }
    }

    #[test]
    fn worker_index_absent_on_external_threads() {
        assert_eq!(worker_index(), None);
    }
}
