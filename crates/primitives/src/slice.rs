//! Shared-slice scatter writes for parallel algorithms.
//!
//! Many of the algorithms in this repository perform *scatter* phases: a
//! parallel loop where iteration `i` writes to a data-dependent position
//! `pos(i)` of an output buffer, with the algorithm guaranteeing that
//! positions are pairwise distinct (e.g. writing each element to its
//! scanned offset in a pack or counting sort). Safe Rust cannot express
//! "disjoint but data-dependent" mutable access, so this module provides the
//! standard HPC escape hatch: a `Send + Sync` view over a mutable slice whose
//! `write` is `unsafe` with a documented disjointness contract.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A shareable view over `&mut [T]` permitting concurrent disjoint writes.
///
/// # Safety contract
/// Callers of [`UnsafeSlice::write`] (and `get_mut`) must guarantee that no
/// index is written by more than one thread during the lifetime of the view,
/// and that no index is concurrently read and written. Reads of indices that
/// are never concurrently written are fine.
pub struct UnsafeSlice<'a, T> {
    ptr: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice. The borrow checker keeps the original slice
    /// inaccessible for `'a`, so this view is the sole access path.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        // `UnsafeCell<T>` has the same layout as `T`.
        let ptr = slice.as_mut_ptr() as *const UnsafeCell<T>;
        Self {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// No other thread may read or write index `i` concurrently, and `i`
    /// must be in bounds (checked with a debug assertion only).
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(
            i < self.len,
            "UnsafeSlice write out of bounds: {i} >= {}",
            self.len
        );
        // SAFETY: `i < len` keeps `add` inside the original slice, and the
        // caller's contract (no concurrent access to index `i`) makes the
        // `UnsafeCell` write exclusive.
        unsafe { *(*self.ptr.add(i)).get() = value };
    }

    /// Read the value at `i`.
    ///
    /// # Safety
    /// No other thread may be writing index `i` concurrently, and `i` must
    /// be in bounds.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(
            i < self.len,
            "UnsafeSlice read out of bounds: {i} >= {}",
            self.len
        );
        // SAFETY: `i < len` keeps `add` inside the original slice, and the
        // caller's contract (no concurrent writer of index `i`) makes the
        // read data-race-free.
        unsafe { *(*self.ptr.add(i)).get() }
    }

    /// Mutable reference to the element at `i`.
    ///
    /// # Safety
    /// Same disjointness contract as [`write`](Self::write).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        // SAFETY: `i < len` keeps `add` inside the original slice, and the
        // caller's disjointness contract makes this the only live
        // reference to slot `i` while it exists.
        unsafe { &mut *(*self.ptr.add(i)).get() }
    }

    /// Mutable subslice `start..start + len`, for block-wise scatters that
    /// write whole disjoint ranges (e.g. `copy_from_slice` compaction).
    ///
    /// # Safety
    /// Same disjointness contract as [`write`](Self::write), applied to
    /// every index in the range: no other thread may touch it while the
    /// returned slice lives, and the range must be in bounds.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        // SAFETY: `start + len <= self.len` keeps the range inside the
        // original slice, and the caller's contract makes this the only
        // live access to every index in it while the slice exists.
        unsafe { std::slice::from_raw_parts_mut((*self.ptr.add(start)).get(), len) }
    }
}

/// Allocate a `Vec<T>` of length `n` without initializing its contents,
/// for use as a scatter target that the algorithm fully overwrites.
///
/// # Safety
/// The caller must write every index before reading it. We restrict `T` to
/// `Copy` types (plain old data in all our uses — ids, offsets, tags) so
/// dropping uninitialized contents is not an issue even on panic unwind.
#[allow(clippy::uninit_vec)] // deliberate: Copy-only scatter targets, see contract above
pub unsafe fn uninit_vec<T: Copy>(n: usize) -> Vec<T> {
    let mut v = Vec::with_capacity(n);
    // SAFETY: capacity reserved above; contents are POD per the T: Copy bound
    // and the caller's contract to overwrite before reading.
    unsafe { v.set_len(n) };
    v
}

/// Resize `v` to length `n` without initializing new contents, reusing its
/// existing allocation — the scratch-buffer counterpart of [`uninit_vec`]
/// for the engine's reusable `Workspace`-style scatter targets.
///
/// # Safety
/// Same contract as [`uninit_vec`]: every index must be written before it
/// is read. `T: Copy` keeps stale/uninitialized contents drop-free.
#[allow(clippy::uninit_vec)] // deliberate: Copy-only scatter targets, see contract above
pub unsafe fn reuse_uninit<T: Copy>(v: &mut Vec<T>, n: usize) {
    v.clear();
    v.reserve(n);
    // SAFETY: capacity reserved above; contents are POD per the T: Copy
    // bound and the caller's contract to overwrite before reading.
    unsafe { v.set_len(n) };
}

/// Grow `v` by `extra` uninitialized slots (existing contents untouched),
/// for *append*-scatter targets ([`crate::pack::pack_map_extend`]).
///
/// # Safety
/// Same contract as [`uninit_vec`], applied to the appended tail: every
/// new index must be written before it is read. `T: Copy` keeps
/// stale/uninitialized contents drop-free.
#[allow(clippy::uninit_vec)] // deliberate: Copy-only scatter targets, see contract above
pub unsafe fn extend_uninit<T: Copy>(v: &mut Vec<T>, extra: usize) {
    v.reserve(extra);
    // SAFETY: capacity reserved above; contents are POD per the T: Copy
    // bound and the caller's contract to overwrite before reading.
    unsafe { v.set_len(v.len() + extra) };
}

/// Grow `v`'s capacity to at least `cap` with `reserve_exact`, so equal
/// requests produce equal capacities — the scratch-pooling convention
/// that keeps `heap_bytes()` reproducible across repeated solves.
pub fn reserve_to<T>(v: &mut Vec<T>, cap: usize) {
    if v.capacity() < cap {
        v.reserve_exact(cap - v.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_for;

    #[test]
    fn reserve_to_is_exact_and_monotone() {
        let mut v: Vec<u32> = Vec::new();
        reserve_to(&mut v, 100);
        assert_eq!(v.capacity(), 100);
        reserve_to(&mut v, 50);
        assert_eq!(v.capacity(), 100, "smaller requests must not shrink");
        v.extend([1, 2, 3]);
        reserve_to(&mut v, 200);
        assert_eq!(v.capacity(), 200);
        assert_eq!(v, [1, 2, 3]);
    }

    #[test]
    fn disjoint_parallel_writes_land() {
        let n = 100_000;
        let mut out = vec![0u64; n];
        {
            let view = UnsafeSlice::new(&mut out);
            // Permutation scatter: index i writes slot (i * 7919) % n, which
            // is a bijection because gcd(7919, n) = 1.
            par_for(n, |i| unsafe {
                view.write((i * 7919) % n, i as u64);
            });
        }
        let mut seen = vec![false; n];
        for (slot, &v) in out.iter().enumerate() {
            assert_eq!((v as usize * 7919) % n, slot);
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn len_and_empty() {
        let mut v = vec![1, 2, 3];
        let s = UnsafeSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: Vec<u32> = vec![];
        let s = UnsafeSlice::new(&mut e);
        assert!(s.is_empty());
    }

    #[test]
    fn uninit_vec_fully_written_roundtrip() {
        let n = 4096;
        let mut v: Vec<u32> = unsafe { uninit_vec(n) };
        {
            let view = UnsafeSlice::new(&mut v);
            par_for(n, |i| unsafe { view.write(i, i as u32 * 3) });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 * 3));
    }
}
