//! Atomic utilities: priority writes, atomic min/max, and cache-padded cells.
//!
//! The paper's model assumes a unit-cost `compare_and_swap`. The two
//! recurring patterns in the algorithms are:
//!
//! * **priority write** (`write_min` / `write_max`) — concurrent attempts to
//!   lower (raise) a memory cell; the minimum (maximum) wins. Used for tag
//!   computation (`first`, `last`, `w1`, `w2`) and deterministic hooks.
//! * **test-and-set flags** packed as bytes.
//!
//! All loops use `compare_exchange_weak` with `Relaxed` failure ordering —
//! these are pure data-value races where any interleaving converges to the
//! same fixed point, so no happens-before edges beyond the final join are
//! required (the fork–join barrier publishes results).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Atomically set `*a = min(*a, v)`. Returns `true` if this call lowered the
/// value. Lock-free; `O(1)` expected under bounded contention.
#[inline]
pub fn write_min_u32(a: &AtomicU32, v: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v < cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically set `*a = max(*a, v)`. Returns `true` if this call raised the
/// value.
#[inline]
pub fn write_max_u32(a: &AtomicU32, v: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v > cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically set `*a = min(*a, v)` for 64-bit cells.
#[inline]
pub fn write_min_u64(a: &AtomicU64, v: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v < cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically set `*a = max(*a, v)` for 64-bit cells.
#[inline]
pub fn write_max_u64(a: &AtomicU64, v: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v > cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// One-shot test-and-set: returns `true` for exactly one caller.
#[inline]
pub fn try_claim(flag: &AtomicBool) -> bool {
    !flag.load(Ordering::Relaxed)
        && flag
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
}

/// View a `&mut [u32]` as `&[AtomicU32]` for a concurrent phase.
///
/// Sound because `AtomicU32` has the same size/alignment as `u32` and the
/// exclusive borrow guarantees no non-atomic aliases exist for the duration.
#[inline]
pub fn as_atomic_u32(xs: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: same layout, and the exclusive borrow rules out non-atomic
    // aliases for the returned reference's lifetime (see doc above).
    unsafe { &*(xs as *mut [u32] as *const [AtomicU32]) }
}

/// View a `&mut [u64]` as `&[AtomicU64]` for a concurrent phase.
#[inline]
pub fn as_atomic_u64(xs: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: same argument as `as_atomic_u32` above.
    unsafe { &*(xs as *mut [u64] as *const [AtomicU64]) }
}

/// A value padded to a cache line, to keep per-thread counters from
/// false-sharing. 64-byte lines cover x86-64 and most aarch64 parts.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    pub fn new(t: T) -> Self {
        Self(t)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_for;

    #[test]
    fn write_min_converges_to_global_min() {
        let cell = AtomicU32::new(u32::MAX);
        par_for(100_000, |i| {
            write_min_u32(&cell, crate::rng::hash64(i as u64) as u32 | 1);
        });
        let got = cell.load(Ordering::Relaxed);
        let expect = (0..100_000u64)
            .map(|i| crate::rng::hash64(i) as u32 | 1)
            .min()
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn write_max_converges_to_global_max() {
        let cell = AtomicU64::new(0);
        par_for(100_000, |i| {
            write_max_u64(&cell, crate::rng::hash64(i as u64 + 7));
        });
        let got = cell.load(Ordering::Relaxed);
        let expect = (0..100_000u64)
            .map(|i| crate::rng::hash64(i + 7))
            .max()
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn write_min_reports_improvement() {
        let cell = AtomicU32::new(10);
        assert!(!write_min_u32(&cell, 10));
        assert!(!write_min_u32(&cell, 11));
        assert!(write_min_u32(&cell, 9));
        assert_eq!(cell.load(Ordering::Relaxed), 9);
        assert!(write_max_u32(&cell, 12));
        assert!(!write_max_u32(&cell, 12));
    }

    #[test]
    fn try_claim_admits_exactly_one() {
        use std::sync::atomic::AtomicUsize;
        let flag = AtomicBool::new(false);
        let winners = AtomicUsize::new(0);
        par_for(10_000, |_| {
            if try_claim(&flag) {
                winners.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn atomic_view_roundtrip() {
        let mut xs = vec![5u32; 128];
        {
            let a = as_atomic_u32(&mut xs);
            par_for(128, |i| {
                a[i].store(i as u32, Ordering::Relaxed);
            });
        }
        assert!(xs.iter().enumerate().all(|(i, &x)| x == i as u32));

        let mut ys = vec![0u64; 16];
        {
            let a = as_atomic_u64(&mut ys);
            a[3].store(42, Ordering::Relaxed);
        }
        assert_eq!(ys[3], 42);
    }

    #[test]
    fn cache_padded_is_line_sized() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
        let mut c = CachePadded::new(1u64);
        *c += 1;
        assert_eq!(*c, 2);
    }
}
