//! Deterministic random number generation for parallel algorithms.
//!
//! Parallel algorithms must not draw from a shared sequential stream — that
//! would serialize them and make results schedule-dependent. Instead we use
//! *counter-based* randomness: a strong 64-bit mixer ([`hash64`], the
//! SplitMix64 finalizer) applied to `(seed, index)` pairs, so that
//!
//! * every parallel iteration derives its randomness independently, and
//! * every run with the same seed produces bit-identical output regardless
//!   of thread count or schedule.
//!
//! A small stateful generator ([`Rng`], xoshiro256\*\*) is provided for
//! sequential contexts such as test-case construction.

/// SplitMix64 finalizer: a high-quality 64-bit mixing permutation.
///
/// This is the mixer used to seed xoshiro generators and is an excellent
/// integer hash (passes SMHasher). `O(1)` work.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash two words into one; used for per-(seed, index) parallel randomness.
#[inline]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(a ^ hash64(b))
}

/// Map a hash to a uniform value in `[0, bound)`.
///
/// Uses the widening-multiply trick (Lemire); bias is ≤ 2⁻⁶⁴·bound, i.e.
/// negligible for every bound we use.
#[inline]
pub fn bounded(h: u64, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    ((h as u128 * bound as u128) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` from a hash (53 mantissa bits).
#[inline]
pub fn to_unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A sample from Exponential(β) derived from a hash, via inversion.
/// Used by the low-diameter decomposition's shifted start times.
#[inline]
pub fn exponential(h: u64, beta: f64) -> f64 {
    // Map to (0,1] to avoid ln(0).
    let u = 1.0 - to_unit_f64(h);
    -u.ln() / beta
}

/// Sequential xoshiro256\*\* generator, seeded from SplitMix64 as its
/// authors prescribe. Not `Sync`: parallel code should use [`hash64_pair`].
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            hash64(sm)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro must not start in the all-zero state.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Self { s }
    }

    /// Next uniform 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound = 0` yields 0.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        bounded(self.next_u64(), bound)
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0,1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        to_unit_f64(self.next_u64())
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fork an independent stream (for handing to a subtask deterministically).
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ hash64(stream))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_deterministic_and_spread() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(1), hash64(2));
        // Crude avalanche check: flipping one input bit flips ~half the
        // output bits on average.
        let mut total = 0u32;
        for i in 0..64 {
            total += (hash64(0) ^ hash64(1u64 << i)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "weak avalanche: {avg}");
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let b = 1 + r.next_below(1000);
            let v = bounded(r.next_u64(), b);
            assert!(v < b);
        }
        assert_eq!(bounded(u64::MAX, 0), 0);
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut counts = [0usize; 10];
        for i in 0..100_000u64 {
            counts[bounded(hash64(i), 10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn rng_streams_reproducible() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn exponential_is_positive_with_sane_mean() {
        let beta = 0.5;
        let n = 50_000u64;
        let mut sum = 0.0;
        for i in 0..n {
            let e = exponential(hash64(i), beta);
            assert!(e >= 0.0);
            sum += e;
        }
        let mean = sum / n as f64;
        // True mean is 1/beta = 2.
        assert!((1.9..2.1).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..1000).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(v, (0..1000).collect::<Vec<_>>(), "shuffle left identity");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Rng::new(99);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
