//! Chunked, autovectorization-friendly inner loops for the flat hot
//! primitives (scan, pack, counting-sort scatter, bitmap sweep).
//!
//! Stable rustc has no `std::simd`, so these kernels get their speed from
//! shapes LLVM vectorizes (or at least pipelines) well on its own:
//! fixed-size chunks ([`LANES`]-wide inner loops with no early exits),
//! branchless predicated compaction (`pos += (x != s) as usize` instead of
//! an `if`), multi-accumulator reductions, and `u64` bit tricks
//! (`count_ones` / `trailing_zeros`) for bitmap extraction. Every kernel
//! is compiled unconditionally — the `simd` cargo feature only switches
//! the *dispatch* inside `scan` / `pack` / `sort` — so the scalar-vs-SIMD
//! equivalence tests and the `primitives` microbench can compare both
//! paths in any build.
//!
//! All kernels are exact integer code: outputs are byte-identical to
//! their scalar counterparts, which is what lets the `simd` feature ride
//! under the determinism proptests unchanged.

/// Chunk width of the fixed-size inner loops. Eight 64-bit lanes is one
/// AVX-512 register or two AVX2 registers; it also bounds the
/// carry-recompute cost in the scan kernels.
pub const LANES: usize = 8;

/// Sum of a `usize` slice with four independent accumulators, breaking
/// the single-accumulator dependency chain so the adds pipeline.
#[inline]
pub fn sum_usize(a: &[usize]) -> usize {
    let mut acc = [0usize; 4];
    let mut chunks = a.chunks_exact(4);
    for c in chunks.by_ref() {
        acc[0] = acc[0].wrapping_add(c[0]);
        acc[1] = acc[1].wrapping_add(c[1]);
        acc[2] = acc[2].wrapping_add(c[2]);
        acc[3] = acc[3].wrapping_add(c[3]);
    }
    let mut tail = 0usize;
    for &x in chunks.remainder() {
        tail = tail.wrapping_add(x);
    }
    acc[0]
        .wrapping_add(acc[1])
        .wrapping_add(acc[2])
        .wrapping_add(acc[3])
        .wrapping_add(tail)
}

/// In-place **exclusive** `+`-scan seeded with `seed`; returns the total
/// (`seed + sum(a)`). One pass: each [`LANES`]-chunk is loaded into
/// registers, the running prefixes are formed there, and the chunk is
/// stored back — no second sweep over memory and no block-sum buffer.
#[inline]
pub fn exclusive_scan_usize(a: &mut [usize], seed: usize) -> usize {
    let mut acc = seed;
    let mut chunks = a.chunks_exact_mut(LANES);
    for c in chunks.by_ref() {
        let mut x = [0usize; LANES];
        x.copy_from_slice(c);
        c[0] = acc;
        let mut run = acc;
        for i in 1..LANES {
            run = run.wrapping_add(x[i - 1]);
            c[i] = run;
        }
        acc = run.wrapping_add(x[LANES - 1]);
    }
    for x in chunks.into_remainder() {
        let old = *x;
        *x = acc;
        acc = acc.wrapping_add(old);
    }
    acc
}

/// In-place **inclusive** `+`-scan over `u64` seeded with `seed`; returns
/// the total. Same register-resident chunk scheme as
/// [`exclusive_scan_usize`].
#[inline]
pub fn inclusive_scan_u64(a: &mut [u64], seed: u64) -> u64 {
    let mut acc = seed;
    let mut chunks = a.chunks_exact_mut(LANES);
    for c in chunks.by_ref() {
        let mut x = [0u64; LANES];
        x.copy_from_slice(c);
        let mut run = acc;
        for i in 0..LANES {
            run = run.wrapping_add(x[i]);
            c[i] = run;
        }
        acc = run;
    }
    for x in chunks.into_remainder() {
        acc = acc.wrapping_add(*x);
        *x = acc;
    }
    acc
}

/// Number of elements of `src` that differ from `sentinel` — the count
/// pass of a pack, as a branchless predicate sum LLVM can vectorize.
#[inline]
pub fn count_neq_u32(src: &[u32], sentinel: u32) -> usize {
    let mut acc = [0usize; 4];
    let mut chunks = src.chunks_exact(4);
    for c in chunks.by_ref() {
        acc[0] += (c[0] != sentinel) as usize;
        acc[1] += (c[1] != sentinel) as usize;
        acc[2] += (c[2] != sentinel) as usize;
        acc[3] += (c[3] != sentinel) as usize;
    }
    let mut tail = 0usize;
    for &x in chunks.remainder() {
        tail += (x != sentinel) as usize;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Width of the on-stack compaction buffer in [`compact_neq_u32`]: one
/// cache line's worth of chunks, small enough to stay in L1.
const COMPACT_CHUNK: usize = 64;

/// Branchless order-preserving compaction: copy every `src` element that
/// differs from `sentinel` into `out`, returning how many were written.
/// `out` must have room for at least [`count_neq_u32`] survivors.
///
/// Each chunk is compacted into an on-stack buffer with the predicated
/// `pos += (x != sentinel)` idiom — every lane writes, none branches — and
/// only the surviving prefix is copied out. The buffer absorbs the
/// one-slot overhang of predicated stores, so parallel callers writing
/// adjacent output ranges never touch a neighbor's slot.
#[inline]
pub fn compact_neq_u32(src: &[u32], sentinel: u32, out: &mut [u32]) -> usize {
    let mut pos = 0usize;
    let mut buf = [0u32; COMPACT_CHUNK];
    for chunk in src.chunks(COMPACT_CHUNK) {
        let mut c = 0usize;
        for &x in chunk {
            buf[c] = x;
            c += (x != sentinel) as usize;
        }
        out[pos..pos + c].copy_from_slice(&buf[..c]);
        pos += c;
    }
    pos
}

/// Total set bits in `words` — the count pass of a bitmap sweep.
#[inline]
pub fn popcount_words(words: &[u64]) -> usize {
    let mut acc = [0usize; 4];
    let mut chunks = words.chunks_exact(4);
    for c in chunks.by_ref() {
        acc[0] += c[0].count_ones() as usize;
        acc[1] += c[1].count_ones() as usize;
        acc[2] += c[2].count_ones() as usize;
        acc[3] += c[3].count_ones() as usize;
    }
    let mut tail = 0usize;
    for &w in chunks.remainder() {
        tail += w.count_ones() as usize;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Extract the set-bit indices of `words` (bit `i` of `words[w]` is index
/// `64 * w + i`, offset by `base`) into `out` in ascending order via
/// `trailing_zeros` / clear-lowest-bit, returning how many were written.
/// Skips zero words in one test each — the common case in sparse rounds.
/// `out` must have room for [`popcount_words`] indices.
#[inline]
pub fn expand_bits_u32(words: &[u64], base: u32, out: &mut [u32]) -> usize {
    let mut pos = 0usize;
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        let word_base = base + (w as u32) * 64;
        while bits != 0 {
            out[pos] = word_base + bits.trailing_zeros();
            pos += 1;
            bits &= bits - 1;
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// The adversarial lengths every kernel must survive: empty, single,
    /// around the lane width, around the compaction chunk, and large.
    fn lengths() -> Vec<usize> {
        vec![
            0,
            1,
            LANES - 1,
            LANES,
            LANES + 1,
            COMPACT_CHUNK - 1,
            COMPACT_CHUNK,
            COMPACT_CHUNK + 1,
            10_007,
        ]
    }

    #[test]
    fn sum_matches_sequential() {
        let mut r = Rng::new(1);
        for n in lengths() {
            let a: Vec<usize> = (0..n).map(|_| r.index(1000)).collect();
            assert_eq!(sum_usize(&a), a.iter().sum::<usize>(), "n={n}");
        }
    }

    #[test]
    fn exclusive_scan_matches_sequential() {
        let mut r = Rng::new(2);
        for n in lengths() {
            let a: Vec<usize> = (0..n).map(|_| r.index(100)).collect();
            for seed in [0usize, 17] {
                let mut got = a.clone();
                let total = exclusive_scan_usize(&mut got, seed);
                let mut want = a.clone();
                let mut acc = seed;
                for x in want.iter_mut() {
                    let old = *x;
                    *x = acc;
                    acc += old;
                }
                assert_eq!(total, acc, "n={n} seed={seed}");
                assert_eq!(got, want, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn inclusive_scan_matches_sequential() {
        let mut r = Rng::new(3);
        for n in lengths() {
            let a: Vec<u64> = (0..n).map(|_| r.next_u64() % 1000).collect();
            let mut got = a.clone();
            let total = inclusive_scan_u64(&mut got, 5);
            let mut want = a.clone();
            let mut acc = 5u64;
            for x in want.iter_mut() {
                acc += *x;
                *x = acc;
            }
            assert_eq!(total, acc, "n={n}");
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn count_and_compact_match_filter() {
        let mut r = Rng::new(4);
        const S: u32 = u32::MAX;
        for n in lengths() {
            let src: Vec<u32> = (0..n)
                .map(|_| {
                    if r.index(3) == 0 {
                        S
                    } else {
                        r.index(1 << 20) as u32
                    }
                })
                .collect();
            let want: Vec<u32> = src.iter().copied().filter(|&x| x != S).collect();
            assert_eq!(count_neq_u32(&src, S), want.len(), "n={n}");
            let mut out = vec![0u32; want.len()];
            let wrote = compact_neq_u32(&src, S, &mut out);
            assert_eq!(wrote, want.len(), "n={n}");
            assert_eq!(out, want, "n={n}");
        }
    }

    #[test]
    fn popcount_and_expand_match_bit_loop() {
        let mut r = Rng::new(5);
        for words in [0usize, 1, 2, 7, 129] {
            let ws: Vec<u64> = (0..words)
                .map(|_| if r.index(4) == 0 { 0 } else { r.next_u64() })
                .collect();
            let want: Vec<u32> = (0..words * 64)
                .filter(|&i| ws[i / 64] >> (i % 64) & 1 == 1)
                .map(|i| 100 + i as u32)
                .collect();
            assert_eq!(popcount_words(&ws), want.len(), "words={words}");
            let mut out = vec![0u32; want.len()];
            let wrote = expand_bits_u32(&ws, 100, &mut out);
            assert_eq!(wrote, want.len(), "words={words}");
            assert_eq!(out, want, "words={words}");
        }
    }
}
