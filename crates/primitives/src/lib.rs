//! # fastbcc-primitives
//!
//! Parallel primitives underpinning the FAST-BCC reproduction — a Rust
//! equivalent of the slice of ParlayLib that the paper's implementation uses.
//!
//! The paper analyses algorithms in the binary fork–join **work–span model**
//! (Blelloch et al., SPAA'20) executed by a randomized work-stealing
//! scheduler. Rayon provides exactly that execution model; everything *above*
//! raw fork–join — scans, packs, counting/radix sorts, semisort, sparse-table
//! RMQ, concurrent hash bags, priority CAS writes, deterministic parallel
//! RNG — is implemented here from scratch.
//!
//! Each module documents the work/span bounds of its primitive with the
//! citation used by the paper:
//!
//! | module | primitive | work | span |
//! |--------|-----------|------|------|
//! | [`scan`] | prefix sums | `O(n)` | `O(log n)` |
//! | [`reduce`] | reductions | `O(n)` | `O(log n)` |
//! | [`pack`] | filter / pack | `O(n)` | `O(log n)` |
//! | [`sort`] | counting & radix sort | `O(n + K)` | `O(log n)` |
//! | [`mergesort`] | comparison sort | `O(n log n)` | `O(log³ n)` |
//! | [`semisort`] | group-equal-keys | `O(n)` expected | `O(log n)` |
//! | [`rmq`] | sparse table build | `O(n log n)` | `O(log n)` |
//! | [`hashbag`] | concurrent bag insert | `O(1)` amortized | — |
//! | [`worker_local`] | per-worker scratch arenas | `O(1)` access | — |
//! | [`edgemap`] | sparse/dense frontier expansion | `O(frontier degree)` | `O(log n)` |
//! | [`kernels`] | chunked flat loops (scan/pack/popcount) | `O(n)` | sequential building block |
//!
//! Spans are quoted under the usual assumption of unit-cost atomics
//! (compare-and-swap), as in Section 2 of the paper.

pub mod atomics;
pub mod edgemap;
pub mod hashbag;
pub mod kernels;
pub mod mergesort;
pub mod pack;
pub mod par;
pub mod reduce;
pub mod rmq;
pub mod rng;
pub mod scan;
pub mod semisort;
pub mod slice;
pub mod sort;
pub mod worker_local;

pub use edgemap::{CsrView, EdgeMapMode, EdgeMapScratch, FrontierOp, RawCsr};
pub use par::{
    deque_max_depth, max_workers, num_threads, pool_spawns, steal_count, with_threads, worker_index,
};
pub use slice::UnsafeSlice;
pub use worker_local::WorkerLocal;
