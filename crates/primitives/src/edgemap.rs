//! Pre-counted frontier expansion (edgeMap) with sparse↔dense traversal.
//!
//! Every frontier phase in this workspace (LDD rounds, BFS levels, CC
//! union staging) shares one shape: visit the out-edges of a vertex
//! subset, try to *claim* each target exactly once, and collect the
//! winners as the next frontier. The per-worker-arena implementation of
//! that shape reserved `O(n)` per possible worker — an `O(n · P)`
//! envelope — and balanced work by *vertex* blocks, serializing whole
//! blocks behind one high-degree vertex. This module is the
//! Ligra/GBBS-style replacement [SB13; DBS21]:
//!
//! * **sparse** ([`edge_map`] below the density threshold) — per-frontier
//!   -vertex degrees are prefix-summed ([`crate::scan`]) so every arc owns
//!   a pre-counted slot of **one shared output buffer**; workers process
//!   equal *arc-count* blocks (splitting inside a vertex's neighbor list
//!   when needed), write the claimed target or a sentinel into each slot,
//!   and a pack compacts the winners into the next frontier. No
//!   per-worker staging, no worker-id merge, `O(frontier degree sum)`
//!   space;
//! * **dense** (past the two-part threshold of [`DENSE_DENOM`]: enough
//!   frontier arc mass *and* few enough unclaimed vertices) — the
//!   frontier becomes a bitmap and the round runs *bottom-up*: every
//!   unclaimed vertex scans its own neighbor list for a frontier member
//!   and claims itself without any CAS (each vertex is examined by
//!   exactly one task), breaking at the first hit — Beamer's direction
//!   optimization, which also removes the CAS storm huge frontiers
//!   suffer top-down.
//!
//! The module is graph-representation-agnostic: callers hand any
//! [`CsrView`] — the raw-slice adapter [`RawCsr`] for flat CSR arrays, or
//! a compressed/memory-mapped backend from the graph crate above this
//! one. Neighbor access is *streamed* through the view's per-block decode
//! callbacks (never random-indexed into a flat arc array), so a backend
//! whose adjacency is varint/delta-encoded serves the hot loops without
//! materializing a vertex's full neighbor list. Vertex ids must be
//! `< u32::MAX`; `u32::MAX` is the empty-slot sentinel.
//!
//! All buffers live in an [`EdgeMapScratch`] whose capacities are
//! deterministic in `(n, m)` alone — never in the parallel schedule or
//! worker ceiling — so warm solves through a pooled scratch stay
//! allocation-free at any thread budget.

use crate::atomics::as_atomic_u64;
use crate::pack::{pack_bits_into, pack_neq_into};
use crate::par::{num_blocks, num_threads, par_for, par_for_grain};
use crate::scan::prefix_sums;
use crate::slice::{reserve_to, reuse_uninit, UnsafeSlice};

/// Empty-slot sentinel of the sparse output buffer (also the "unvisited"
/// convention of every consumer in this workspace).
pub const EMPTY: u32 = u32::MAX;

/// A read-only CSR-shaped graph, as the frontier layer sees it: vertex
/// and arc counts, the cumulative arc offset of every vertex (for
/// arc-balanced block splitting), and *streamed* neighbor decode.
///
/// This is the low-level contract the compressed and memory-mapped
/// backends implement; `fastbcc_graph::GraphView` extends it with
/// graph-level conveniences. Neighbor lists must be visited in ascending
/// local-index order, and every implementation must agree with
/// [`arc_start`](Self::arc_start) on degrees. Methods are generic (the
/// trait is not object-safe) so the hot loops monomorphize per backend.
pub trait CsrView: Sync {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// Number of directed arcs.
    fn m_arcs(&self) -> usize;

    /// Cumulative arc offset of vertex `v`, defined for `0..=n` with
    /// `arc_start(0) == 0` and `arc_start(n) == m_arcs()`. Monotone.
    fn arc_start(&self, v: usize) -> usize;

    /// Degree of `v`.
    #[inline]
    fn degree(&self, v: u32) -> usize {
        self.arc_start(v as usize + 1) - self.arc_start(v as usize)
    }

    /// Visit neighbors of `v` at local indices `lo..hi` (ascending),
    /// calling `f(local_index, neighbor)`. `hi ≤ degree(v)`. Block-coded
    /// backends decode only the blocks covering the range.
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, f: F);

    /// Visit all neighbors of `v` in ascending local-index order until
    /// `f` returns `false` (the dense bottom-up early break).
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, f: F);

    /// Visit every neighbor of `v` as `f(neighbor)`.
    #[inline]
    fn for_neighbors<F: FnMut(u32)>(&self, v: u32, mut f: F) {
        self.neighbors_in(v, 0, self.degree(v), |_, w| f(w));
    }
}

/// The flat raw-slice [`CsrView`]: an `offsets` array of length `n+1`
/// and a flat `arcs` array. The adapter the in-RAM CSR backend (and the
/// unit tests of this module) go through; neighbor "decode" is a slice
/// scan, so the streamed contract costs nothing here.
#[derive(Clone, Copy)]
pub struct RawCsr<'a> {
    offsets: &'a [usize],
    arcs: &'a [u32],
}

impl<'a> RawCsr<'a> {
    /// Wrap raw CSR slices. `offsets` must have length `n+1`, start at 0,
    /// be monotone, and end at `arcs.len()` (debug-asserted).
    #[inline]
    pub fn new(offsets: &'a [usize], arcs: &'a [u32]) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), arcs.len());
        Self { offsets, arcs }
    }
}

impl CsrView for RawCsr<'_> {
    #[inline]
    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn m_arcs(&self) -> usize {
        self.arcs.len()
    }

    #[inline]
    fn arc_start(&self, v: usize) -> usize {
        self.offsets[v]
    }

    #[inline]
    fn neighbors_in<F: FnMut(usize, u32)>(&self, v: u32, lo: usize, hi: usize, mut f: F) {
        let base = self.offsets[v as usize];
        for (j, &w) in self.arcs[base + lo..base + hi].iter().enumerate() {
            f(lo + j, w);
        }
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(&self, v: u32, mut f: F) {
        for &w in &self.arcs[self.offsets[v as usize]..self.offsets[v as usize + 1]] {
            if !f(w) {
                break;
            }
        }
    }
}

/// Denominator of the sparse→dense switch. A round goes dense when
/// **both** hold:
///
/// 1. `frontier degree sum + |frontier| > m / DENSE_DENOM` (Ligra's
///    edge-mass threshold), and
/// 2. `remaining unclaimed vertices ≤ frontier degree sum + |frontier|`
///    (Beamer's second direction-switch condition: the frontier can
///    plausibly swallow the remainder this round).
///
/// Condition 2 is what keeps high-diameter traversals top-down: an LDD
/// injection wave on a grid or chain can carry `> m/20` arc mass while
/// covering only a few percent of the graph per round — a bottom-up
/// round there pays its `O(n)` bitmap/pack floor many times over for no
/// gain. It also bounds the sparse slot buffer: a sparse round under
/// [`EdgeMapMode::Auto`] has degree sum ≤ `m / DENSE_DENOM` (condition 1
/// failed) or < `remaining ≤ n` (condition 2 failed), so the shared
/// output never exceeds `max(n, m / DENSE_DENOM)` slots.
pub const DENSE_DENOM: usize = 20;

/// Arc-count grain of one sparse expansion block.
const SPARSE_GRAIN: usize = 512;

/// Weight grain (`degree + 1` per vertex) of one dense bottom-up block.
const DENSE_GRAIN: usize = 1024;

/// Traversal-direction policy for [`edge_map`]. `Auto` applies the
/// [`DENSE_DENOM`] threshold; the forced modes exist for tests and for
/// callers that know their frontier shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EdgeMapMode {
    /// Direction optimization: sparse below the threshold, dense above.
    #[default]
    Auto,
    /// Always top-down (pre-counted slots + pack). Forcing sparse on a
    /// frontier past the threshold may grow the slot buffer beyond its
    /// deterministic `Auto` envelope.
    Sparse,
    /// Always bottom-up (bitmap + full vertex scan).
    Dense,
}

/// One frontier phase's claim protocol. `edge_map` guarantees every
/// claimed vertex enters the next frontier exactly once; the op
/// guarantees claims are exclusive.
pub trait FrontierOp: Sync {
    /// Attempt to claim `w` through arc `(u, w)` in a *racy* context:
    /// several arcs may target `w` concurrently, and exactly one call per
    /// `w` may ever return `true` (use a CAS). Filtering of the arc
    /// itself (subgraph predicates) belongs here too.
    fn try_claim(&self, u: u32, w: u32) -> bool;

    /// Claim `w` through arc `(u, w)` when `w` is *uniquely owned* by the
    /// calling task (the dense bottom-up round hands each vertex to one
    /// task): no competing claimer exists, so no CAS is required. Must
    /// agree with [`try_claim`](Self::try_claim) on what is claimable.
    fn claim_unique(&self, u: u32, w: u32) -> bool {
        self.try_claim(u, w)
    }

    /// Is `w` still claimable at all? Lets the dense round skip settled
    /// vertices before touching their neighbor lists. Must be `false`
    /// once a claim on `w` succeeded.
    fn wants(&self, w: u32) -> bool;
}

/// Pooled buffers of the frontier layer: the degree/offset scratch, the
/// shared pre-counted slot buffer, and the two dense bitmaps. Capacities
/// are functions of `(n, m)` only — see [`EdgeMapScratch::reserve`].
#[derive(Default)]
pub struct EdgeMapScratch {
    /// Per-frontier-vertex degrees, prefix-summed in place into the
    /// exclusive slot offsets of the current round.
    deg: Vec<usize>,
    /// The shared output buffer: one slot per frontier arc, holding the
    /// claimed target or [`EMPTY`].
    slots: Vec<u32>,
    /// Dense rounds: bitmap of the current frontier.
    bits: Vec<u64>,
    /// Dense rounds: bitmap of the vertices claimed this round.
    claimed: Vec<u64>,
    /// Number of dense (bottom-up) rounds run through this scratch since
    /// construction or [`reset_stats`](Self::reset_stats).
    dense_rounds: usize,
}

/// Slot capacity that [`EdgeMapMode::Auto`] can never exceed: a sparse
/// round either failed the edge-mass threshold (`degree sum ≤
/// m / DENSE_DENOM`) or the swallow condition (`degree sum < remaining ≤
/// n`) — see [`DENSE_DENOM`].
pub fn sparse_slot_capacity(n: usize, m_arcs: usize) -> usize {
    n.max(m_arcs / DENSE_DENOM)
}

impl EdgeMapScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve every buffer for an `n`-vertex / `m_arcs`-arc graph:
    /// `O(n)` degree slots, `max(n, m/`[`DENSE_DENOM`]`)` output slots,
    /// and two `n`-bit maps. Deterministic in `(n, m_arcs)`, so repeated
    /// solves of one input keep `heap_bytes` fixed.
    pub fn reserve(&mut self, n: usize, m_arcs: usize) {
        reserve_to(&mut self.deg, n);
        reserve_to(&mut self.slots, sparse_slot_capacity(n, m_arcs));
        let words = n.div_ceil(64);
        reserve_to(&mut self.bits, words);
        reserve_to(&mut self.claimed, words);
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        8 * self.deg.capacity()
            + 4 * self.slots.capacity()
            + 8 * (self.bits.capacity() + self.claimed.capacity())
    }

    /// Dense (bottom-up) rounds run through this scratch so far.
    pub fn dense_rounds(&self) -> usize {
        self.dense_rounds
    }

    /// Zero the [`dense_rounds`](Self::dense_rounds) counter.
    pub fn reset_stats(&mut self) {
        self.dense_rounds = 0;
    }
}

/// Expand `frontier` one hop over the graph view `g`: offer every
/// out-arc to `op`, collect the claimed targets into `next` (cleared
/// first; order unspecified between blocks), and return whether the
/// round ran dense. `frontier` entries are vertex ids of `g`.
/// `remaining` is the caller's count of still-claimable vertices; an
/// upper bound is fine — it only steers the direction switch, never
/// correctness, and it is clamped to the vertex count so the `Auto`
/// slot-capacity envelope holds for any value.
pub fn edge_map<G: CsrView, Op: FrontierOp>(
    g: &G,
    frontier: &[u32],
    remaining: usize,
    op: &Op,
    mode: EdgeMapMode,
    scratch: &mut EdgeMapScratch,
    next: &mut Vec<u32>,
) -> bool {
    next.clear();
    let k = frontier.len();
    if k == 0 {
        return false;
    }
    // Clamp the hint to the vertex count: the `Auto` slot-capacity
    // envelope (`sparse_slot_capacity`) relies on `remaining ≤ n` in the
    // swallow condition, so an overshooting caller must not be able to
    // pin dense-worthy rounds sparse and grow the shared buffer past it.
    let remaining = remaining.min(g.n());
    // A round that fits in one block would run sequentially either way,
    // and under a 1-worker budget *every* round does: claim straight
    // into `next` and skip the count–scan–scatter–pack machinery (the
    // dominant regime on high-diameter graphs, whose rounds are tiny).
    // The decision reads only the budget and the frontier's degree sum,
    // so the claimed *set* — and every `Auto` mode decision — is
    // identical to the pre-counted path's.
    let single = num_threads() <= 1;
    if single || k <= SPARSE_GRAIN {
        let total: usize = frontier.iter().map(|&v| g.degree(v)).sum();
        let dense = is_dense(mode, total, k, g.m_arcs(), remaining);
        if dense {
            scratch.dense_rounds += 1;
            edge_map_dense(g, frontier, op, scratch, next);
            return true;
        }
        if single || total <= SPARSE_GRAIN {
            for &u in frontier {
                g.for_neighbors(u, |w| {
                    if op.try_claim(u, w) {
                        next.push(w);
                    }
                });
            }
            return false;
        }
        edge_map_sparse_counted(g, frontier, remaining, op, mode, scratch, next);
        return false;
    }

    edge_map_sparse_counted(g, frontier, remaining, op, mode, scratch, next)
}

/// The `Auto` density rule (see [`DENSE_DENOM`]); `total > 0` keeps
/// edgeless frontiers (and empty graphs) on the trivial sparse path.
fn is_dense(mode: EdgeMapMode, total: usize, k: usize, m_arcs: usize, remaining: usize) -> bool {
    match mode {
        EdgeMapMode::Sparse => false,
        EdgeMapMode::Dense => true,
        EdgeMapMode::Auto => {
            total > 0 && (total + k) * DENSE_DENOM > m_arcs && remaining <= total + k
        }
    }
}

/// The full pre-counted sparse path: degree scatter, prefix sum, then
/// either the dense sweep (if the threshold says so) or the slot-buffer
/// expansion. Returns whether the round ran dense.
fn edge_map_sparse_counted<G: CsrView, Op: FrontierOp>(
    g: &G,
    frontier: &[u32],
    remaining: usize,
    op: &Op,
    mode: EdgeMapMode,
    scratch: &mut EdgeMapScratch,
    next: &mut Vec<u32>,
) -> bool {
    let k = frontier.len();
    // Per-frontier-vertex degrees, then exclusive slot offsets.
    // SAFETY: every slot in 0..k is written by the scatter below.
    unsafe { reuse_uninit(&mut scratch.deg, k) };
    {
        let view = UnsafeSlice::new(scratch.deg.as_mut_slice());
        par_for(k, |i| {
            // SAFETY: disjoint writes.
            unsafe { view.write(i, g.degree(frontier[i])) };
        });
    }
    let total = prefix_sums(&mut scratch.deg);
    // Callers on the small-round fast path have already ruled out dense
    // with the same `(mode, total, k)` inputs, so re-deciding here is
    // equivalent for both entry orders.
    let dense = is_dense(mode, total, k, g.m_arcs(), remaining);
    if dense {
        scratch.dense_rounds += 1;
        edge_map_dense(g, frontier, op, scratch, next);
    } else {
        edge_map_sparse(g, frontier, total, op, scratch, next);
    }
    dense
}

/// Top-down round: claims land in pre-counted slots of the shared
/// buffer, then a pack compacts the winners. Each block streams the
/// covered sub-range of every frontier vertex's neighbor list through
/// [`CsrView::neighbors_in`] — the degree balancing splits *inside* a
/// high-degree vertex's list, and block-coded backends decode only the
/// blocks the sub-range touches.
fn edge_map_sparse<G: CsrView, Op: FrontierOp>(
    g: &G,
    frontier: &[u32],
    total: usize,
    op: &Op,
    scratch: &mut EdgeMapScratch,
    next: &mut Vec<u32>,
) {
    let k = frontier.len();
    // `Auto` stays within the reserved envelope; forced-sparse rounds may
    // grow here (documented on `EdgeMapMode::Sparse`).
    reserve_to(&mut scratch.slots, total);
    // SAFETY: every slot in 0..total is written exactly once below: the
    // blocks partition the slot range, and each slot belongs to exactly
    // one (frontier vertex, arc) pair.
    unsafe { reuse_uninit(&mut scratch.slots, total) };
    {
        let slot_off: &[usize] = &scratch.deg;
        let view = UnsafeSlice::new(scratch.slots.as_mut_slice());
        let blocks = num_blocks(total, SPARSE_GRAIN);
        par_for_grain(blocks, 1, |b| {
            let lo = b * total / blocks;
            let hi = (b + 1) * total / blocks;
            if lo >= hi {
                return;
            }
            // Last frontier index whose slot offset is ≤ lo: the vertex
            // whose arc range covers the block start (blocks split
            // *inside* a high-degree vertex's range — this is the degree
            // balancing).
            let mut i = slot_off[..k].partition_point(|&o| o <= lo) - 1;
            let mut slot = lo;
            while slot < hi {
                let u = frontier[i];
                let u_hi = if i + 1 < k { slot_off[i + 1] } else { total };
                let stop = hi.min(u_hi);
                let base = slot_off[i];
                g.neighbors_in(u, slot - base, stop - base, |j, w| {
                    let s = base + j;
                    let claimed = op.try_claim(u, w);
                    // SAFETY: slot `s` belongs to this block alone.
                    unsafe { view.write(s, if claimed { w } else { EMPTY }) };
                });
                slot = stop;
                i += 1;
            }
        });
    }
    pack_neq_into(&scratch.slots[..total], EMPTY, next);
}

/// Bottom-up round: every still-unclaimed vertex scans its own neighbor
/// list for a frontier member (bitmap test) and claims itself CAS-free,
/// breaking at the first hit. Blocks are balanced by `degree + 1` weight.
fn edge_map_dense<G: CsrView, Op: FrontierOp>(
    g: &G,
    frontier: &[u32],
    op: &Op,
    scratch: &mut EdgeMapScratch,
    next: &mut Vec<u32>,
) {
    let n = g.n();
    let words = n.div_ceil(64);
    scratch.bits.clear();
    scratch.bits.resize(words, 0);
    scratch.claimed.clear();
    scratch.claimed.resize(words, 0);
    {
        let bits = as_atomic_u64(&mut scratch.bits);
        par_for(frontier.len(), |i| {
            let v = frontier[i] as usize;
            bits[v / 64].fetch_or(1 << (v % 64), std::sync::atomic::Ordering::Relaxed);
        });
    }
    {
        let bits: &[u64] = &scratch.bits;
        let claimed = as_atomic_u64(&mut scratch.claimed);
        // Weight-balanced vertex blocks: cumulative `arc_start(v) + v` is
        // strictly increasing, so block boundaries come from one binary
        // search each. A vertex is never split (its scan breaks early),
        // but no block carries more than ~1/B of the total weight.
        let weight = g.m_arcs() + n;
        let blocks = num_blocks(weight, DENSE_GRAIN);
        par_for_grain(blocks, 1, |b| {
            let v_lo = vertex_at_weight(g, b * weight / blocks);
            let v_hi = vertex_at_weight(g, (b + 1) * weight / blocks);
            for w in v_lo..v_hi {
                if !op.wants(w as u32) {
                    continue;
                }
                g.neighbors_while(w as u32, |u| {
                    let in_frontier = bits[u as usize / 64] >> (u as usize % 64) & 1 == 1;
                    if in_frontier && op.claim_unique(u, w as u32) {
                        claimed[w / 64]
                            .fetch_or(1 << (w % 64), std::sync::atomic::Ordering::Relaxed);
                        return false;
                    }
                    true
                });
            }
        });
    }
    pack_bits_into(&scratch.claimed, n, next);
}

/// Smallest `v` with `arc_start(v) + v >= t` (the dense block boundary
/// for weight target `t`).
fn vertex_at_weight<G: CsrView>(g: &G, t: usize) -> usize {
    let (mut lo, mut hi) = (0usize, g.n());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if g.arc_start(mid) + mid < t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Largest `v` with `arc_start(v) <= a` (the vertex whose neighbor list
/// covers flat arc index `a` — zero-degree vertices may follow it).
fn vertex_at_arc<G: CsrView>(g: &G, a: usize) -> usize {
    let (mut lo, mut hi) = (0usize, g.n() + 1);
    // Invariant: arc_start(lo - 1) <= a < arc_start(hi) conceptually;
    // find the partition point of `arc_start(v) <= a`, then step back.
    while lo < hi {
        let mid = (lo + hi) / 2;
        if g.arc_start(mid) <= a {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo - 1
}

/// Visit every arc `(u, w)` of the graph view in parallel, balanced by
/// *arc count*: blocks split inside a vertex's neighbor list, so one
/// high-degree vertex never serializes a block (the skew the old
/// fixed-vertex-count grains suffered). `grain` is the minimum arcs per
/// block. Arc order within a block is ascending; block-to-block ordering
/// is the scheduler's.
pub fn for_arcs_balanced<G, F>(g: &G, grain: usize, f: F)
where
    G: CsrView,
    F: Fn(u32, u32) + Sync,
{
    let m = g.m_arcs();
    if m == 0 {
        return;
    }
    let blocks = num_blocks(m, grain);
    par_for_grain(blocks, 1, |b| {
        let lo = b * m / blocks;
        let hi = (b + 1) * m / blocks;
        if lo >= hi {
            return;
        }
        // Last vertex whose arc range starts at or before `lo`.
        let mut u = vertex_at_arc(g, lo);
        let mut pos = lo;
        while pos < hi {
            let u_start = g.arc_start(u);
            let u_end = g.arc_start(u + 1);
            if u_end <= pos {
                // Zero-degree vertex (or one fully before the block).
                u += 1;
                continue;
            }
            let stop = hi.min(u_end);
            g.neighbors_in(u as u32, pos - u_start, stop - u_start, |_, w| {
                f(u as u32, w);
            });
            pos = stop;
            u += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Build a symmetric CSR from an undirected edge list.
    fn csr(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut offsets = vec![0usize; n + 1];
        let mut arcs = Vec::new();
        for v in 0..n {
            adj[v].sort_unstable();
            arcs.extend_from_slice(&adj[v]);
            offsets[v + 1] = arcs.len();
        }
        (offsets, arcs)
    }

    /// The canonical visit op: claim-by-CAS into a shared ownership array.
    struct Visit<'a> {
        owner: &'a [AtomicU32],
    }

    impl FrontierOp for Visit<'_> {
        fn try_claim(&self, u: u32, w: u32) -> bool {
            self.owner[w as usize]
                .compare_exchange(EMPTY, u, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
        fn claim_unique(&self, u: u32, w: u32) -> bool {
            if self.owner[w as usize].load(Ordering::Relaxed) != EMPTY {
                return false;
            }
            self.owner[w as usize].store(u, Ordering::Relaxed);
            true
        }
        fn wants(&self, w: u32) -> bool {
            self.owner[w as usize].load(Ordering::Relaxed) == EMPTY
        }
    }

    /// Full BFS from vertex 0 in the given mode; returns per-level
    /// frontiers (sorted) until exhaustion.
    fn bfs_levels(offsets: &[usize], arcs: &[u32], n: usize, mode: EdgeMapMode) -> Vec<Vec<u32>> {
        let g = RawCsr::new(offsets, arcs);
        let owner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(EMPTY)).collect();
        owner[0].store(0, Ordering::Relaxed);
        let op = Visit { owner: &owner };
        let mut scratch = EdgeMapScratch::new();
        let mut frontier = vec![0u32];
        let mut next = Vec::new();
        let mut out = Vec::new();
        let mut visited = 1usize;
        while !frontier.is_empty() {
            out.push({
                let mut f = frontier.clone();
                f.sort_unstable();
                f
            });
            edge_map(
                &g,
                &frontier,
                n - visited,
                &op,
                mode,
                &mut scratch,
                &mut next,
            );
            std::mem::swap(&mut frontier, &mut next);
            visited += frontier.len();
        }
        out
    }

    #[test]
    fn sparse_and_dense_agree_on_levels() {
        // A graph with skew: a hub joined to a long path plus extra rungs.
        let mut edges = vec![];
        let n = 500u32;
        for v in 1..n {
            edges.push((0, v)); // hub
        }
        for v in 1..n - 1 {
            edges.push((v, v + 1)); // path among the leaves
        }
        let (offsets, arcs) = csr(n as usize, &edges);
        let sparse = bfs_levels(&offsets, &arcs, n as usize, EdgeMapMode::Sparse);
        let dense = bfs_levels(&offsets, &arcs, n as usize, EdgeMapMode::Dense);
        let auto = bfs_levels(&offsets, &arcs, n as usize, EdgeMapMode::Auto);
        assert_eq!(sparse, dense);
        assert_eq!(sparse, auto);
        assert_eq!(sparse.len(), 2, "hub graph has two levels");
        assert_eq!(sparse[1].len(), n as usize - 1);
    }

    #[test]
    fn path_graph_levels_in_every_mode() {
        let n = 64usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let (offsets, arcs) = csr(n, &edges);
        for mode in [EdgeMapMode::Auto, EdgeMapMode::Sparse, EdgeMapMode::Dense] {
            let levels = bfs_levels(&offsets, &arcs, n, mode);
            assert_eq!(levels.len(), n, "{mode:?}");
            for (d, level) in levels.iter().enumerate() {
                assert_eq!(level, &vec![d as u32], "{mode:?} level {d}");
            }
        }
    }

    #[test]
    fn zero_degree_frontier_vertices_are_harmless() {
        let (offsets, arcs) = csr(6, &[(4, 5)]);
        let g = RawCsr::new(&offsets, &arcs);
        let owner: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(EMPTY)).collect();
        for v in [0, 1, 2, 3, 4] {
            owner[v].store(9, Ordering::Relaxed); // frontier members settled
        }
        let op = Visit { owner: &owner };
        let mut scratch = EdgeMapScratch::new();
        let mut next = Vec::new();
        // Mostly isolated vertices plus one with an edge.
        for mode in [EdgeMapMode::Sparse, EdgeMapMode::Dense] {
            owner[5].store(EMPTY, Ordering::Relaxed);
            edge_map(&g, &[0, 1, 2, 3, 4], 1, &op, mode, &mut scratch, &mut next);
            assert_eq!(next, vec![5], "{mode:?}");
        }
    }

    #[test]
    fn empty_frontier_and_empty_graph() {
        let (offsets, arcs) = csr(4, &[]);
        let g = RawCsr::new(&offsets, &arcs);
        let owner: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(EMPTY)).collect();
        let op = Visit { owner: &owner };
        let mut scratch = EdgeMapScratch::new();
        let mut next = vec![7u32];
        let dense = edge_map(&g, &[], 4, &op, EdgeMapMode::Auto, &mut scratch, &mut next);
        assert!(!dense);
        assert!(next.is_empty(), "next must be cleared");
        // Non-empty frontier over an edgeless graph stays sparse & empty.
        let dense = edge_map(
            &g,
            &[0, 1, 2, 3],
            4,
            &op,
            EdgeMapMode::Auto,
            &mut scratch,
            &mut next,
        );
        assert!(!dense, "edgeless graphs must not trigger a dense scan");
        assert!(next.is_empty());
    }

    #[test]
    fn auto_goes_dense_past_the_threshold() {
        // Star: the hub's degree sum is half of all arcs — far past m/20.
        let n = 40u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let (offsets, arcs) = csr(n as usize, &edges);
        let g = RawCsr::new(&offsets, &arcs);
        let owner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(EMPTY)).collect();
        owner[0].store(0, Ordering::Relaxed);
        let op = Visit { owner: &owner };
        let mut scratch = EdgeMapScratch::new();
        let mut next = Vec::new();
        let dense = edge_map(
            &g,
            &[0],
            n as usize - 1,
            &op,
            EdgeMapMode::Auto,
            &mut scratch,
            &mut next,
        );
        assert!(dense);
        assert_eq!(scratch.dense_rounds(), 1);
        let mut got = next.clone();
        got.sort_unstable();
        assert_eq!(got, (1..n).collect::<Vec<_>>());
    }

    #[test]
    fn claims_are_exclusive_under_contention() {
        // Two frontier hubs share every leaf; each leaf must be claimed
        // exactly once.
        let leaves = 3000u32;
        let mut edges = vec![];
        for v in 2..leaves + 2 {
            edges.push((0, v));
            edges.push((1, v));
        }
        let (offsets, arcs) = csr(leaves as usize + 2, &edges);
        let g = RawCsr::new(&offsets, &arcs);
        let owner: Vec<AtomicU32> = (0..leaves + 2).map(|_| AtomicU32::new(EMPTY)).collect();
        owner[0].store(0, Ordering::Relaxed);
        owner[1].store(1, Ordering::Relaxed);
        let op = Visit { owner: &owner };
        let mut scratch = EdgeMapScratch::new();
        let mut next = Vec::new();
        edge_map(
            &g,
            &[0, 1],
            leaves as usize,
            &op,
            EdgeMapMode::Sparse,
            &mut scratch,
            &mut next,
        );
        let mut got = next.clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), next.len(), "a leaf entered the frontier twice");
        assert_eq!(next.len(), leaves as usize);
    }

    #[test]
    fn scratch_capacity_is_deterministic_and_bounded() {
        let n = 200usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let (offsets, arcs) = csr(n, &edges);
        let g = RawCsr::new(&offsets, &arcs);
        let mut scratch = EdgeMapScratch::new();
        scratch.reserve(n, arcs.len());
        let bytes = scratch.heap_bytes();
        assert!(bytes >= 12 * n, "reserve must cover deg + slots");
        // Running rounds within the Auto envelope must not grow anything.
        let owner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(EMPTY)).collect();
        owner[0].store(0, Ordering::Relaxed);
        let op = Visit { owner: &owner };
        let (mut frontier, mut next) = (vec![0u32], Vec::new());
        let mut visited = 1usize;
        while !frontier.is_empty() {
            edge_map(
                &g,
                &frontier,
                n - visited,
                &op,
                EdgeMapMode::Auto,
                &mut scratch,
                &mut next,
            );
            std::mem::swap(&mut frontier, &mut next);
            visited += frontier.len();
        }
        assert_eq!(
            scratch.heap_bytes(),
            bytes,
            "Auto round outgrew the reserve"
        );
    }

    #[test]
    fn for_arcs_balanced_visits_every_arc_once() {
        // Heavy skew: vertex 0 has degree 5000, everyone else a handful.
        let mut edges = vec![];
        for v in 1..5001u32 {
            edges.push((0, v));
        }
        for v in 1..5000u32 {
            edges.push((v, v + 1));
        }
        let (offsets, arcs) = csr(5001, &edges);
        let g = RawCsr::new(&offsets, &arcs);
        let seen: Vec<AtomicU32> = (0..arcs.len()).map(|_| AtomicU32::new(0)).collect();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        for_arcs_balanced(&g, 64, |u, w| {
            // Identify the arc by position: binary-search u's range.
            let range = &arcs[offsets[u as usize]..offsets[u as usize + 1]];
            let idx = offsets[u as usize] + range.partition_point(|&x| x < w);
            seen[idx].fetch_add(1, Ordering::Relaxed);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), arcs.len());
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_arcs_balanced_empty_graph() {
        let (offsets, arcs) = csr(5, &[]);
        let g = RawCsr::new(&offsets, &arcs);
        for_arcs_balanced(&g, 16, |_, _| panic!("no arcs to visit"));
    }

    #[test]
    fn for_arcs_balanced_skips_zero_degree_runs() {
        // Isolated vertices interleaved with connected ones exercise the
        // zero-degree skip inside a block.
        let (offsets, arcs) = csr(9, &[(0, 8), (3, 8), (8, 4)]);
        let g = RawCsr::new(&offsets, &arcs);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        for_arcs_balanced(&g, 1, |u, w| {
            assert!(g.degree(u) > 0 && g.degree(w) > 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), arcs.len());
    }

    #[test]
    fn vertex_at_weight_boundaries_partition() {
        let (offsets, arcs) = csr(6, &[(0, 1), (0, 2), (0, 3), (4, 5)]);
        let g = RawCsr::new(&offsets, &arcs);
        let n = 6;
        let weight = offsets[n] + n;
        let mut prev = 0;
        for b in 0..=8usize {
            let v = vertex_at_weight(&g, b * weight / 8);
            assert!(v >= prev && v <= n);
            prev = v;
        }
        assert_eq!(vertex_at_weight(&g, weight), n);
        assert_eq!(vertex_at_weight(&g, 0), 0);
    }
}
