//! Parallel reductions: `O(n)` work, `O(log n)` span.
//!
//! Implemented by blocked divide-and-conquer over `rayon::join` so the
//! recursion tree is the balanced binary tree the work–span analysis
//! assumes, with leaves coarsened to [`par::DEFAULT_GRAIN`](crate::par::DEFAULT_GRAIN).

use crate::par::DEFAULT_GRAIN;

/// Generic associative reduction of `f(i)` over `0..n` with identity `id`.
pub fn reduce_with<T, F, Op>(n: usize, id: T, f: F, op: Op) -> T
where
    T: Send + Sync + Copy,
    F: Fn(usize) -> T + Sync,
    Op: Fn(T, T) -> T + Sync + Send + Copy,
{
    fn go<T, F, Op>(lo: usize, hi: usize, id: T, f: &F, op: Op) -> T
    where
        T: Send + Sync + Copy,
        F: Fn(usize) -> T + Sync,
        Op: Fn(T, T) -> T + Sync + Send + Copy,
    {
        if hi - lo <= DEFAULT_GRAIN {
            let mut acc = id;
            for i in lo..hi {
                acc = op(acc, f(i));
            }
            return acc;
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = rayon::join(|| go(lo, mid, id, f, op), || go(mid, hi, id, f, op));
        op(a, b)
    }
    if n == 0 {
        return id;
    }
    go(0, n, id, &f, op)
}

/// Sum of `f(i)` for `i` in `0..n`.
pub fn sum_usize<F: Fn(usize) -> usize + Sync>(n: usize, f: F) -> usize {
    reduce_with(n, 0usize, f, |a, b| a + b)
}

/// Sum of `f(i)` for `i` in `0..n`, 64-bit.
pub fn sum_u64<F: Fn(usize) -> u64 + Sync>(n: usize, f: F) -> u64 {
    reduce_with(n, 0u64, f, |a, b| a + b)
}

/// Count of indices satisfying `pred`.
pub fn count<F: Fn(usize) -> bool + Sync>(n: usize, pred: F) -> usize {
    sum_usize(n, |i| pred(i) as usize)
}

/// Minimum of a slice (`None` when empty).
pub fn min_slice<T: Ord + Copy + Send + Sync>(xs: &[T]) -> Option<T> {
    if xs.is_empty() {
        return None;
    }
    Some(reduce_with(xs.len(), xs[0], |i| xs[i], |a, b| a.min(b)))
}

/// Maximum of a slice (`None` when empty).
pub fn max_slice<T: Ord + Copy + Send + Sync>(xs: &[T]) -> Option<T> {
    if xs.is_empty() {
        return None;
    }
    Some(reduce_with(xs.len(), xs[0], |i| xs[i], |a, b| a.max(b)))
}

/// True iff `pred(i)` holds for all `i` in `0..n`.
pub fn all<F: Fn(usize) -> bool + Sync>(n: usize, pred: F) -> bool {
    reduce_with(n, true, pred, |a, b| a && b)
}

/// True iff `pred(i)` holds for some `i` in `0..n`.
pub fn any<F: Fn(usize) -> bool + Sync>(n: usize, pred: F) -> bool {
    reduce_with(n, false, pred, |a, b| a || b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_sequential() {
        let n = 1_000_000;
        assert_eq!(sum_usize(n, |i| i), n * (n - 1) / 2);
        assert_eq!(sum_u64(0, |_| 1), 0);
        assert_eq!(sum_u64(1, |i| i as u64 + 5), 5);
    }

    #[test]
    fn count_matches() {
        assert_eq!(count(1000, |i| i % 3 == 0), 334);
        assert_eq!(count(0, |_| true), 0);
    }

    #[test]
    fn min_max_match_std() {
        let xs: Vec<u64> = (0..100_000).map(crate::rng::hash64).collect();
        assert_eq!(min_slice(&xs), xs.iter().copied().min());
        assert_eq!(max_slice(&xs), xs.iter().copied().max());
        let empty: Vec<u64> = vec![];
        assert_eq!(min_slice(&empty), None);
        assert_eq!(max_slice(&empty), None);
    }

    #[test]
    fn all_any() {
        assert!(all(10_000, |i| i < 10_000));
        assert!(!all(10_000, |i| i < 9_999));
        assert!(any(10_000, |i| i == 9_999));
        assert!(!any(10_000, |i| i == 10_000));
        assert!(all(0, |_| false));
        assert!(!any(0, |_| true));
    }

    #[test]
    fn nonuniform_grain_boundaries() {
        // Exercise sizes straddling the grain boundary.
        for n in [
            DEFAULT_GRAIN - 1,
            DEFAULT_GRAIN,
            DEFAULT_GRAIN + 1,
            2 * DEFAULT_GRAIN + 3,
        ] {
            assert_eq!(sum_usize(n, |i| i), n * (n - 1) / 2, "n={n}");
        }
    }
}
