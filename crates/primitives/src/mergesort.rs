//! Parallel comparison sort: mergesort with parallel merging.
//!
//! The integer sorts in [`crate::sort`] cover the BCC pipeline's hot paths;
//! this module completes the primitive layer with a general comparison
//! sort (ParlayLib ships one too — `sample_sort`/`merge_sort`). Classic
//! structure [CLRS ch. 27]:
//!
//! * split, recursively sort both halves in parallel (`rayon::join`);
//! * **parallel merge**: split the larger input at its median, binary-search
//!   the split key in the smaller input, emit the two sub-merges in
//!   parallel.
//!
//! `O(n log n)` work, `O(log³ n)` span.

use crate::par::DEFAULT_GRAIN;
use crate::slice::{uninit_vec, UnsafeSlice};

/// Sort a slice in parallel with a key extractor.
pub fn par_sort_by_key<T, K, F>(xs: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync + Copy,
{
    par_sort_by(xs, |a, b| key(a).cmp(&key(b)));
}

/// Sort a slice in parallel with a comparator.
pub fn par_sort_by<T, C>(xs: &mut [T], cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync + Copy,
{
    let n = xs.len();
    if n <= 1 {
        return;
    }
    // SAFETY: `buf` is only read after `sort_rec`'s merge step copies the
    // full slice into it, so no uninitialized slot is ever read.
    let mut buf: Vec<T> = unsafe { uninit_vec(n) };
    sort_rec(xs, &mut buf, cmp);
}

/// Sort a slice of `Ord` values in parallel.
pub fn par_sort<T: Copy + Ord + Send + Sync>(xs: &mut [T]) {
    par_sort_by(xs, |a, b| a.cmp(b));
}

fn sort_rec<T, C>(xs: &mut [T], buf: &mut [T], cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync + Copy,
{
    let n = xs.len();
    if n <= DEFAULT_GRAIN {
        xs.sort_by(cmp);
        return;
    }
    let mid = n / 2;
    {
        let (xl, xr) = xs.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        rayon::join(|| sort_rec(xl, bl, cmp), || sort_rec(xr, br, cmp));
    }
    // Merge the sorted halves through the buffer.
    buf.copy_from_slice(xs);
    let (a, b) = buf.split_at(mid);
    let out = UnsafeSlice::new(xs);
    par_merge(a, b, &out, 0, cmp);
}

/// Merge sorted `a` and `b` into `out[base..base + a.len() + b.len()]`.
fn par_merge<T, C>(a: &[T], b: &[T], out: &UnsafeSlice<'_, T>, base: usize, cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync + Copy,
{
    let (n, m) = (a.len(), b.len());
    if n + m <= 2 * DEFAULT_GRAIN {
        // Sequential two-finger merge (stable: ties take from `a`).
        let (mut i, mut j, mut k) = (0, 0, base);
        while i < n && j < m {
            let take_a = cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater;
            // SAFETY: every output slot in [base, base+n+m) written once.
            unsafe {
                if take_a {
                    out.write(k, a[i]);
                    i += 1;
                } else {
                    out.write(k, b[j]);
                    j += 1;
                }
            }
            k += 1;
        }
        while i < n {
            // SAFETY: continues the same exclusive [base, base+n+m) range.
            unsafe { out.write(k, a[i]) };
            i += 1;
            k += 1;
        }
        while j < m {
            // SAFETY: continues the same exclusive [base, base+n+m) range.
            unsafe { out.write(k, b[j]) };
            j += 1;
            k += 1;
        }
        return;
    }
    // Split at the larger side's median; partition the other side by
    // binary search. For stability, elements equal to the pivot that live
    // in `a` must stay left of equals in `b`:
    if n >= m {
        let i = n / 2;
        let pivot = &a[i];
        // First index in b strictly greater-or-equal keeps b's equals right.
        let j = partition_point(b, |x| cmp(x, pivot) == std::cmp::Ordering::Less);
        rayon::join(
            || par_merge(&a[..i], &b[..j], out, base, cmp),
            || par_merge(&a[i..], &b[j..], out, base + i + j, cmp),
        );
    } else {
        let j = m / 2;
        let pivot = &b[j];
        // Elements of `a` equal to the pivot go left (stability).
        let i = partition_point(a, |x| cmp(x, pivot) != std::cmp::Ordering::Greater);
        rayon::join(
            || par_merge(&a[..i], &b[..j], out, base, cmp),
            || par_merge(&a[i..], &b[j..], out, base + i + j, cmp),
        );
    }
}

fn partition_point<T>(xs: &[T], pred: impl Fn(&T) -> bool) -> usize {
    let (mut lo, mut hi) = (0, xs.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(&xs[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{hash64, Rng};

    #[test]
    fn sorts_random_u64() {
        for n in [
            0usize,
            1,
            2,
            100,
            DEFAULT_GRAIN,
            4 * DEFAULT_GRAIN + 17,
            500_000,
        ] {
            let mut xs: Vec<u64> = (0..n).map(|i| hash64(i as u64)).collect();
            let mut want = xs.clone();
            want.sort_unstable();
            par_sort(&mut xs);
            assert_eq!(xs, want, "n={n}");
        }
    }

    #[test]
    fn stable_on_equal_keys() {
        let n = 100_000;
        let mut xs: Vec<(u32, u32)> = (0..n)
            .map(|i| ((hash64(i as u64) % 50) as u32, i as u32))
            .collect();
        par_sort_by_key(&mut xs, |&(k, _)| k);
        for w in xs.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?}", w);
            }
        }
    }

    #[test]
    fn custom_comparator_descending() {
        let mut xs: Vec<u32> = (0..50_000).map(|i| hash64(i) as u32).collect();
        par_sort_by(&mut xs, |a, b| b.cmp(a));
        assert!(xs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut asc: Vec<u32> = (0..100_000).collect();
        let want = asc.clone();
        par_sort(&mut asc);
        assert_eq!(asc, want);
        let mut desc: Vec<u32> = (0..100_000).rev().collect();
        par_sort(&mut desc);
        assert_eq!(desc, want);
    }

    #[test]
    fn randomized_against_std() {
        let mut r = Rng::new(44);
        for _ in 0..10 {
            let n = r.index(30_000);
            let mut xs: Vec<i64> = (0..n).map(|_| r.next_u64() as i64).collect();
            let mut want = xs.clone();
            want.sort_unstable();
            par_sort(&mut xs);
            assert_eq!(xs, want);
        }
    }
}
