//! Parallel stable counting sort and LSD radix sort.
//!
//! These are the integer-key sorts the paper's pipeline relies on (CSR
//! construction, semisort for the Euler tour). The counting sort is the
//! standard blocked histogram–scan–scatter: `O(n + K·B)` work (with `K`
//! buckets and `B` blocks) and `O(log n)` span; the radix sort composes
//! stable counting-sort passes over 16-bit digits.

use crate::par::{block_bounds, num_blocks, DEFAULT_GRAIN};
use crate::scan::prefix_sums;
use crate::slice::{reuse_uninit, UnsafeSlice};
use crate::worker_local::WorkerLocal;
use rayon::prelude::*;

/// Upper bound on `K·B` so per-block histograms stay cache-friendly.
const MAX_HIST_CELLS: usize = 1 << 24;

/// Stable parallel counting sort of `items` into `num_buckets` buckets.
///
/// Returns the sorted vector and the bucket start offsets
/// (`offsets.len() == num_buckets + 1`, `offsets[k]..offsets[k+1]` is the
/// range of bucket `k`). `key` must return values `< num_buckets`.
pub fn counting_sort_by<T, F>(items: &[T], num_buckets: usize, key: F) -> (Vec<T>, Vec<usize>)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let mut out = Vec::new();
    let mut offsets = Vec::new();
    counting_sort_by_into(items, num_buckets, key, &mut out, &mut offsets);
    (out, offsets)
}

/// [`counting_sort_by`] writing the sorted items and the bucket offsets
/// into caller-owned buffers, reusing their capacity — the repeated-solve
/// path behind [`crate::semisort::semisort_by_small_key_into`].
pub fn counting_sort_by_into<T, F>(
    items: &[T],
    num_buckets: usize,
    key: F,
    out: &mut Vec<T>,
    offsets_out: &mut Vec<usize>,
) where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = items.len();
    let k = num_buckets.max(1);
    offsets_out.clear();
    if n == 0 {
        out.clear();
        offsets_out.resize(k + 1, 0);
        return;
    }

    // Sequential runs take the kernelized single-histogram path: same
    // bytes out (stable sorts have a unique output), ~half the histogram
    // traffic. Feature-gated dispatch only; the kernel is always built.
    #[cfg(feature = "simd")]
    if crate::par::num_threads() <= 1 {
        return counting_sort_seq_vectorized(items, k, key, out, offsets_out);
    }

    // Bound histogram memory: shrink block count for huge bucket counts.
    let mut blocks = num_blocks(n, DEFAULT_GRAIN);
    if blocks * k > MAX_HIST_CELLS {
        blocks = (MAX_HIST_CELLS / k).max(1);
    }
    let bounds = block_bounds(n, blocks);

    // Per-block histograms, written block-major: hist[b * k + j].
    let mut hist = vec![0usize; blocks * k];
    {
        let hview = UnsafeSlice::new(&mut hist);
        bounds.par_windows(2).enumerate().for_each(|(b, w)| {
            // SAFETY: block `b` owns row `b*k .. (b+1)*k` exclusively.
            for item in &items[w[0]..w[1]] {
                let j = key(item);
                debug_assert!(j < k, "key {j} out of bucket range {k}");
                unsafe {
                    *hview.get_mut(b * k + j) += 1;
                }
            }
        });
    }

    // Transpose to bucket-major and scan: cursor[j * blocks + b] becomes the
    // global offset where block b writes its items of bucket j.
    let mut cursors = vec![0usize; blocks * k];
    {
        let cview = UnsafeSlice::new(&mut cursors);
        let hist_ref = &hist;
        rayon::scope(|_| {
            (0..k).into_par_iter().for_each(|j| {
                for b in 0..blocks {
                    // SAFETY: cell (j, b) is written once, by this iteration.
                    unsafe { cview.write(j * blocks + b, hist_ref[b * k + j]) };
                }
            });
        });
    }
    let total = prefix_sums(&mut cursors);
    debug_assert_eq!(total, n);

    // Bucket boundary offsets for the caller.
    offsets_out.reserve(k + 1);
    for j in 0..k {
        offsets_out.push(cursors[j * blocks]);
    }
    offsets_out.push(n);

    // Scatter, stably: each block walks its range in order, bumping local
    // copies of its cursors. The cursor copies live in per-worker arenas:
    // a worker typically scatters many blocks, so reusing one `O(k)`
    // buffer per *worker* replaces the old `O(k)` allocation per *block*
    // inside the parallel region.
    // SAFETY: every slot in 0..n is written exactly once by the scatter.
    unsafe { reuse_uninit(out, n) };
    {
        let oview = UnsafeSlice::new(out.as_mut_slice());
        let cursors_ref = &cursors;
        let local_cursors = WorkerLocal::<Vec<usize>>::default();
        bounds.par_windows(2).enumerate().for_each(|(b, w)| {
            local_cursors.with(|local| {
                local.clear();
                local.extend((0..k).map(|j| cursors_ref[j * blocks + b]));
                for item in &items[w[0]..w[1]] {
                    let j = key(item);
                    // SAFETY: the scanned cursors give every (block,
                    // bucket) pair a disjoint output range.
                    unsafe { oview.write(local[j], *item) };
                    local[j] += 1;
                }
            });
        });
    }
}

/// Kernelized sequential counting sort (always compiled; dispatched from
/// [`counting_sort_by_into`] under the `simd` feature when the budget is
/// one worker). One `O(k)` histogram instead of the blocked `O(k·B)`
/// block-major histograms — no transpose, no per-worker cursor arenas,
/// no shared-slice indirection — then an unchecked scatter (kernel-scanned
/// cursors tile the output exactly). Stable, and byte-identical to the
/// parallel path: a stable bucket sort's output is unique.
pub fn counting_sort_seq_vectorized<T, F>(
    items: &[T],
    num_buckets: usize,
    key: F,
    out: &mut Vec<T>,
    offsets_out: &mut Vec<usize>,
) where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = items.len();
    let k = num_buckets.max(1);
    offsets_out.clear();
    if n == 0 {
        out.clear();
        offsets_out.resize(k + 1, 0);
        return;
    }
    let mut cursors = vec![0usize; k];
    for item in items {
        let j = key(item);
        debug_assert!(j < k, "key {j} out of bucket range {k}");
        // SAFETY: `key` contracts to return values < num_buckets (checked
        // above in debug builds), matching the blocked path's unchecked
        // histogram writes.
        unsafe { *cursors.get_unchecked_mut(j) += 1 };
    }
    crate::kernels::exclusive_scan_usize(&mut cursors, 0);
    offsets_out.reserve(k + 1);
    offsets_out.extend_from_slice(&cursors);
    offsets_out.push(n);

    // SAFETY: the cursors tile 0..n; every slot is written exactly once.
    unsafe { reuse_uninit(out, n) };
    let out_ptr = out.as_mut_ptr();
    for item in items {
        // SAFETY: keys are < k per the contract above, and the scanned
        // cursors tile 0..n, so each write is in-bounds and each slot is
        // written exactly once — the same disjointness argument as the
        // blocked path's `UnsafeSlice` scatter, minus the per-write bounds
        // checks that dominate this loop.
        unsafe {
            let c = cursors.get_unchecked_mut(key(item));
            *out_ptr.add(*c) = *item;
            *c += 1;
        }
    }
}

/// Stable LSD radix sort by a `u64` key.
///
/// `max_key` bounds the key values (inclusive); only the digits needed to
/// cover it are processed. The digit width adapts to the input size: each
/// counting-sort pass pays `O(K·B)` for its histograms (K buckets, B
/// blocks), so small inputs use 8-bit digits (256 buckets) and only large
/// inputs amortize the 16-bit (65 536-bucket) passes.
pub fn radix_sort_by<T, F>(items: &[T], max_key: u64, key: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let digit_bits: u32 = match items.len() {
        0..=262_143 => 8,
        262_144..=2_097_151 => 12,
        _ => 16,
    };
    let digit_mask: u64 = (1 << digit_bits) - 1;
    let bits = 64 - max_key.leading_zeros();
    let passes = bits.div_ceil(digit_bits).max(1);
    let mut cur: Vec<T> = items.to_vec();
    for p in 0..passes {
        let shift = p * digit_bits;
        let buckets = if bits >= shift + digit_bits {
            1usize << digit_bits
        } else {
            1usize << (bits - shift).max(1)
        };
        let (next, _) =
            counting_sort_by(&cur, buckets, |t| ((key(t) >> shift) & digit_mask) as usize);
        cur = next;
    }
    cur
}

/// Compute bucket start offsets of an array already sorted by `key`
/// (CSR-style: `offsets[j]..offsets[j+1]` spans bucket `j`).
pub fn offsets_from_sorted<T, F>(sorted: &[T], num_buckets: usize, key: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = sorted.len();
    let k = num_buckets;
    let mut offsets = vec![usize::MAX; k + 1];
    offsets[0] = 0;
    if n > 0 {
        offsets[0] = 0;
    }
    // Mark boundaries in parallel: position i starts bucket key(i) if it
    // differs from its predecessor; buckets with no elements are filled by a
    // backward sweep.
    {
        let oview = UnsafeSlice::new(&mut offsets);
        crate::par::par_for(n, |i| {
            let kj = key(&sorted[i]);
            debug_assert!(kj < k);
            if i == 0 {
                // All buckets up to and including key(0) start at 0.
            } else {
                let kp = key(&sorted[i - 1]);
                debug_assert!(kp <= kj, "input not sorted by key");
                if kp != kj {
                    // SAFETY: bucket kj has a unique first element.
                    unsafe { oview.write(kj, i) };
                }
            }
        });
    }
    offsets[k] = n;
    if n > 0 {
        let k0 = key(&sorted[0]);
        for o in offsets.iter_mut().take(k0 + 1) {
            *o = 0;
        }
    }
    // Fill empty buckets right-to-left with the next known boundary.
    // Sequential O(k): k ≤ n in all our uses.
    let mut next = n;
    for j in (0..=k).rev() {
        if offsets[j] == usize::MAX {
            offsets[j] = next;
        } else {
            next = offsets[j];
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{hash64, Rng};

    #[test]
    fn counting_sort_sorts_and_offsets() {
        let n = 50_000;
        let k = 37;
        let items: Vec<u64> = (0..n).map(|i| hash64(i as u64)).collect();
        let (sorted, offsets) = counting_sort_by(&items, k, |&x| (x % k as u64) as usize);
        assert_eq!(sorted.len(), n);
        assert_eq!(offsets.len(), k + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[k], n);
        // Keys nondecreasing, offsets correct.
        for j in 0..k {
            for i in offsets[j]..offsets[j + 1] {
                assert_eq!((sorted[i] % k as u64) as usize, j);
            }
        }
        // Same multiset.
        let mut a = items.clone();
        let mut b = sorted.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn counting_sort_is_stable() {
        // Pairs (key, original index): after sorting, indices within a key
        // must stay increasing.
        let n = 30_000;
        let items: Vec<(u32, u32)> = (0..n)
            .map(|i| ((hash64(i as u64) % 11) as u32, i as u32))
            .collect();
        let (sorted, _) = counting_sort_by(&items, 11, |&(k, _)| k as usize);
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?}", w);
            }
        }
    }

    #[test]
    fn counting_sort_empty_and_tiny() {
        let (s, o) = counting_sort_by::<u32, _>(&[], 5, |&x| x as usize);
        assert!(s.is_empty());
        assert_eq!(o, vec![0; 6]);
        let (s, o) = counting_sort_by(&[3u32], 5, |&x| x as usize);
        assert_eq!(s, vec![3]);
        assert_eq!(o, vec![0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn counting_sort_single_bucket() {
        let items: Vec<u32> = (0..1000).rev().collect();
        let (s, o) = counting_sort_by(&items, 1, |_| 0);
        assert_eq!(s, items); // stable: order preserved
        assert_eq!(o, vec![0, 1000]);
    }

    /// The sequential kernelized counting sort must be byte-identical —
    /// sorted items *and* offsets — to the blocked parallel path on
    /// adversarial lengths at every thread budget.
    #[test]
    fn vectorized_counting_sort_matches_blocked_path() {
        use crate::kernels::LANES;
        let mut r = Rng::new(23);
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 31, 32, 33, 40_000] {
            let k = 1 + r.index(64);
            let items: Vec<(u32, u32)> = (0..n).map(|i| (r.index(k) as u32, i as u32)).collect();
            let mut want_s = Vec::new();
            let mut want_o = Vec::new();
            counting_sort_by_into(&items, k, |&(x, _)| x as usize, &mut want_s, &mut want_o);
            for threads in [1usize, 2, 8] {
                crate::par::with_threads(threads, || {
                    let mut got_s = Vec::new();
                    let mut got_o = Vec::new();
                    counting_sort_seq_vectorized(
                        &items,
                        k,
                        |&(x, _)| x as usize,
                        &mut got_s,
                        &mut got_o,
                    );
                    assert_eq!(got_s, want_s, "items n={n} k={k} threads={threads}");
                    assert_eq!(got_o, want_o, "offsets n={n} k={k} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn radix_sort_matches_std() {
        let mut r = Rng::new(9);
        for n in [0usize, 1, 2, 1000, 40_000] {
            let items: Vec<u64> = (0..n).map(|_| r.next_u64() % 1_000_000).collect();
            let got = radix_sort_by(&items, 1_000_000, |&x| x);
            let mut want = items.clone();
            want.sort_unstable();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn radix_sort_full_64bit_keys() {
        let items: Vec<u64> = (0..20_000).map(hash64).collect();
        let got = radix_sort_by(&items, u64::MAX, |&x| x);
        let mut want = items;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_is_stable_on_pairs() {
        let items: Vec<(u32, u32)> = (0..20_000)
            .map(|i| ((hash64(i) % 100) as u32, i as u32))
            .collect();
        let got = radix_sort_by(&items, 99, |&(k, _)| k as u64);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn offsets_from_sorted_handles_empty_buckets() {
        // Buckets 0 and 3 empty.
        let sorted: Vec<u32> = vec![1, 1, 2, 4, 4, 4];
        let offsets = offsets_from_sorted(&sorted, 5, |&x| x as usize);
        assert_eq!(offsets, vec![0, 0, 2, 3, 3, 6]);
    }

    #[test]
    fn offsets_from_sorted_empty_input() {
        let offsets = offsets_from_sorted::<u32, _>(&[], 4, |&x| x as usize);
        assert_eq!(offsets, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn offsets_from_sorted_matches_counting_sort_offsets() {
        let mut r = Rng::new(17);
        for _ in 0..10 {
            let n = r.index(10_000);
            let k = 1 + r.index(300);
            let items: Vec<u32> = (0..n).map(|_| r.index(k) as u32).collect();
            let (sorted, offs) = counting_sort_by(&items, k, |&x| x as usize);
            let offs2 = offsets_from_sorted(&sorted, k, |&x| x as usize);
            assert_eq!(offs, offs2);
        }
    }
}
