//! Per-worker scratch arenas keyed by the pool's stable worker identity.
//!
//! The frontier-style hot loops in this workspace (LDD expansion, BFS
//! levels, union–find edge sampling, counting-sort scatter cursors) all
//! share a shape: a parallel pass where every participating thread
//! accumulates a private partial output, and the partials are merged at a
//! (sequential) barrier. The classic implementations either allocate a
//! fresh buffer per task inside the parallel region (churn the allocator
//! on every round) or funnel everything through one shared structure
//! (serialize on a cache line). ParlayLib solves this with *worker-local
//! storage*; [`WorkerLocal`] is the same idea on top of the persistent
//! pool's stable [`worker_index`]:
//!
//! * one cache-line-padded slot per possible worker identity, plus one
//!   slot for non-pool (submitting) threads — sized once from
//!   [`max_workers`], which the pool guarantees
//!   is a lifetime bound on every index it will ever hand out, however
//!   deeply parallel operations nest;
//! * [`WorkerLocal::with`] hands the calling thread exclusive `&mut`
//!   access to *its* slot (a non-atomic structure — the per-slot guard
//!   flag exists only to turn accidental aliasing into a panic instead of
//!   UB);
//! * merge APIs ([`iter_mut`](WorkerLocal::iter_mut),
//!   [`fold`](WorkerLocal::fold), [`append_to`](WorkerLocal::append_to))
//!   take `&mut self` at quiescence and visit slots in worker-id order,
//!   so merging per-worker partials is deterministic given deterministic
//!   slot contents;
//! * [`heap_bytes_by`](WorkerLocal::heap_bytes_by) reports held capacity
//!   so scratch owners (`LddScratch`, `CcScratch`) keep the engine's
//!   fresh-allocation accounting honest.
//!
//! A single solve's arenas stay warm across rounds and across solves: the
//! owning scratch clears slot *lengths*, never capacities.

use crate::par::{max_workers, worker_index};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// One worker's slot, padded to its own cache lines so two workers
/// appending to adjacent slots never false-share.
#[repr(align(128))]
struct Slot<T> {
    /// Misuse guard, not a lock: set while a thread is inside `with` so a
    /// second (aliasing) entry panics instead of handing out two `&mut`.
    busy: AtomicBool,
    value: UnsafeCell<T>,
}

impl<T> Slot<T> {
    fn new(value: T) -> Self {
        Self {
            busy: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }
}

/// A `T` per possible pool worker (plus one for non-pool threads).
///
/// Shareable across a parallel operation (`&self`); each participating
/// thread mutates only its own slot through [`with`](Self::with), and the
/// owner merges the partials afterwards through the `&mut self` APIs.
///
/// # Aliasing contract
///
/// A slot belongs to exactly one thread at a time: pool worker `i` owns
/// slot `i + 1`, and the (single) submitting thread outside the pool owns
/// slot `0`. The pool runs one job body per worker at a time, so this
/// holds for any `WorkerLocal` used by one logical operation. Sharing one
/// `WorkerLocal` between *multiple non-pool threads at once* would alias
/// slot 0 — the guard flag turns that (and re-entrant `with` from nested
/// code) into a panic.
pub struct WorkerLocal<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: slots are only mutated through `with` (exclusive per thread by
// the contract above, enforced by the guard flag) or through `&mut self`.
unsafe impl<T: Send> Sync for WorkerLocal<T> {}
unsafe impl<T: Send> Send for WorkerLocal<T> {}

impl<T: Default> Default for WorkerLocal<T> {
    fn default() -> Self {
        Self::new(T::default)
    }
}

/// Resets a slot's guard flag even if the user closure panics, so a
/// caught panic (the pool rethrows on the submitter) cannot wedge a slot.
struct BusyGuard<'a>(&'a AtomicBool);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl<T> WorkerLocal<T> {
    /// One slot per possible worker identity (see [`max_workers`])
    /// plus slot 0 for non-pool
    /// threads, each initialized with `init()`.
    pub fn new(mut init: impl FnMut() -> T) -> Self {
        let slots = (0..max_workers() + 1).map(|_| Slot::new(init())).collect();
        Self { slots }
    }

    /// Number of slots (worker ceiling + 1).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Slot index of the calling thread: `0` outside the pool, worker
    /// index + 1 inside it.
    #[inline]
    fn slot_index(&self) -> usize {
        let i = worker_index().map_or(0, |w| w + 1);
        assert!(
            i < self.slots.len(),
            "worker index {} outside the WorkerLocal bound {} — the pool \
             exceeded its max_workers() ceiling",
            i - 1,
            self.slots.len() - 1,
        );
        i
    }

    /// Run `f` with exclusive access to the calling thread's slot.
    ///
    /// Panics if the slot is already borrowed (re-entrant `with` from the
    /// same thread, or two non-pool threads sharing one `WorkerLocal`).
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let slot = &self.slots[self.slot_index()];
        assert!(
            !slot.busy.swap(true, Ordering::Acquire),
            "WorkerLocal slot already borrowed (re-entrant `with`, or two \
             non-pool threads sharing one WorkerLocal)"
        );
        let _guard = BusyGuard(&slot.busy);
        // SAFETY: the guard flag just established exclusive access, and
        // per the aliasing contract no other thread targets this slot.
        f(unsafe { &mut *slot.value.get() })
    }

    /// Exclusive iteration over every slot in worker-id order (slot 0 —
    /// the non-pool submitter — first). The backbone of the deterministic
    /// merge APIs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|s| s.value.get_mut())
    }

    /// Fold every slot in worker-id order into an accumulator.
    pub fn fold<A>(&mut self, init: A, mut f: impl FnMut(A, &mut T) -> A) -> A {
        let mut acc = init;
        for v in self.iter_mut() {
            acc = f(acc, v);
        }
        acc
    }

    /// Sum `per(slot)` over all slots from a shared reference — the
    /// `heap_bytes()` hook for scratch owners whose accessors take
    /// `&self`. Briefly takes each slot's guard, so it panics (rather
    /// than race) if called while a parallel operation is still using the
    /// arena.
    pub fn heap_bytes_by(&self, per: impl Fn(&T) -> usize) -> usize {
        self.slots
            .iter()
            .map(|s| {
                assert!(
                    !s.busy.swap(true, Ordering::Acquire),
                    "WorkerLocal accounting ran while a slot was borrowed"
                );
                let _guard = BusyGuard(&s.busy);
                // SAFETY: guard flag held; no concurrent slot access.
                per(unsafe { &*s.value.get() })
            })
            .sum()
    }
}

impl<T: Copy> WorkerLocal<Vec<T>> {
    /// Append every worker's buffer to `out` in worker-id order, clearing
    /// each buffer (capacity retained). The copy is one `memcpy` per slot
    /// — `O(P)` slots — while the parallel work stays in the claim phase
    /// that filled the buffers.
    pub fn append_to(&mut self, out: &mut Vec<T>) {
        for buf in self.iter_mut() {
            out.extend_from_slice(buf);
            buf.clear();
        }
    }

    /// Total elements currently buffered across all slots.
    pub fn total_len(&mut self) -> usize {
        self.fold(0, |acc, v| acc + v.len())
    }

    /// Give every slot capacity for at least `cap` elements.
    ///
    /// Capacity only ever grows, and grows to the same value for the same
    /// `cap` — so arenas reserved to a deterministic bound (`n` vertices)
    /// keep [`heap_bytes`](Self::heap_bytes) identical across runs even
    /// though *which* worker claims how much is scheduling-dependent.
    /// That determinism is what lets the engine's warm-solve
    /// `fresh_alloc_bytes == 0` guarantee survive per-worker buffering.
    pub fn reserve_each(&mut self, cap: usize) {
        for buf in self.iter_mut() {
            if buf.capacity() < cap {
                buf.reserve_exact(cap - buf.len());
            }
        }
    }

    /// Heap bytes held by every slot's capacity.
    pub fn heap_bytes(&self) -> usize {
        self.heap_bytes_by(|v| v.capacity() * std::mem::size_of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{par_for_grain, with_threads};

    #[test]
    fn sized_for_every_worker_identity() {
        let wl = WorkerLocal::<u32>::default();
        assert_eq!(wl.num_slots(), max_workers() + 1);
    }

    #[test]
    fn with_mutates_the_calling_threads_slot() {
        let mut wl = WorkerLocal::<Vec<u32>>::default();
        wl.with(|v| v.push(7));
        wl.with(|v| v.push(8));
        // Outside the pool we are slot 0.
        assert_eq!(wl.iter_mut().next().unwrap(), &[7, 8]);
    }

    #[test]
    fn parallel_pushes_are_all_collected() {
        let n = 40_000;
        let mut wl = WorkerLocal::<Vec<u32>>::default();
        par_for_grain(n, 64, |i| wl.with(|v| v.push(i as u32)));
        assert_eq!(wl.total_len(), n);
        let mut out = Vec::new();
        wl.append_to(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..n as u32).collect::<Vec<_>>());
        assert_eq!(wl.total_len(), 0, "append_to must clear the slots");
    }

    #[test]
    fn append_to_preserves_worker_id_order_and_capacity() {
        let mut wl = WorkerLocal::<Vec<u32>>::default();
        wl.reserve_each(100);
        let bytes = wl.heap_bytes();
        assert!(bytes >= 100 * 4 * wl.num_slots());
        wl.with(|v| v.extend_from_slice(&[1, 2, 3]));
        let mut out = vec![0u32];
        wl.append_to(&mut out);
        assert_eq!(out, [0, 1, 2, 3], "append_to must append, not replace");
        assert_eq!(wl.heap_bytes(), bytes, "draining must keep capacity");
        // Re-reserving an already-satisfied bound must not grow anything.
        wl.reserve_each(100);
        assert_eq!(wl.heap_bytes(), bytes);
    }

    #[test]
    fn fold_visits_slots_in_order() {
        let mut wl = WorkerLocal::<usize>::default();
        with_threads(2, || {
            par_for_grain(1000, 1, |_| wl.with(|c| *c += 1));
        });
        assert_eq!(wl.fold(0, |a, c| a + *c), 1000);
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn reentrant_with_panics_instead_of_aliasing() {
        let wl = WorkerLocal::<u32>::default();
        wl.with(|_| wl.with(|_| {}));
    }

    #[test]
    fn slot_guard_recovers_after_panic() {
        let wl = WorkerLocal::<u32>::default();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wl.with(|_| panic!("user closure panics"))
        }));
        assert!(caught.is_err());
        // The guard must have been released on unwind.
        wl.with(|v| *v = 5);
        assert_eq!(wl.heap_bytes_by(|&v| v as usize), 5);
    }
}
