//! Parallel sparse table for 1-D range-minimum / range-maximum queries.
//!
//! FAST-BCC's *Tagging* step (paper §4.1, §5 "Computing Tags") computes
//! `low[v]`/`high[v]` as a range-min/-max of the `w1`/`w2` arrays over the
//! Euler-tour interval `[first[v], last[v]]`. A sparse table gives `O(1)`
//! queries after an `O(n log n)`-work, `O(log n)`-span build \[BFGS20\]:
//! level `k` stores the reduction of every length-`2^k` window, and level
//! `k+1` is computed from level `k` with one parallel pass.

use crate::par::par_for;
use crate::slice::{uninit_vec, UnsafeSlice};

// (Both RMQ structures below share these imports; `BlockRmq` wraps
// `SparseTable` over its block summaries.)

/// Which reduction the table answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmqKind {
    Min,
    Max,
}

/// Sparse table over a `u32` array (all tag arrays in this repo are `u32`).
pub struct SparseTable {
    kind: RmqKind,
    n: usize,
    /// `levels[k][i]` = reduction of `data[i .. i + 2^k]`; level 0 is the
    /// input copy. Stored as one flat vec per level.
    levels: Vec<Vec<u32>>,
}

impl SparseTable {
    /// Build a table of `kind` over `data`. `O(n log n)` work, `O(log n)` span.
    pub fn build(data: &[u32], kind: RmqKind) -> Self {
        let n = data.len();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        levels.push(data.to_vec());
        let mut width = 1usize; // window size of current last level
        while 2 * width <= n {
            let prev = levels.last().unwrap();
            let m = n - 2 * width + 1;
            // SAFETY: the scatter below writes every index `0..m` before use.
            let mut next: Vec<u32> = unsafe { uninit_vec(m) };
            {
                let view = UnsafeSlice::new(&mut next);
                let prev_ref = &prev[..];
                par_for(m, |i| {
                    let a = prev_ref[i];
                    let b = prev_ref[i + width];
                    let v = match kind {
                        RmqKind::Min => a.min(b),
                        RmqKind::Max => a.max(b),
                    };
                    // SAFETY: index i written exactly once.
                    unsafe { view.write(i, v) };
                });
            }
            levels.push(next);
            width *= 2;
        }
        Self { kind, n, levels }
    }

    /// Number of elements indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the table indexes no elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reduction over the **inclusive** range `[lo, hi]`. Panics if empty or
    /// out of bounds. `O(1)`.
    #[inline]
    pub fn query(&self, lo: usize, hi: usize) -> u32 {
        assert!(
            lo <= hi && hi < self.n,
            "bad RMQ range [{lo}, {hi}] (n={})",
            self.n
        );
        let len = hi - lo + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2(len))
        let w = 1usize << k;
        let a = self.levels[k][lo];
        let b = self.levels[k][hi + 1 - w];
        match self.kind {
            RmqKind::Min => a.min(b),
            RmqKind::Max => a.max(b),
        }
    }

    /// Bytes of auxiliary memory held by the table (for space accounting).
    pub fn bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// Block-decomposed RMQ: the linear-space variant of the sparse table.
///
/// The input is split into blocks of [`BlockRmq::BLOCK`] elements; a sparse
/// table is built over the per-block reductions only (`n/B` entries), and a
/// query scans its two partial boundary blocks (`O(B)` each) plus one
/// `O(1)` table lookup. With constant `B` this is the classic
/// `O(n)`-space, `O(1)`-table + `O(B)`-scan trade — in practice ~`B×`
/// cheaper to build than the full table, which matters because FAST-BCC
/// builds two tables per run and queries each exactly `n` times.
pub struct BlockRmq {
    kind: RmqKind,
    data: Vec<u32>,
    summary: SparseTable,
}

impl BlockRmq {
    /// Elements per block. 32 bounds a query’s two boundary scans to one
    /// cache line each while still shrinking the summary table 32×.
    pub const BLOCK: usize = 32;

    /// Build over `data` (which is copied; tag arrays are consumed by the
    /// caller afterwards).
    pub fn build(data: &[u32], kind: RmqKind) -> Self {
        let n = data.len();
        let blocks = n.div_ceil(Self::BLOCK).max(1);
        // SAFETY: the per-block scatter below writes every index before use.
        let mut mins: Vec<u32> = unsafe { uninit_vec(blocks) };
        {
            let view = UnsafeSlice::new(&mut mins);
            par_for(blocks, |b| {
                let lo = b * Self::BLOCK;
                let hi = ((b + 1) * Self::BLOCK).min(n);
                let it = data[lo..hi].iter().copied();
                let v = match kind {
                    RmqKind::Min => it.min().unwrap_or(u32::MAX),
                    RmqKind::Max => it.max().unwrap_or(0),
                };
                // SAFETY: block index written once.
                unsafe { view.write(b, v) };
            });
        }
        let summary = SparseTable::build(&mins, kind);
        Self {
            kind,
            data: data.to_vec(),
            summary,
        }
    }

    /// Reduction over the inclusive range `[lo, hi]`.
    #[inline]
    pub fn query(&self, lo: usize, hi: usize) -> u32 {
        assert!(
            lo <= hi && hi < self.data.len(),
            "bad RMQ range [{lo}, {hi}]"
        );
        let (bl, bh) = (lo / Self::BLOCK, hi / Self::BLOCK);
        let scan = |a: usize, b: usize| -> u32 {
            let it = self.data[a..=b].iter().copied();
            match self.kind {
                RmqKind::Min => it.min().unwrap(),
                RmqKind::Max => it.max().unwrap(),
            }
        };
        if bl == bh {
            return scan(lo, hi);
        }
        let left = scan(lo, (bl + 1) * Self::BLOCK - 1);
        let right = scan(bh * Self::BLOCK, hi);
        let mut best = match self.kind {
            RmqKind::Min => left.min(right),
            RmqKind::Max => left.max(right),
        };
        if bl < bh - 1 {
            let mid = self.summary.query(bl + 1, bh - 1);
            best = match self.kind {
                RmqKind::Min => best.min(mid),
                RmqKind::Max => best.max(mid),
            };
        }
        best
    }

    /// Bytes of auxiliary memory held.
    pub fn bytes(&self) -> usize {
        self.data.len() * 4 + self.summary.bytes()
    }
}

/// Block-decomposed **position-returning** RMQ: like [`BlockRmq`] but
/// [`query`](ArgRmq::query) returns the *index* of an extremal element
/// instead of its value — the form Euler-tour LCA needs (the argmin of the
/// depth array over a tour interval names the LCA node).
///
/// Space is the linear [`BlockRmq`] trade: one `u32` copy of the input plus
/// an `O((n/B) log(n/B))` summary of per-block extremum *positions*.
/// Queries scan the two boundary blocks (`O(B)`) and combine with one
/// `O(1)` summary lookup. On ties, any extremal position may be returned
/// (within one block the leftmost wins, but combining block winners keeps
/// whichever compared first).
pub struct ArgRmq {
    kind: RmqKind,
    data: Vec<u32>,
    /// `levels[k][i]` = position (into `data`) of the extremum over blocks
    /// `i .. i + 2^k`; level 0 holds the per-block extremum positions.
    levels: Vec<Vec<u32>>,
}

impl ArgRmq {
    /// Elements per block (same rationale as [`BlockRmq::BLOCK`]).
    pub const BLOCK: usize = 32;

    /// Build over `data` (copied). `O(n)` work for the block pass plus
    /// `O((n/B) log(n/B))` for the summary, `O(log n)` span.
    pub fn build(data: &[u32], kind: RmqKind) -> Self {
        Self::build_from(data.to_vec(), kind)
    }

    /// [`build`](Self::build) taking ownership of the key array — the
    /// structure keeps `data` as its scan copy, so callers with a
    /// throwaway buffer (the query index's tour depths) avoid one `O(n)`
    /// copy.
    pub fn build_from(data: Vec<u32>, kind: RmqKind) -> Self {
        let n = data.len();
        if n == 0 {
            return Self {
                kind,
                data: Vec::new(),
                levels: Vec::new(),
            };
        }
        let blocks = n.div_ceil(Self::BLOCK);
        // SAFETY: the per-block scatter below writes every index before use.
        let mut level0: Vec<u32> = unsafe { uninit_vec(blocks) };
        {
            let view = UnsafeSlice::new(&mut level0);
            par_for(blocks, |b| {
                let lo = b * Self::BLOCK;
                let hi = ((b + 1) * Self::BLOCK).min(n);
                let p = arg_scan(&data, lo, hi - 1, kind);
                // SAFETY: block index written once.
                unsafe { view.write(b, p) };
            });
        }
        let mut levels = vec![level0];
        let mut width = 1usize;
        while 2 * width <= blocks {
            let prev = levels.last().unwrap();
            let m = blocks - 2 * width + 1;
            // SAFETY: the scatter below writes every index `0..m` before use.
            let mut next: Vec<u32> = unsafe { uninit_vec(m) };
            {
                let view = UnsafeSlice::new(&mut next);
                let prev_ref = &prev[..];
                par_for(m, |i| {
                    let p = pick(&data, prev_ref[i], prev_ref[i + width], kind);
                    // SAFETY: index i written exactly once.
                    unsafe { view.write(i, p) };
                });
            }
            levels.push(next);
            width *= 2;
        }
        Self { kind, data, levels }
    }

    /// Number of elements indexed.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the structure indexes no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Position of the extremum over the **inclusive** range `[lo, hi]`.
    /// Panics if empty or out of bounds.
    pub fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(
            lo <= hi && hi < self.data.len(),
            "bad RMQ range [{lo}, {hi}] (n={})",
            self.data.len()
        );
        let (bl, bh) = (lo / Self::BLOCK, hi / Self::BLOCK);
        if bl == bh {
            return arg_scan(&self.data, lo, hi, self.kind) as usize;
        }
        let left = arg_scan(&self.data, lo, (bl + 1) * Self::BLOCK - 1, self.kind);
        let right = arg_scan(&self.data, bh * Self::BLOCK, hi, self.kind);
        let mut best = pick(&self.data, left, right, self.kind);
        if bl + 1 < bh {
            // Summary lookup over the fully covered blocks [bl+1, bh-1].
            let len = bh - 1 - bl;
            let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
            let w = 1usize << k;
            let a = self.levels[k][bl + 1];
            let b = self.levels[k][bh - w];
            best = pick(
                &self.data,
                pick(&self.data, a, b, self.kind),
                best,
                self.kind,
            );
        }
        best as usize
    }

    /// Bytes of auxiliary memory held.
    pub fn bytes(&self) -> usize {
        4 * (self.data.len() + self.levels.iter().map(|l| l.len()).sum::<usize>())
    }
}

/// Leftmost extremal position in `data[lo..=hi]` (inclusive, non-empty).
#[inline]
fn arg_scan(data: &[u32], lo: usize, hi: usize, kind: RmqKind) -> u32 {
    let mut best = lo;
    for i in lo + 1..=hi {
        let better = match kind {
            RmqKind::Min => data[i] < data[best],
            RmqKind::Max => data[i] > data[best],
        };
        if better {
            best = i;
        }
    }
    best as u32
}

/// The better of two positions by the keyed comparison (`a` wins ties).
#[inline]
fn pick(data: &[u32], a: u32, b: u32, kind: RmqKind) -> u32 {
    let better = match kind {
        RmqKind::Min => data[b as usize] < data[a as usize],
        RmqKind::Max => data[b as usize] > data[a as usize],
    };
    if better {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{hash64, Rng};

    fn naive(data: &[u32], lo: usize, hi: usize, kind: RmqKind) -> u32 {
        let it = data[lo..=hi].iter().copied();
        match kind {
            RmqKind::Min => it.min().unwrap(),
            RmqKind::Max => it.max().unwrap(),
        }
    }

    #[test]
    fn matches_naive_on_random_data() {
        let n = 5000;
        let data: Vec<u32> = (0..n)
            .map(|i| (hash64(i as u64) % 1_000_000) as u32)
            .collect();
        let tmin = SparseTable::build(&data, RmqKind::Min);
        let tmax = SparseTable::build(&data, RmqKind::Max);
        let mut r = Rng::new(11);
        for _ in 0..2000 {
            let lo = r.index(n);
            let hi = lo + r.index(n - lo);
            assert_eq!(tmin.query(lo, hi), naive(&data, lo, hi, RmqKind::Min));
            assert_eq!(tmax.query(lo, hi), naive(&data, lo, hi, RmqKind::Max));
        }
    }

    #[test]
    fn single_element_and_full_range() {
        let data = vec![7u32];
        let t = SparseTable::build(&data, RmqKind::Min);
        assert_eq!(t.query(0, 0), 7);
        assert_eq!(t.len(), 1);

        let data: Vec<u32> = (0..1027).map(|i| (hash64(i) % 100) as u32).collect();
        let t = SparseTable::build(&data, RmqKind::Max);
        assert_eq!(t.query(0, data.len() - 1), *data.iter().max().unwrap());
        for i in 0..data.len() {
            assert_eq!(t.query(i, i), data[i]);
        }
    }

    #[test]
    fn power_of_two_boundaries() {
        for n in [2usize, 4, 8, 1024, 1025, 1023] {
            let data: Vec<u32> = (0..n).map(|i| (hash64(i as u64 + 3) % 50) as u32).collect();
            let t = SparseTable::build(&data, RmqKind::Min);
            for lo in [0, n / 2, n - 1] {
                for hi in [lo, (lo + n / 2).min(n - 1), n - 1] {
                    assert_eq!(t.query(lo, hi), naive(&data, lo, hi, RmqKind::Min), "n={n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad RMQ range")]
    fn out_of_bounds_panics() {
        let t = SparseTable::build(&[1, 2, 3], RmqKind::Min);
        t.query(1, 3);
    }

    #[test]
    fn bytes_accounting_positive() {
        let data = vec![0u32; 4096];
        let t = SparseTable::build(&data, RmqKind::Min);
        // n log n scale: at least n * levels/2 entries.
        assert!(t.bytes() >= 4096 * 4);
    }

    #[test]
    fn block_rmq_matches_sparse_table() {
        let n = 10_000;
        let data: Vec<u32> = (0..n)
            .map(|i| (hash64(i as u64) % 1_000_000) as u32)
            .collect();
        for kind in [RmqKind::Min, RmqKind::Max] {
            let full = SparseTable::build(&data, kind);
            let blocked = BlockRmq::build(&data, kind);
            let mut r = Rng::new(23);
            for _ in 0..3000 {
                let lo = r.index(n);
                let hi = lo + r.index(n - lo);
                assert_eq!(
                    blocked.query(lo, hi),
                    full.query(lo, hi),
                    "[{lo},{hi}] {kind:?}"
                );
            }
        }
    }

    #[test]
    fn block_rmq_boundary_cases() {
        // Sizes around the block boundary, and ranges that live entirely
        // inside one block, span exactly two, and span the whole array.
        for n in [
            1usize,
            BlockRmq::BLOCK - 1,
            BlockRmq::BLOCK,
            BlockRmq::BLOCK + 1,
            3 * BlockRmq::BLOCK,
        ] {
            let data: Vec<u32> = (0..n)
                .map(|i| (hash64(i as u64 + 7) % 100) as u32)
                .collect();
            let b = BlockRmq::build(&data, RmqKind::Min);
            for lo in 0..n {
                for hi in [lo, (lo + BlockRmq::BLOCK).min(n - 1), n - 1] {
                    assert_eq!(b.query(lo, hi), naive(&data, lo, hi, RmqKind::Min), "n={n}");
                }
            }
        }
    }

    #[test]
    fn arg_rmq_positions_hold_the_extremum() {
        let n = 10_000;
        let data: Vec<u32> = (0..n)
            .map(|i| (hash64(i as u64 + 13) % 1_000_000) as u32)
            .collect();
        for kind in [RmqKind::Min, RmqKind::Max] {
            let arg = ArgRmq::build(&data, kind);
            let mut r = Rng::new(31);
            for _ in 0..3000 {
                let lo = r.index(n);
                let hi = lo + r.index(n - lo);
                let p = arg.query(lo, hi);
                assert!((lo..=hi).contains(&p), "[{lo},{hi}] returned {p}");
                assert_eq!(
                    data[p],
                    naive(&data, lo, hi, kind),
                    "[{lo},{hi}] {kind:?}: position {p} not extremal"
                );
            }
        }
    }

    #[test]
    fn arg_rmq_exact_positions_on_distinct_data() {
        // A permutation: every value unique, so the argmin is unique too.
        let n = 3 * ArgRmq::BLOCK + 7;
        let data: Vec<u32> = (0..n as u32).map(|i| (i * 37) % n as u32).collect();
        let arg = ArgRmq::build(&data, RmqKind::Min);
        for lo in 0..n {
            for hi in [lo, (lo + ArgRmq::BLOCK).min(n - 1), n - 1] {
                let want = (lo..=hi).min_by_key(|&i| data[i]).unwrap();
                assert_eq!(arg.query(lo, hi), want, "[{lo},{hi}]");
            }
        }
    }

    #[test]
    fn arg_rmq_degenerate_sizes() {
        assert!(ArgRmq::build(&[], RmqKind::Min).is_empty());
        let one = ArgRmq::build(&[42], RmqKind::Max);
        assert_eq!(one.len(), 1);
        assert_eq!(one.query(0, 0), 0);
        // All-equal input: any position is extremal; must stay in range.
        let flat = ArgRmq::build(&vec![5u32; 100], RmqKind::Min);
        let p = flat.query(10, 90);
        assert!((10..=90).contains(&p));
        assert!(flat.bytes() >= 100 * 4);
    }

    #[test]
    #[should_panic(expected = "bad RMQ range")]
    fn arg_rmq_out_of_bounds_panics() {
        let t = ArgRmq::build(&[1, 2, 3], RmqKind::Min);
        t.query(0, 3);
    }

    #[test]
    fn block_rmq_is_much_smaller() {
        let data = vec![1u32; 1 << 18];
        let full = SparseTable::build(&data, RmqKind::Min);
        let blocked = BlockRmq::build(&data, RmqKind::Min);
        assert!(
            blocked.bytes() * 4 < full.bytes(),
            "{} vs {}",
            blocked.bytes(),
            full.bytes()
        );
    }
}
