//! Concurrent hash bag — the frontier container behind the paper's
//! "hash bag and local search" connectivity optimization (§5, Fig. 6).
//!
//! A hash bag supports lock-free parallel insertion of ids and a parallel
//! `extract_all` that compacts the contents into a dense vector. Unlike a
//! hash *set* it tolerates duplicate inserts cheaply (BFS frontiers may
//! discover a vertex twice; the visited-bit already deduplicates logically).
//!
//! Design (after Wang et al.): a sequence of geometrically growing chunks of
//! `AtomicU32` slots. An insert hashes to a slot in the current chunk and
//! linear-probes a bounded number of times; if the chunk looks full it
//! advances the shared chunk cursor and retries in the next chunk. Because
//! chunk sizes double, the amortized cost per insert is `O(1)` expected and
//! the total capacity adapts to the actual frontier size without
//! preallocating `O(n)` per round.

use crate::pack::pack_map_extend;
use crate::rng::hash64;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

const EMPTY: u32 = u32::MAX;
/// Probes in a chunk before spilling to the next one.
const MAX_PROBES: usize = 16;
/// Slots in the first chunk.
const FIRST_CHUNK: usize = 1 << 12;

std::thread_local! {
    /// Per-thread insertion nonce. A bag is never *searched*, only drained,
    /// so slot choice need not be value-addressable; salting each insertion
    /// with a thread-local counter spreads duplicate values over the whole
    /// chunk instead of piling them on one probe sequence.
    static INSERT_NONCE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// A lock-free bag of `u32` ids (values must be `< u32::MAX`).
///
/// Deliberately keeps **no shared insertion counter**: one `fetch_add` per
/// insert would serialize all inserting threads on a single cache line,
/// defeating the purpose of the structure. Size queries scan the chunks.
pub struct HashBag {
    chunks: Vec<Box<[AtomicU32]>>,
    /// Index of the chunk currently accepting inserts.
    active: AtomicUsize,
}

fn new_chunk(size: usize) -> Box<[AtomicU32]> {
    (0..size).map(|_| AtomicU32::new(EMPTY)).collect()
}

/// Parallel count of occupied slots in a chunk.
fn fastbcc_primitives_count(chunk: &[AtomicU32]) -> usize {
    crate::reduce::count(chunk.len(), |i| chunk[i].load(Ordering::Relaxed) != EMPTY)
}

impl HashBag {
    /// Create a bag able to hold up to `capacity` ids across all chunks.
    /// Chunks are preallocated (sizes `FIRST_CHUNK`, 2×, 4×, …) so inserts
    /// never allocate; the total is ≈ `2 * max(capacity, FIRST_CHUNK)` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut chunks = Vec::new();
        let mut size = FIRST_CHUNK;
        let mut total = 0usize;
        // Keep the load factor of the final configuration below 1/2.
        while total < 2 * capacity.max(FIRST_CHUNK) {
            chunks.push(new_chunk(size));
            total += size;
            size *= 2;
        }
        Self {
            chunks,
            active: AtomicUsize::new(0),
        }
    }

    /// True iff this bag can hold `capacity` ids under the same load-factor
    /// invariant [`HashBag::with_capacity`] establishes — the check pooled
    /// scratch owners use to decide whether a reused bag must be rebuilt
    /// (bags cannot grow after construction).
    pub fn fits(&self, capacity: usize) -> bool {
        let total: usize = self.chunks.iter().map(|c| c.len()).sum();
        total >= 2 * capacity.max(FIRST_CHUNK)
    }

    /// Insert `v` (duplicates allowed). Lock-free; panics only if every
    /// chunk is exhausted, which the capacity invariant prevents.
    pub fn insert(&self, v: u32) {
        debug_assert_ne!(v, EMPTY, "u32::MAX is the reserved empty marker");
        let mut ci = self.active.load(Ordering::Relaxed);
        let nonce = INSERT_NONCE.with(|c| {
            let mut x = c.get();
            if x == 0 {
                // First insert on this thread: derive a distinct stream id.
                static THREAD_SEQ: AtomicUsize = AtomicUsize::new(1);
                x = hash64(THREAD_SEQ.fetch_add(1, Ordering::Relaxed) as u64) | 1;
            }
            c.set(x.wrapping_add(0x9E37_79B9_7F4A_7C15));
            x
        });
        let h = hash64(v as u64 ^ nonce);
        loop {
            assert!(ci < self.chunks.len(), "hash bag capacity exhausted");
            let chunk = &self.chunks[ci];
            let mask = chunk.len() - 1;
            let base = h as usize & mask;
            for p in 0..MAX_PROBES {
                let slot = &chunk[(base + p) & mask];
                if slot.load(Ordering::Relaxed) == EMPTY
                    && slot
                        .compare_exchange(EMPTY, v, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    return;
                }
            }
            // Chunk congested: advance the shared cursor (idempotent race —
            // losers simply observe the new value).
            let _ = self
                .active
                .compare_exchange(ci, ci + 1, Ordering::Relaxed, Ordering::Relaxed);
            ci = self.active.load(Ordering::Relaxed).max(ci + 1);
        }
    }

    /// Number of elements currently stored (parallel scan of used chunks;
    /// call at quiescence).
    pub fn len(&self) -> usize {
        let used_chunks = (self.active.load(Ordering::Relaxed) + 1).min(self.chunks.len());
        (0..used_chunks)
            .map(|ci| {
                let chunk = &self.chunks[ci];
                fastbcc_primitives_count(chunk)
            })
            .sum()
    }

    /// True if no element is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all contents into a dense vector and clear the bag.
    /// Parallel `O(slots scanned)` work.
    pub fn extract_all(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        self.extract_all_into(&mut out);
        out
    }

    /// [`HashBag::extract_all`] into a caller-owned buffer: `out` is
    /// cleared, then each used chunk is parallel-packed directly onto its
    /// end — no per-chunk staging vector. Repeated drains into a pooled
    /// buffer (the LDD's per-round frontier) touch the allocator only
    /// when the buffer has never been this full before.
    pub fn extract_all_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        let used_chunks = (self.active.load(Ordering::Relaxed) + 1).min(self.chunks.len());
        for ci in 0..used_chunks {
            let chunk = &self.chunks[ci];
            pack_map_extend(
                chunk.len(),
                |i| chunk[i].load(Ordering::Relaxed) != EMPTY,
                |i| chunk[i].load(Ordering::Relaxed),
                out,
            );
        }
        self.reset();
    }

    /// Clear the bag for reuse (parallel).
    pub fn reset(&mut self) {
        let used_chunks = (self.active.load(Ordering::Relaxed) + 1).min(self.chunks.len());
        for ci in 0..used_chunks {
            let chunk = &self.chunks[ci];
            crate::par::par_for(chunk.len(), |i| {
                chunk[i].store(EMPTY, Ordering::Relaxed);
            });
        }
        self.active.store(0, Ordering::Relaxed);
    }

    /// Bytes of memory held (for space accounting).
    pub fn bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_for;

    #[test]
    fn insert_then_extract_roundtrip() {
        let mut bag = HashBag::with_capacity(10_000);
        par_for(10_000, |i| bag.insert(i as u32));
        let mut got = bag.extract_all();
        got.sort_unstable();
        assert_eq!(got, (0..10_000u32).collect::<Vec<_>>());
        assert!(bag.is_empty());
    }

    #[test]
    fn duplicates_are_preserved_as_bag_semantics() {
        let mut bag = HashBag::with_capacity(1000);
        par_for(1000, |i| bag.insert((i % 10) as u32));
        let got = bag.extract_all();
        assert_eq!(got.len(), 1000);
        assert!(got.iter().all(|&v| v < 10));
    }

    #[test]
    fn reuse_after_extract() {
        let mut bag = HashBag::with_capacity(5000);
        for round in 0..5u32 {
            par_for(3000, |i| bag.insert(i as u32 + round * 100_000));
            let got = bag.extract_all();
            assert_eq!(got.len(), 3000, "round {round}");
            assert!(got.iter().all(|&v| v / 100_000 == round));
        }
    }

    #[test]
    fn overflow_spills_into_later_chunks() {
        // Insert more than the first chunk can hold: forces chunk advance.
        let mut bag = HashBag::with_capacity(FIRST_CHUNK * 3);
        let n = FIRST_CHUNK * 2;
        par_for(n, |i| bag.insert(i as u32));
        assert!(
            bag.active.load(Ordering::Relaxed) > 0,
            "expected spill to chunk 1+"
        );
        let mut got = bag.extract_all();
        got.sort_unstable();
        assert_eq!(got.len(), n);
        assert_eq!(got, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_extract() {
        let mut bag = HashBag::with_capacity(100);
        assert!(bag.extract_all().is_empty());
    }

    #[test]
    fn extract_into_reuses_the_buffer() {
        let mut bag = HashBag::with_capacity(4000);
        let mut out = Vec::new();
        for round in 0..4u32 {
            par_for(2000, |i| bag.insert(i as u32));
            bag.extract_all_into(&mut out);
            out.sort_unstable();
            assert_eq!(out, (0..2000u32).collect::<Vec<_>>(), "round {round}");
            assert!(bag.is_empty());
        }
        let cap = out.capacity();
        par_for(2000, |i| bag.insert(i as u32));
        bag.extract_all_into(&mut out);
        assert_eq!(out.capacity(), cap, "warm drain must not reallocate");
    }

    #[test]
    fn capacity_accounting() {
        let bag = HashBag::with_capacity(1 << 16);
        assert!(bag.bytes() >= (1 << 17) * 4);
    }
}
