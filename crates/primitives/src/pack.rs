//! Parallel filter/pack: `O(n)` work, `O(log n)` span.
//!
//! Pack compacts the elements (or indices) satisfying a predicate into a
//! dense output array, preserving order. It is the standard
//! count–scan–scatter composition: per-block counts, an exclusive scan for
//! block offsets, then a parallel scatter of survivors into their slots.
//! Used throughout the repo for frontier compaction, edge filtering, and
//! extracting fence edges / articulation points.

use crate::par::{block_bounds, num_blocks, DEFAULT_GRAIN};
use crate::scan::prefix_sums;
use crate::slice::{uninit_vec, UnsafeSlice};
use rayon::prelude::*;

/// Pack `f(i)` for every `i` in `0..n` with `keep(i)`, preserving index order.
///
/// **`keep` must be pure**: it is evaluated twice per index (once to count,
/// once to scatter) and must return the same answer both times; a
/// side-effecting or racy predicate desynchronizes the two passes and
/// leaves uninitialized output slots.
pub fn pack_map<T, K, F>(n: usize, keep: K, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);

    // Count survivors per block.
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| (w[0]..w[1]).filter(|&i| keep(i)).count())
        .collect();
    let total = prefix_sums(&mut offsets);

    // Scatter.
    let mut out: Vec<T> = unsafe { uninit_vec(total) };
    {
        let view = UnsafeSlice::new(&mut out);
        bounds.par_windows(2).enumerate().for_each(|(b, w)| {
            let mut pos = offsets[b];
            for i in w[0]..w[1] {
                if keep(i) {
                    // SAFETY: each output slot is written by exactly one
                    // block at exactly one position (disjoint by the scan).
                    unsafe { view.write(pos, f(i)) };
                    pos += 1;
                }
            }
        });
    }
    out
}

/// [`pack_map`] into a caller-provided buffer, reusing its allocation.
/// The buffer is cleared first; on return it holds exactly the survivors.
pub fn pack_map_into<T, K, F>(n: usize, keep: K, f: F, out: &mut Vec<T>)
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    F: Fn(usize) -> T + Sync,
{
    out.clear();
    if n == 0 {
        return;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| (w[0]..w[1]).filter(|&i| keep(i)).count())
        .collect();
    let total = prefix_sums(&mut offsets);
    // SAFETY: every slot in 0..total is written exactly once below.
    unsafe { crate::slice::reuse_uninit(out, total) };
    let view = UnsafeSlice::new(out.as_mut_slice());
    bounds.par_windows(2).enumerate().for_each(|(b, w)| {
        let mut pos = offsets[b];
        for i in w[0]..w[1] {
            if keep(i) {
                // SAFETY: disjoint slots by the scan (see pack_map).
                unsafe { view.write(pos, f(i)) };
                pos += 1;
            }
        }
    });
}

/// [`pack_map`] *appending* the survivors to `out` (existing contents are
/// kept). Lets callers compact several sources into one buffer — the
/// hash-bag drain packs each chunk in turn — without a staging vector per
/// source.
pub fn pack_map_extend<T, K, F>(n: usize, keep: K, f: F, out: &mut Vec<T>)
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| (w[0]..w[1]).filter(|&i| keep(i)).count())
        .collect();
    let total = prefix_sums(&mut offsets);
    let base = out.len();
    // SAFETY: every appended slot in base..base+total is written exactly
    // once by the scatter below.
    unsafe { crate::slice::extend_uninit(out, total) };
    let view = UnsafeSlice::new(&mut out[base..]);
    bounds.par_windows(2).enumerate().for_each(|(b, w)| {
        let mut pos = offsets[b];
        for i in w[0]..w[1] {
            if keep(i) {
                // SAFETY: disjoint slots by the scan (see pack_map).
                unsafe { view.write(pos, f(i)) };
                pos += 1;
            }
        }
    });
}

/// Indices in `0..n` satisfying `keep`, in increasing order.
pub fn pack_index<K: Fn(usize) -> bool + Sync>(n: usize, keep: K) -> Vec<u32> {
    debug_assert!(n <= u32::MAX as usize);
    pack_map(n, &keep, |i| i as u32)
}

/// [`pack_index`] into a caller-provided buffer, reusing its allocation.
pub fn pack_index_into<K: Fn(usize) -> bool + Sync>(n: usize, keep: K, out: &mut Vec<u32>) {
    debug_assert!(n <= u32::MAX as usize);
    pack_map_into(n, &keep, |i| i as u32, out);
}

/// Indices in `0..n` satisfying `keep`, as `usize`.
pub fn pack_index_usize<K: Fn(usize) -> bool + Sync>(n: usize, keep: K) -> Vec<usize> {
    pack_map(n, &keep, |i| i)
}

/// Pack the elements of `xs` satisfying the per-element predicate.
pub fn filter_slice<T, P>(xs: &[T], pred: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    P: Fn(&T) -> bool + Sync,
{
    pack_map(xs.len(), |i| pred(&xs[i]), |i| xs[i])
}

/// Combined filter+map over a slice.
pub fn filter_map_slice<T, U, F>(xs: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Sync,
{
    // Two-pass evaluation of `f` keeps this allocation-free per element; the
    // callers' `f` is cheap (tag predicates), so recomputation is the right
    // trade versus materializing Options.
    pack_map(xs.len(), |i| f(&xs[i]).is_some(), |i| f(&xs[i]).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::hash64;

    #[test]
    fn pack_index_matches_sequential() {
        for n in [0usize, 1, 100, 4096, 50_000] {
            let got = pack_index(n, |i| hash64(i as u64).is_multiple_of(3));
            let want: Vec<u32> = (0..n)
                .filter(|&i| hash64(i as u64).is_multiple_of(3))
                .map(|i| i as u32)
                .collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn pack_all_and_none() {
        let all = pack_index(1000, |_| true);
        assert_eq!(all.len(), 1000);
        assert!(all.iter().enumerate().all(|(i, &x)| x == i as u32));
        let none = pack_index(1000, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn pack_map_extend_appends_in_order() {
        let mut out: Vec<u32> = vec![999];
        pack_map_extend(10_000, |i| i % 3 == 0, |i| i as u32, &mut out);
        pack_map_extend(0, |_| true, |i| i as u32, &mut out);
        pack_map_extend(100, |i| i >= 98, |i| i as u32, &mut out);
        let mut want = vec![999u32];
        want.extend((0..10_000u32).filter(|i| i % 3 == 0));
        want.extend([98, 99]);
        assert_eq!(out, want);
    }

    #[test]
    fn filter_slice_preserves_order() {
        let xs: Vec<u64> = (0..30_000).map(hash64).collect();
        let got = filter_slice(&xs, |&x| x % 2 == 0);
        let want: Vec<u64> = xs.iter().copied().filter(|&x| x % 2 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_map_slice_works() {
        let xs: Vec<u32> = (0..10_000).collect();
        let got = filter_map_slice(&xs, |&x| if x % 7 == 0 { Some(x * 2) } else { None });
        let want: Vec<u32> = (0..10_000).filter(|x| x % 7 == 0).map(|x| x * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn randomized_against_sequential() {
        let mut r = crate::rng::Rng::new(77);
        for _ in 0..10 {
            let n = r.index(30_000);
            let data: Vec<u64> = (0..n).map(|_| r.next_u64() % 100).collect();
            let got = filter_slice(&data, |&x| x < 50);
            let want: Vec<u64> = data.iter().copied().filter(|&x| x < 50).collect();
            assert_eq!(got, want);
        }
    }
}
