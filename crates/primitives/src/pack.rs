//! Parallel filter/pack: `O(n)` work, `O(log n)` span.
//!
//! Pack compacts the elements (or indices) satisfying a predicate into a
//! dense output array, preserving order. It is the standard
//! count–scan–scatter composition: per-block counts, an exclusive scan for
//! block offsets, then a parallel scatter of survivors into their slots.
//! Used throughout the repo for frontier compaction, edge filtering, and
//! extracting fence edges / articulation points.

use crate::par::{block_bounds, num_blocks, DEFAULT_GRAIN};
use crate::scan::prefix_sums;
use crate::slice::{uninit_vec, UnsafeSlice};
use rayon::prelude::*;

/// Pack `f(i)` for every `i` in `0..n` with `keep(i)`, preserving index order.
///
/// **`keep` must be pure**: it is evaluated twice per index (once to count,
/// once to scatter) and must return the same answer both times; a
/// side-effecting or racy predicate desynchronizes the two passes and
/// leaves uninitialized output slots.
pub fn pack_map<T, K, F>(n: usize, keep: K, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);

    // Count survivors per block.
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| (w[0]..w[1]).filter(|&i| keep(i)).count())
        .collect();
    let total = prefix_sums(&mut offsets);

    // Scatter.
    // SAFETY: the per-block scatter below covers exactly `0..total` (the
    // scanned survivor counts), so every index is written before use.
    let mut out: Vec<T> = unsafe { uninit_vec(total) };
    {
        let view = UnsafeSlice::new(&mut out);
        bounds.par_windows(2).enumerate().for_each(|(b, w)| {
            let mut pos = offsets[b];
            for i in w[0]..w[1] {
                if keep(i) {
                    // SAFETY: each output slot is written by exactly one
                    // block at exactly one position (disjoint by the scan).
                    unsafe { view.write(pos, f(i)) };
                    pos += 1;
                }
            }
        });
    }
    out
}

/// [`pack_map`] into a caller-provided buffer, reusing its allocation.
/// The buffer is cleared first; on return it holds exactly the survivors.
pub fn pack_map_into<T, K, F>(n: usize, keep: K, f: F, out: &mut Vec<T>)
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    F: Fn(usize) -> T + Sync,
{
    out.clear();
    if n == 0 {
        return;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| (w[0]..w[1]).filter(|&i| keep(i)).count())
        .collect();
    let total = prefix_sums(&mut offsets);
    // SAFETY: every slot in 0..total is written exactly once below.
    unsafe { crate::slice::reuse_uninit(out, total) };
    let view = UnsafeSlice::new(out.as_mut_slice());
    bounds.par_windows(2).enumerate().for_each(|(b, w)| {
        let mut pos = offsets[b];
        for i in w[0]..w[1] {
            if keep(i) {
                // SAFETY: disjoint slots by the scan (see pack_map).
                unsafe { view.write(pos, f(i)) };
                pos += 1;
            }
        }
    });
}

/// [`pack_map`] *appending* the survivors to `out` (existing contents are
/// kept). Lets callers compact several sources into one buffer — the
/// hash-bag drain packs each chunk in turn — without a staging vector per
/// source.
pub fn pack_map_extend<T, K, F>(n: usize, keep: K, f: F, out: &mut Vec<T>)
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    let bounds = block_bounds(n, blocks);
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| (w[0]..w[1]).filter(|&i| keep(i)).count())
        .collect();
    let total = prefix_sums(&mut offsets);
    let base = out.len();
    // SAFETY: every appended slot in base..base+total is written exactly
    // once by the scatter below.
    unsafe { crate::slice::extend_uninit(out, total) };
    let view = UnsafeSlice::new(&mut out[base..]);
    bounds.par_windows(2).enumerate().for_each(|(b, w)| {
        let mut pos = offsets[b];
        for i in w[0]..w[1] {
            if keep(i) {
                // SAFETY: disjoint slots by the scan (see pack_map).
                unsafe { view.write(pos, f(i)) };
                pos += 1;
            }
        }
    });
}

/// Pack the elements of `src` that differ from `sentinel` into `out`
/// (cleared first), preserving order — the frontier-compaction shape of
/// `edgemap`'s sparse rounds, where `sentinel` is the `EMPTY` slot marker.
///
/// With the `simd` feature this dispatches to [`pack_neq_into_vectorized`];
/// outputs are byte-identical either way.
pub fn pack_neq_into(src: &[u32], sentinel: u32, out: &mut Vec<u32>) {
    #[cfg(feature = "simd")]
    {
        pack_neq_into_vectorized(src, sentinel, out)
    }
    #[cfg(not(feature = "simd"))]
    {
        pack_neq_into_scalar(src, sentinel, out)
    }
}

/// The scalar [`pack_neq_into`] path (always compiled): the generic
/// count–scan–scatter pack with a branchy per-element predicate.
pub fn pack_neq_into_scalar(src: &[u32], sentinel: u32, out: &mut Vec<u32>) {
    pack_map_into(src.len(), |i| src[i] != sentinel, |i| src[i], out);
}

/// Kernelized [`pack_neq_into`] (always compiled): branchless chunked
/// compaction via [`crate::kernels::compact_neq_u32`].
///
/// Sequential runs count with one branchless predicate-sum sweep, then
/// compact in one pass — no offsets buffer, no scan machinery, and the
/// output is sized to exactly the survivor count (byte-identical capacity
/// behavior to the scalar path, which the workspace envelope tests pin).
/// Parallel runs count per block, scan the offsets, then compact each
/// block into its disjoint output range through the kernels' on-stack
/// chunk buffer (which absorbs the predicated stores' one-slot overhang,
/// so no block touches its neighbor's slots).
pub fn pack_neq_into_vectorized(src: &[u32], sentinel: u32, out: &mut Vec<u32>) {
    use crate::kernels::{compact_neq_u32, count_neq_u32};
    let n = src.len();
    out.clear();
    if n == 0 {
        return;
    }
    let blocks = num_blocks(n, DEFAULT_GRAIN);
    if blocks <= 1 || crate::par::num_threads() <= 1 {
        let kept = count_neq_u32(src, sentinel);
        // SAFETY: `compact_neq_u32` writes exactly `kept` slots.
        unsafe { crate::slice::reuse_uninit(out, kept) };
        let wrote = compact_neq_u32(src, sentinel, out.as_mut_slice());
        debug_assert_eq!(wrote, kept);
        return;
    }
    let bounds = block_bounds(n, blocks);
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| count_neq_u32(&src[w[0]..w[1]], sentinel))
        .collect();
    let total = prefix_sums(&mut offsets);
    // SAFETY: the per-block compactions below write the disjoint ranges
    // `offsets[b]..offsets[b+1]`, which tile `0..total` exactly.
    unsafe { crate::slice::reuse_uninit(out, total) };
    let view = UnsafeSlice::new(out.as_mut_slice());
    bounds.par_windows(2).enumerate().for_each(|(b, w)| {
        let start = offsets[b];
        let end = if b + 1 < offsets.len() {
            offsets[b + 1]
        } else {
            total
        };
        // SAFETY: disjoint ranges by the scan; see above.
        let dst = unsafe { view.slice_mut(start, end - start) };
        let kept = compact_neq_u32(&src[w[0]..w[1]], sentinel, dst);
        debug_assert_eq!(kept, end - start);
    });
}

/// Pack the set-bit indices of a bitmap (`n` logical bits across `words`)
/// into `out` (cleared first), ascending — the claimed-vertex sweep of
/// `edgemap`'s dense rounds. Bits at or past `n` must be zero.
///
/// Dispatches like [`pack_neq_into`]; outputs are byte-identical.
pub fn pack_bits_into(words: &[u64], n: usize, out: &mut Vec<u32>) {
    #[cfg(feature = "simd")]
    {
        pack_bits_into_vectorized(words, n, out)
    }
    #[cfg(not(feature = "simd"))]
    {
        pack_bits_into_scalar(words, n, out)
    }
}

/// The scalar [`pack_bits_into`] path (always compiled): a per-index
/// test-the-bit pack, exactly the loop `edgemap` used to inline.
pub fn pack_bits_into_scalar(words: &[u64], n: usize, out: &mut Vec<u32>) {
    debug_assert!(words.len() * 64 >= n);
    pack_map_into(n, |v| words[v / 64] >> (v % 64) & 1 == 1, |v| v as u32, out);
}

/// Kernelized [`pack_bits_into`] (always compiled): per-block `popcnt`
/// counts, an offsets scan, then `trailing_zeros` extraction — 64 bits
/// per load instead of one, skipping zero words in a single test.
pub fn pack_bits_into_vectorized(words: &[u64], n: usize, out: &mut Vec<u32>) {
    use crate::kernels::{expand_bits_u32, popcount_words};
    debug_assert!(words.len() * 64 >= n);
    out.clear();
    if n == 0 {
        return;
    }
    let nw = n.div_ceil(64);
    let words = &words[..nw];
    // Blocks of whole words, so extraction never splits a word.
    let word_grain = DEFAULT_GRAIN.div_ceil(64).max(1);
    let blocks = num_blocks(nw, word_grain);
    if blocks <= 1 || crate::par::num_threads() <= 1 {
        let total = popcount_words(words);
        // SAFETY: `expand_bits_u32` writes exactly `total` slots.
        unsafe { crate::slice::reuse_uninit(out, total) };
        let wrote = expand_bits_u32(words, 0, out.as_mut_slice());
        debug_assert_eq!(wrote, total);
        return;
    }
    let bounds = block_bounds(nw, blocks);
    let mut offsets: Vec<usize> = bounds
        .par_windows(2)
        .map(|w| popcount_words(&words[w[0]..w[1]]))
        .collect();
    let total = prefix_sums(&mut offsets);
    // SAFETY: per-block extractions write the disjoint ranges
    // `offsets[b]..offsets[b+1]`, tiling `0..total`.
    unsafe { crate::slice::reuse_uninit(out, total) };
    let view = UnsafeSlice::new(out.as_mut_slice());
    bounds.par_windows(2).enumerate().for_each(|(b, w)| {
        let start = offsets[b];
        let end = if b + 1 < offsets.len() {
            offsets[b + 1]
        } else {
            total
        };
        // SAFETY: disjoint ranges by the scan; see above.
        let dst = unsafe { view.slice_mut(start, end - start) };
        let wrote = expand_bits_u32(&words[w[0]..w[1]], (w[0] * 64) as u32, dst);
        debug_assert_eq!(wrote, end - start);
    });
}

/// Indices in `0..n` satisfying `keep`, in increasing order.
pub fn pack_index<K: Fn(usize) -> bool + Sync>(n: usize, keep: K) -> Vec<u32> {
    debug_assert!(n <= u32::MAX as usize);
    pack_map(n, &keep, |i| i as u32)
}

/// [`pack_index`] into a caller-provided buffer, reusing its allocation.
pub fn pack_index_into<K: Fn(usize) -> bool + Sync>(n: usize, keep: K, out: &mut Vec<u32>) {
    debug_assert!(n <= u32::MAX as usize);
    pack_map_into(n, &keep, |i| i as u32, out);
}

/// Indices in `0..n` satisfying `keep`, as `usize`.
pub fn pack_index_usize<K: Fn(usize) -> bool + Sync>(n: usize, keep: K) -> Vec<usize> {
    pack_map(n, &keep, |i| i)
}

/// Pack the elements of `xs` satisfying the per-element predicate.
pub fn filter_slice<T, P>(xs: &[T], pred: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    P: Fn(&T) -> bool + Sync,
{
    pack_map(xs.len(), |i| pred(&xs[i]), |i| xs[i])
}

/// Combined filter+map over a slice.
pub fn filter_map_slice<T, U, F>(xs: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Sync,
{
    // Two-pass evaluation of `f` keeps this allocation-free per element; the
    // callers' `f` is cheap (tag predicates), so recomputation is the right
    // trade versus materializing Options.
    pack_map(xs.len(), |i| f(&xs[i]).is_some(), |i| f(&xs[i]).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::hash64;

    #[test]
    fn pack_index_matches_sequential() {
        for n in [0usize, 1, 100, 4096, 50_000] {
            let got = pack_index(n, |i| hash64(i as u64).is_multiple_of(3));
            let want: Vec<u32> = (0..n)
                .filter(|&i| hash64(i as u64).is_multiple_of(3))
                .map(|i| i as u32)
                .collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn pack_all_and_none() {
        let all = pack_index(1000, |_| true);
        assert_eq!(all.len(), 1000);
        assert!(all.iter().enumerate().all(|(i, &x)| x == i as u32));
        let none = pack_index(1000, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn pack_map_extend_appends_in_order() {
        let mut out: Vec<u32> = vec![999];
        pack_map_extend(10_000, |i| i % 3 == 0, |i| i as u32, &mut out);
        pack_map_extend(0, |_| true, |i| i as u32, &mut out);
        pack_map_extend(100, |i| i >= 98, |i| i as u32, &mut out);
        let mut want = vec![999u32];
        want.extend((0..10_000u32).filter(|i| i % 3 == 0));
        want.extend([98, 99]);
        assert_eq!(out, want);
    }

    #[test]
    fn filter_slice_preserves_order() {
        let xs: Vec<u64> = (0..30_000).map(hash64).collect();
        let got = filter_slice(&xs, |&x| x % 2 == 0);
        let want: Vec<u64> = xs.iter().copied().filter(|&x| x % 2 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_map_slice_works() {
        let xs: Vec<u32> = (0..10_000).collect();
        let got = filter_map_slice(&xs, |&x| if x % 7 == 0 { Some(x * 2) } else { None });
        let want: Vec<u32> = (0..10_000).filter(|x| x % 7 == 0).map(|x| x * 2).collect();
        assert_eq!(got, want);
    }

    /// Scalar and kernelized pack paths must be byte-identical (values
    /// *and* resulting buffer length) on adversarial lengths at every
    /// thread budget.
    #[test]
    fn vectorized_packs_match_scalar_packs() {
        use crate::kernels::LANES;
        let mut r = crate::rng::Rng::new(42);
        const S: u32 = u32::MAX;
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 63, 64, 65, 50_000] {
            let src: Vec<u32> = (0..n)
                .map(|_| {
                    if r.index(3) == 0 {
                        S
                    } else {
                        r.index(1 << 20) as u32
                    }
                })
                .collect();
            let words = n.div_ceil(64).max(1);
            let mut bits = vec![0u64; words];
            for v in 0..n {
                if r.index(2) == 0 {
                    bits[v / 64] |= 1 << (v % 64);
                }
            }
            for threads in [1usize, 2, 8] {
                crate::par::with_threads(threads, || {
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    pack_neq_into_scalar(&src, S, &mut a);
                    pack_neq_into_vectorized(&src, S, &mut b);
                    assert_eq!(a, b, "pack_neq n={n} threads={threads}");
                    pack_bits_into_scalar(&bits, n, &mut a);
                    pack_bits_into_vectorized(&bits, n, &mut b);
                    assert_eq!(a, b, "pack_bits n={n} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn randomized_against_sequential() {
        let mut r = crate::rng::Rng::new(77);
        for _ in 0..10 {
            let n = r.index(30_000);
            let data: Vec<u64> = (0..n).map(|_| r.next_u64() % 100).collect();
            let got = filter_slice(&data, |&x| x < 50);
            let want: Vec<u64> = data.iter().copied().filter(|&x| x < 50).collect();
            assert_eq!(got, want);
        }
    }
}
