//! Parallel semisort \[GSSB15\]: group equal keys contiguously.
//!
//! A semisort does **not** promise a total order — only that equal keys end
//! up adjacent. The Euler tour construction (paper §5, "we replicate each
//! undirected edge into two directed edges and semisort them, so edges with
//! the same first endpoint are contiguous") needs exactly this.
//!
//! Two entry points:
//!
//! * [`semisort_by_small_key`] — keys are already dense integers `< K`
//!   (vertex ids). A stable counting/radix sort is then a semisort with
//!   `O(n)` work, and it additionally yields CSR-style group offsets.
//! * [`semisort_by_hash`] — arbitrary `u64` keys. We radix-sort by the
//!   SplitMix64 hash of the key, then repair the (rare, expected-`O(1)`
//!   size) hash-collision runs with local sorts. Expected `O(n)` work.

use crate::rng::hash64;
use crate::sort::{counting_sort_by, counting_sort_by_into, offsets_from_sorted, radix_sort_by};

/// Bound on direct counting sort: a single pass pays `O(K·B)` for its
/// per-block histograms, so it only wins while the bucket count stays
/// comparable to the input size; beyond that, adaptive-digit radix wins.
const SMALL_KEY_DIRECT: usize = 1 << 16;

#[inline]
fn use_direct_counting(num_keys: usize, items: usize) -> bool {
    num_keys <= SMALL_KEY_DIRECT && num_keys <= items.max(64) * 8
}

/// Semisort `items` by a dense integer key `< num_keys`.
///
/// Returns `(grouped, offsets)` where `offsets.len() == num_keys + 1` and
/// group `j` occupies `grouped[offsets[j]..offsets[j+1]]`. The grouping is
/// stable (original order within each group).
pub fn semisort_by_small_key<T, F>(items: &[T], num_keys: usize, key: F) -> (Vec<T>, Vec<usize>)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    if use_direct_counting(num_keys, items.len()) {
        return counting_sort_by(items, num_keys, &key);
    }
    let sorted = radix_sort_by(items, num_keys.saturating_sub(1) as u64, |t| key(t) as u64);
    let offsets = offsets_from_sorted(&sorted, num_keys, &key);
    (sorted, offsets)
}

/// [`semisort_by_small_key`] writing the grouped items and the group
/// offsets into caller-owned buffers, reusing their capacity.
///
/// The `O(n)` grouped output and the `O(K)` offsets — the buffers whose
/// capacity warm callers pool — are served from the caller's vectors, so
/// the LDD's per-solve start-round bucketing no longer churns them. The
/// sort's internal `O(K·B)` histogram/cursor tables (and, on the
/// huge-key radix fallback, the ping-pong passes) remain per-call
/// transients.
pub fn semisort_by_small_key_into<T, F>(
    items: &[T],
    num_keys: usize,
    key: F,
    out: &mut Vec<T>,
    offsets_out: &mut Vec<usize>,
) where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    if use_direct_counting(num_keys, items.len()) {
        counting_sort_by_into(items, num_keys, &key, out, offsets_out);
        return;
    }
    *out = radix_sort_by(items, num_keys.saturating_sub(1) as u64, |t| key(t) as u64);
    *offsets_out = offsets_from_sorted(out, num_keys, &key);
}

/// Semisort by an arbitrary `u64` key. Equal keys become contiguous;
/// group order is pseudo-random (by key hash).
pub fn semisort_by_hash<T, F>(items: &[T], key: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.to_vec();
    }
    // Sort by full 64-bit hash: collisions of distinct keys are ~n²/2⁶⁴,
    // i.e. essentially nonexistent, but we repair them anyway for
    // correctness rather than probability-1 hand-waving.
    let mut sorted = radix_sort_by(items, u64::MAX, |t| hash64(key(t)));
    // Repair pass: within a run of equal hashes, group by actual key with a
    // stable insertion sort (runs are expected length ≤ 2).
    let mut i = 0;
    while i < n {
        let h = hash64(key(&sorted[i]));
        let mut j = i + 1;
        while j < n && hash64(key(&sorted[j])) == h {
            j += 1;
        }
        if j - i > 1 {
            sorted[i..j].sort_by_key(|t| key(t));
        }
        i = j;
    }
    sorted
}

/// Check the semisort postcondition: every key's occurrences are contiguous.
/// Exposed for tests across crates.
pub fn is_grouped<T, K: Eq + std::hash::Hash, F: Fn(&T) -> K>(items: &[T], key: F) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut i = 0;
    while i < items.len() {
        let k = key(&items[i]);
        if !seen.insert(k) {
            return false;
        }
        let kref = key(&items[i]);
        while i < items.len() && key(&items[i]) == kref {
            i += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn small_key_groups_and_offsets() {
        let mut r = Rng::new(3);
        for &k in &[1usize, 7, 256, 70_000, 300_000] {
            let n = 20_000;
            let items: Vec<(u32, u32)> = (0..n).map(|i| (r.index(k) as u32, i as u32)).collect();
            let (grouped, offsets) = semisort_by_small_key(&items, k, |&(a, _)| a as usize);
            assert_eq!(grouped.len(), n);
            assert_eq!(offsets.len(), k + 1);
            assert!(is_grouped(&grouped, |&(a, _)| a));
            // Offsets delimit exactly the right groups.
            for j in 0..k {
                for i in offsets[j]..offsets[j + 1] {
                    assert_eq!(grouped[i].0 as usize, j);
                }
            }
            // Stability.
            for w in grouped.windows(2) {
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1);
                }
            }
        }
    }

    #[test]
    fn into_variant_matches_owned_and_reuses_capacity() {
        let mut r = Rng::new(5);
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut offs: Vec<usize> = Vec::new();
        // Cover both the direct-counting and radix paths.
        for &k in &[64usize, 300_000] {
            let n = 20_000;
            let items: Vec<(u32, u32)> = (0..n).map(|i| (r.index(k) as u32, i as u32)).collect();
            let (want, want_offs) = semisort_by_small_key(&items, k, |&(a, _)| a as usize);
            semisort_by_small_key_into(&items, k, |&(a, _)| a as usize, &mut out, &mut offs);
            assert_eq!(out, want);
            assert_eq!(offs, want_offs);
            // A second identical call must be served from capacity.
            let (cap_o, cap_f) = (out.capacity(), offs.capacity());
            semisort_by_small_key_into(&items, k, |&(a, _)| a as usize, &mut out, &mut offs);
            assert_eq!((out.capacity(), offs.capacity()), (cap_o, cap_f));
        }
    }

    #[test]
    fn hash_semisort_groups_arbitrary_keys() {
        let mut r = Rng::new(4);
        let n = 30_000;
        // Keys drawn from a small pool to force many duplicates.
        let pool: Vec<u64> = (0..300).map(|_| r.next_u64()).collect();
        let items: Vec<u64> = (0..n).map(|_| pool[r.index(pool.len())]).collect();
        let grouped = semisort_by_hash(&items, |&x| x);
        assert_eq!(grouped.len(), n);
        assert!(is_grouped(&grouped, |&x| x));
        // Same multiset.
        let mut a = items.clone();
        let mut b = grouped.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_singleton() {
        let (g, o) = semisort_by_small_key::<u32, _>(&[], 10, |&x| x as usize);
        assert!(g.is_empty());
        assert_eq!(o.len(), 11);
        let g = semisort_by_hash(&[42u64], |&x| x);
        assert_eq!(g, vec![42]);
    }

    #[test]
    fn is_grouped_detects_violation() {
        assert!(is_grouped(&[1, 1, 2, 2, 3], |&x: &i32| x));
        assert!(!is_grouped(&[1, 2, 1], |&x: &i32| x));
        assert!(is_grouped::<i32, i32, _>(&[], |&x| x));
    }
}
