//! End-to-end BCC benchmarks — the criterion-facing micro version of
//! Tab. 2 / Fig. 1: FAST-BCC vs GBBS-style vs SM'14-style vs
//! Tarjan–Vishkin vs sequential Hopcroft–Tarjan on one representative of
//! each graph category (smaller than the `table2` binary's suite so a
//! `cargo bench` sweep stays in CI budget).

use criterion::{criterion_group, criterion_main, Criterion};
use fastbcc_baselines::{bfs_bcc, hopcroft_tarjan, sm14, tarjan_vishkin};
use fastbcc_bench::suite::small_suite;
use fastbcc_core::{fast_bcc, BccOpts};
use std::hint::black_box;
use std::time::Duration;

fn bench_bcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcc");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    for spec in small_suite() {
        let g = spec.build(0.05);
        let tag = spec.name.trim_end_matches('*');
        group.bench_function(format!("fast_bcc/{tag}"), |b| {
            b.iter(|| black_box(fast_bcc(&g, BccOpts::default())))
        });
        group.bench_function(format!("bfs_bcc/{tag}"), |b| {
            b.iter(|| black_box(bfs_bcc(&g, 7)))
        });
        group.bench_function(format!("hopcroft_tarjan/{tag}"), |b| {
            b.iter(|| black_box(hopcroft_tarjan(&g, false)))
        });
        group.bench_function(format!("tarjan_vishkin/{tag}"), |b| {
            b.iter(|| black_box(tarjan_vishkin(&g, 5)))
        });
        if sm14(&g).is_ok() {
            group.bench_function(format!("sm14/{tag}"), |b| {
                b.iter(|| black_box(sm14(&g).unwrap()))
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_bcc);
criterion_main!(benches);
