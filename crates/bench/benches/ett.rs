//! Euler-tour / list-ranking microbenchmarks (substrates S15–S16): the
//! *Rooting* phase in isolation, on the two extreme tree shapes (path =
//! worst case for naive traversal, star = worst case for rotation links)
//! plus a random R-MAT spanning tree.

use criterion::{criterion_group, criterion_main, Criterion};
use fastbcc_connectivity::cc::{cc_seq, ldd_uf_jtb, CcOpts};
use fastbcc_connectivity::spanning_forest::forest_adjacency;
use fastbcc_ett::{rank_circular_lists, root_forest};
use fastbcc_graph::generators::classic::{path, star};
use fastbcc_graph::generators::rmat;
use fastbcc_graph::Graph;
use std::hint::black_box;
use std::time::Duration;

fn tree_and_labels(g: &Graph) -> (Graph, Vec<u32>) {
    let cc = cc_seq(g, true);
    (
        forest_adjacency(g.n(), cc.forest.as_ref().unwrap()),
        cc.labels,
    )
}

fn bench_ett(c: &mut Criterion) {
    let mut group = c.benchmark_group("ett");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let n = 1 << 20;
    let chain = path(n);
    let starg = star(n);
    let social = rmat(18, 2 * n, 3);
    let social_tree = {
        let cc = ldd_uf_jtb(
            &social,
            CcOpts {
                want_forest: true,
                ..Default::default()
            },
        );
        (
            forest_adjacency(social.n(), cc.forest.as_ref().unwrap()),
            cc.labels,
        )
    };

    for (tag, g) in [("path1M", &chain), ("star1M", &starg)] {
        let (tree, labels) = tree_and_labels(g);
        group.bench_function(format!("root_forest/{tag}"), |b| {
            b.iter(|| black_box(root_forest(&tree, &labels, 7)))
        });
    }
    group.bench_function("root_forest/rmat18", |b| {
        b.iter(|| black_box(root_forest(&social_tree.0, &social_tree.1, 7)))
    });

    // Pure list ranking on one big circle.
    let order: Vec<u32> = (0..n as u32).collect();
    let mut succ = vec![0u32; n];
    for i in 0..n {
        succ[order[i] as usize] = order[(i + 1) % n];
    }
    group.bench_function("list_rank_circle_1M", |b| {
        b.iter(|| black_box(rank_circular_lists(&succ, &[0], 11)))
    });

    group.finish();
}

criterion_group!(benches, bench_ett);
criterion_main!(benches);
