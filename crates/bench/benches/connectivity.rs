//! Connectivity microbenchmarks (experiment E9 / Thm. 5.1): LDD-UF-JTB vs
//! UF-Async vs BFS-CC on a low-diameter (R-MAT) and a large-diameter
//! (grid) input — the regime split that motivates the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use fastbcc_connectivity::cc::{bfs_cc, cc_seq, ldd_uf_jtb, uf_async, CcOpts};
use fastbcc_connectivity::ldd::LddOpts;
use fastbcc_graph::generators::{grid2d, rmat};
use std::hint::black_box;
use std::time::Duration;

fn bench_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    let social = rmat(17, 1_000_000, 42);
    let grid = grid2d(500, 500, true);

    for (tag, g) in [("rmat17", &social), ("grid500", &grid)] {
        group.bench_function(format!("ldd_uf_jtb/{tag}"), |b| {
            b.iter(|| {
                black_box(ldd_uf_jtb(
                    g,
                    CcOpts {
                        want_forest: true,
                        ..Default::default()
                    },
                ))
            })
        });
        group.bench_function(format!("ldd_uf_jtb_nolocal/{tag}"), |b| {
            b.iter(|| {
                black_box(ldd_uf_jtb(
                    g,
                    CcOpts {
                        ldd: LddOpts {
                            local_search: false,
                            ..Default::default()
                        },
                        want_forest: true,
                    },
                ))
            })
        });
        group.bench_function(format!("uf_async/{tag}"), |b| {
            b.iter(|| black_box(uf_async(g, true)))
        });
        group.bench_function(format!("bfs_cc/{tag}"), |b| {
            b.iter(|| black_box(bfs_cc(g, true)))
        });
        group.bench_function(format!("cc_seq/{tag}"), |b| {
            b.iter(|| black_box(cc_seq(g, true)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cc);
criterion_main!(benches);
