//! Ablation benchmarks over FAST-BCC's design choices (the knobs DESIGN.md
//! calls out): connectivity scheme (LDD-UF-JTB vs UF-Async), local-search
//! granularity control (the Fig. 6 toggle), on one low-diameter and one
//! large-diameter input.

use criterion::{criterion_group, criterion_main, Criterion};
use fastbcc_core::{fast_bcc, BccOpts, CcScheme};
use fastbcc_graph::generators::classic::path;
use fastbcc_graph::generators::{grid2d, rmat};
use std::hint::black_box;
use std::time::Duration;

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    let social = rmat(16, 500_000, 21);
    let grid = grid2d(400, 400, true);
    let chain = path(1_000_000);

    for (tag, g) in [("rmat16", &social), ("grid400", &grid), ("chain1M", &chain)] {
        group.bench_function(format!("ldd+local/{tag}"), |b| {
            b.iter(|| {
                black_box(fast_bcc(
                    g,
                    BccOpts {
                        scheme: CcScheme::LddUfJtb,
                        local_search: true,
                        ..Default::default()
                    },
                ))
            })
        });
        group.bench_function(format!("ldd-nolocal/{tag}"), |b| {
            b.iter(|| {
                black_box(fast_bcc(
                    g,
                    BccOpts {
                        scheme: CcScheme::LddUfJtb,
                        local_search: false,
                        ..Default::default()
                    },
                ))
            })
        });
        group.bench_function(format!("uf-async/{tag}"), |b| {
            b.iter(|| {
                black_box(fast_bcc(
                    g,
                    BccOpts {
                        scheme: CcScheme::UfAsync,
                        ..Default::default()
                    },
                ))
            })
        });

        // Ablation: the paper's §5 "re-order the vertices in the CSR format
        // to let each CC be contiguous" locality optimization, measured as
        // FAST-BCC over the pre-reordered graph (reordering cost excluded —
        // this isolates the steady-state cache benefit).
        let reordered = {
            let cc = fastbcc_connectivity::cc::ldd_uf_jtb(
                g,
                fastbcc_connectivity::cc::CcOpts::default(),
            );
            let perm = fastbcc_connectivity::cc::cc_contiguous_perm(&cc.labels);
            fastbcc_graph::permute::relabel(g, &perm)
        };
        group.bench_function(format!("ldd+ccorder/{tag}"), |b| {
            b.iter(|| black_box(fast_bcc(&reordered, BccOpts::default())))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
