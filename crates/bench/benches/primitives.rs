//! Microbenchmarks for the ParlayLib-equivalent primitives (substrates
//! S2–S4 of DESIGN.md): scan, pack, counting/radix sort, semisort, and
//! sparse-table RMQ build/query.

use criterion::{criterion_group, criterion_main, Criterion};
use fastbcc_primitives::rmq::{RmqKind, SparseTable};
use fastbcc_primitives::rng::hash64;
use fastbcc_primitives::{pack, scan, semisort, sort};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 1 << 20;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let data: Vec<usize> = (0..N).map(|i| (hash64(i as u64) % 8) as usize).collect();
    group.bench_function("scan_exclusive_1M", |b| {
        b.iter(|| {
            let mut a = data.clone();
            black_box(scan::prefix_sums(&mut a))
        })
    });

    group.bench_function("pack_index_1M", |b| {
        b.iter(|| black_box(pack::pack_index(N, |i| hash64(i as u64).is_multiple_of(3))))
    });

    let keys: Vec<u32> = (0..N).map(|i| (hash64(i as u64) % 1024) as u32).collect();
    group.bench_function("counting_sort_1M_1024buckets", |b| {
        b.iter(|| black_box(sort::counting_sort_by(&keys, 1024, |&k| k as usize)))
    });

    let big: Vec<u64> = (0..N).map(|i| hash64(i as u64)).collect();
    group.bench_function("radix_sort_1M_u64", |b| {
        b.iter(|| black_box(sort::radix_sort_by(&big, u64::MAX, |&k| k)))
    });

    let ids: Vec<u32> = (0..N as u32).collect();
    let owners: Vec<u32> = (0..N)
        .map(|i| (hash64(i as u64 + 9) % (N as u64 / 4)) as u32)
        .collect();
    group.bench_function("semisort_1M_dense_keys", |b| {
        b.iter(|| {
            black_box(semisort::semisort_by_small_key(&ids, N / 4, |&v| {
                owners[v as usize] as usize
            }))
        })
    });

    let vals: Vec<u32> = (0..N).map(|i| hash64(i as u64) as u32).collect();
    group.bench_function("sparse_table_build_1M", |b| {
        b.iter(|| black_box(SparseTable::build(&vals, RmqKind::Min)))
    });
    let st = SparseTable::build(&vals, RmqKind::Min);
    group.bench_function("sparse_table_100k_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in 0..100_000u64 {
                let lo = (hash64(q) % N as u64) as usize;
                let hi = lo + (hash64(q + 1) as usize % (N - lo));
                acc ^= st.query(lo, hi) as u64;
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
