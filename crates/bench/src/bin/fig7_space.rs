//! **Figure 7**: auxiliary-space comparison — FAST-BCC vs the GBBS-style
//! baseline vs Tarjan–Vishkin, normalized per graph (lower is better).
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig7_space -- \
//!     [--scale 0.1] [--graphs ...]
//! ```
//!
//! Expected shape: TV's explicit `O(m)` skeleton blows up with the
//! edge-to-vertex ratio (up to ~11× in the paper, OOM on the largest
//! graphs); FAST-BCC and the BFS baseline stay `O(n)`, with the baseline
//! slightly leaner ("GBBS … about 20% more space-efficient … they compute
//! fewer tags").

use fastbcc_baselines::{bfs_bcc, tarjan_vishkin};
use fastbcc_bench::measure::Args;
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{fast_bcc, BccOpts};

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);

    println!(
        "{:<8} {:>10} {:>6} | {:>12} {:>12} {:>12} | {:>7} {:>7} {:>7}",
        "graph", "n", "m/n", "ours(B)", "gbbs*(B)", "TV(B)", "ours", "gbbs*", "TV"
    );
    println!("{:>66} (normalized to smallest)", "");
    for spec in filter_suite(args.get("--graphs")) {
        let g = spec.build(scale);
        let ours = fast_bcc(&g, BccOpts::default()).aux_peak_bytes;
        let gbbs = bfs_bcc(&g, 7).aux_peak_bytes;
        let tv = tarjan_vishkin(&g, 5).aux_peak_bytes;
        let min = ours.min(gbbs).min(tv).max(1);
        println!(
            "{:<8} {:>10} {:>6.1} | {:>12} {:>12} {:>12} | {:>7.2} {:>7.2} {:>7.2}",
            spec.name,
            g.n(),
            g.m() as f64 / g.n().max(1) as f64,
            ours,
            gbbs,
            tv,
            ours as f64 / min as f64,
            gbbs as f64 / min as f64,
            tv as f64 / min as f64,
        );
    }
}
