//! **Figure 7**: auxiliary-space comparison — FAST-BCC vs the GBBS-style
//! baseline vs Tarjan–Vishkin, normalized per graph (lower is better) —
//! plus the graph-representation space of each [`fastbcc_graph::GraphView`]
//! backend (flat CSR vs compressed blocks), reported as bytes per
//! undirected edge.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig7_space -- \
//!     [--scale 0.1] [--graphs ...] [--json out.jsonl]
//! ```
//!
//! `--json` writes one record per (graph, algorithm, backend) with the
//! `aux_peak_bytes` space metric, the graph's own `graph_bytes` /
//! `graph_capacity_bytes` (length vs reserved capacity), and for FAST-BCC
//! a pooled `BccEngine`'s warm-solve `fresh_alloc_bytes` (0 = full buffer
//! reuse) — on **both** the flat and the compressed backend, so the CI
//! smoke gate can assert the compression ratio and the warm-solve
//! zero-allocation discipline from one artifact.
//!
//! Expected shape: TV's explicit `O(m)` skeleton blows up with the
//! edge-to-vertex ratio (up to ~11× in the paper, OOM on the largest
//! graphs); FAST-BCC and the BFS baseline stay `O(n)`, with the baseline
//! slightly leaner ("GBBS … about 20% more space-efficient … they compute
//! fewer tags").

use fastbcc_baselines::{bfs_bcc, tarjan_vishkin};
use fastbcc_bench::measure::{write_json_lines, Args, RunRecord};
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{BccEngine, BccOpts};
use fastbcc_graph::{CompressedGraph, GraphView};

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);
    let mut records: Vec<RunRecord> = Vec::new();

    println!(
        "{:<8} {:>10} {:>6} | {:>12} {:>12} {:>12} | {:>7} {:>7} {:>7} | {:>9} {:>9} | {:>7} {:>7}",
        "graph",
        "n",
        "m/n",
        "ours(B)",
        "gbbs*(B)",
        "TV(B)",
        "ours",
        "gbbs*",
        "TV",
        "warm(B)",
        "warmC(B)",
        "flatB/e",
        "cmprB/e"
    );
    println!(
        "{:>66} (normalized to smallest; warm = engine re-solve fresh bytes)",
        ""
    );
    for spec in filter_suite(args.get("--graphs")) {
        let g = spec.build(scale);
        let cg = CompressedGraph::from_graph(&g);
        // Cold solve sizes the engine workspace; the warm re-solve measures
        // what a pooled repeated-query server actually allocates. One
        // engine per backend: the edgeMap loops monomorphize per view
        // type, and each engine's warm solve must be allocation-free.
        let mut engine = BccEngine::new(BccOpts::default());
        let cold = engine.solve(&g);
        let (ours, cold_fresh, arena) = (
            cold.aux_peak_bytes,
            cold.fresh_alloc_bytes,
            cold.arena_bytes,
        );
        let warm_fresh = engine.solve(&g).fresh_alloc_bytes;
        let mut cengine = BccEngine::new(BccOpts::default());
        let ccold = cengine.solve_view(&cg);
        let (cours, ccold_fresh, carena) = (
            ccold.aux_peak_bytes,
            ccold.fresh_alloc_bytes,
            ccold.arena_bytes,
        );
        let cwarm_fresh = cengine.solve_view(&cg).fresh_alloc_bytes;
        let gbbs = bfs_bcc(&g, 7).aux_peak_bytes;
        let tv = tarjan_vishkin(&g, 5).aux_peak_bytes;
        let min = ours.min(gbbs).min(tv).max(1);
        let edges = g.m_undirected().max(1);
        println!(
            "{:<8} {:>10} {:>6.1} | {:>12} {:>12} {:>12} | {:>7.2} {:>7.2} {:>7.2} | {:>9} {:>9} | {:>7.2} {:>7.2}",
            spec.name,
            g.n(),
            g.m() as f64 / g.n().max(1) as f64,
            ours,
            gbbs,
            tv,
            ours as f64 / min as f64,
            gbbs as f64 / min as f64,
            tv as f64 / min as f64,
            warm_fresh,
            cwarm_fresh,
            GraphView::bytes(&g) as f64 / edges as f64,
            cg.bytes() as f64 / edges as f64,
        );
        let scratch = engine.workspace().heap_bytes();
        let cscratch = cengine.workspace().heap_bytes();
        let rec = |algo: &str,
                   backend: &str,
                   gbytes: usize,
                   gcap: usize,
                   peak: usize,
                   fresh: usize,
                   arena: usize,
                   scratch: usize| RunRecord {
            graph: spec.name.to_string(),
            algo: algo.to_string(),
            n: g.n(),
            m: g.m_undirected(),
            threads: fastbcc_primitives::num_threads(),
            pool_workers: fastbcc_primitives::pool_spawns(),
            median_secs: 0.0,
            aux_peak_bytes: peak,
            fresh_alloc_bytes: fresh,
            arena_bytes: arena,
            scratch_bytes: scratch,
            scratch_budget_bytes: if scratch > 0 {
                fastbcc_core::space::workspace_budget_bytes(g.n(), g.m_undirected())
            } else {
                0
            },
            steal_count: fastbcc_primitives::steal_count() as u64,
            deque_max_depth: fastbcc_primitives::deque_max_depth(),
            backend: backend.to_string(),
            graph_bytes: gbytes,
            graph_capacity_bytes: gcap,
        };
        let (fb, fc) = (GraphView::bytes(&g), GraphView::capacity_bytes(&g));
        let (cb, cc) = (cg.bytes(), cg.capacity_bytes());
        // `scratch_bytes` is a warm-record column (matching table2's
        // convention): it reports what a pooled repeated-query engine
        // holds reserved, which only stabilizes after the cold solve.
        records.push(rec(
            "fast_bcc/cold",
            "flat",
            fb,
            fc,
            ours,
            cold_fresh,
            arena,
            0,
        ));
        records.push(rec(
            "fast_bcc/warm",
            "flat",
            fb,
            fc,
            ours,
            warm_fresh,
            arena,
            scratch,
        ));
        records.push(rec(
            "fast_bcc/cold",
            "compressed",
            cb,
            cc,
            cours,
            ccold_fresh,
            carena,
            0,
        ));
        records.push(rec(
            "fast_bcc/warm",
            "compressed",
            cb,
            cc,
            cours,
            cwarm_fresh,
            carena,
            cscratch,
        ));
        records.push(rec("bfs_bcc", "flat", fb, fc, gbbs, gbbs, 0, 0));
        records.push(rec("tarjan_vishkin", "flat", fb, fc, tv, tv, 0, 0));
    }

    if let Some(path) = args.get("--json") {
        write_json_lines(path, &records).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {} records to {path}", records.len());
    }
}
