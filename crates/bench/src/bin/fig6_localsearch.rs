//! **Figure 6**: the hash-bag + local-search connectivity optimization —
//! FAST-BCC phase breakdowns with the optimization off ("Orig.") and on
//! ("Opt.").
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig6_localsearch -- \
//!     [--scale 0.1] [--reps 3] [--graphs ...]
//! ```
//!
//! Expected shape (paper §C): parity on low-diameter graphs, 1.1–4.5×
//! gains concentrated in the two CC phases on large-diameter graphs.

use fastbcc_bench::measure::{geomean, time_median, Args};
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{fast_bcc, BccOpts, Breakdown};
use fastbcc_primitives::with_threads;

fn row(label: &str, b: &Breakdown) {
    println!(
        "  {:<6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
        label,
        b.first_cc.as_secs_f64(),
        b.rooting.as_secs_f64(),
        b.tagging.as_secs_f64(),
        b.last_cc.as_secs_f64(),
        b.total().as_secs_f64()
    );
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);
    let reps = args.get_usize("--reps", 3);
    let p = args.get_usize("--threads", 0);
    let p = if p == 0 {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    } else {
        p
    };

    println!("fig6: local-search/hash-bag ablation ({p} threads)");
    let mut ratios = Vec::new();
    for spec in filter_suite(args.get("--graphs")) {
        let g = spec.build(scale);
        println!(
            "=== {} (n={}, m={}) ===",
            spec.name,
            g.n(),
            g.m_undirected()
        );
        println!(
            "  {:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "", "First-CC", "Rooting", "Tagging", "Last-CC", "total"
        );
        let (orig, _) = with_threads(p, || {
            time_median(reps, || {
                fast_bcc(
                    &g,
                    BccOpts {
                        local_search: false,
                        ..Default::default()
                    },
                )
            })
        });
        row("Orig.", &orig.breakdown);
        let (opt, _) = with_threads(p, || {
            time_median(reps, || {
                fast_bcc(
                    &g,
                    BccOpts {
                        local_search: true,
                        ..Default::default()
                    },
                )
            })
        });
        row("Opt.", &opt.breakdown);
        let ratio =
            orig.breakdown.total().as_secs_f64() / opt.breakdown.total().as_secs_f64().max(1e-9);
        println!("  Orig./Opt. = {ratio:.2}x");
        ratios.push(ratio);
    }
    println!(
        "\ngeomean Orig./Opt. = {:.2}x (paper: 1.5x average, up to 5x)",
        geomean(&ratios)
    );
}
