//! **Figure 1**: the heatmap of relative speedups over sequential
//! Hopcroft–Tarjan, with per-category geometric means.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig1_heatmap -- [--scale 0.1] ...
//! ```
//!
//! Cells > 1 mean the parallel algorithm beats SEQ; the paper renders
//! these green. `n` = no support (SM'14 on disconnected inputs).

use fastbcc_bench::measure::{geomean, Args};
use fastbcc_bench::runner::{run_suite, RunOpts};
use fastbcc_bench::suite::Category;

fn main() {
    let args = Args::parse();
    let opts = RunOpts::from_args(&args);
    let rows = run_suite(&opts);

    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>6}",
        "graph", "Ours", "GBBS*", "SM14*", "SEQ"
    );
    let categories = [
        Category::Social,
        Category::Web,
        Category::Road,
        Category::Knn,
        Category::Synthetic,
    ];
    let mut all_ours = Vec::new();
    let mut all_gbbs = Vec::new();
    for cat in categories {
        let in_cat: Vec<_> = rows.iter().filter(|r| r.category == cat).collect();
        if in_cat.is_empty() {
            continue;
        }
        println!("--- {} ---", cat.label());
        let mut ours_v = Vec::new();
        let mut gbbs_v = Vec::new();
        for r in &in_cat {
            let ours = r.speedup_over_seq(r.ours_par);
            let gbbs = r.speedup_over_seq(r.gbbs_par);
            let sm = r.sm14_par.map(|t| r.speedup_over_seq(t));
            println!(
                "{:<10} {:>8.2} {:>8.2} {:>8} {:>6.2}",
                r.name,
                ours,
                gbbs,
                sm.map(|x| format!("{x:.2}")).unwrap_or_else(|| "n".into()),
                1.0
            );
            ours_v.push(ours);
            gbbs_v.push(gbbs);
        }
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8} {:>6.2}   <- geomean",
            "MEAN",
            geomean(&ours_v),
            geomean(&gbbs_v),
            "-",
            1.0
        );
        all_ours.extend(ours_v);
        all_gbbs.extend(gbbs_v);
    }
    println!(
        "{:<10} {:>8.2} {:>8.2} {:>8} {:>6.2}   <- total geomean",
        "TOTAL",
        geomean(&all_ours),
        geomean(&all_gbbs),
        "-",
        1.0
    );
    println!("\n(>1 = faster than sequential Hopcroft–Tarjan; the paper shades these green)");
}
