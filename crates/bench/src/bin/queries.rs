//! **Query index**: build-then-serve throughput of the
//! [`fastbcc_core::query::BccIndex`] over the Tab. 2 suite.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin queries -- \
//!     [--scale 0.1] [--reps 3] [--batch 200000] [--threads 0] \
//!     [--graphs SQR,Chn6] [--json BENCH_query_index.json]
//! ```
//!
//! Per suite row: solve once with a pooled engine, build the index, then
//! serve warm mixed batches (25% each of `same_bcc` / `is_articulation` /
//! `is_bridge` / `cut_vertices_on_path`) through one pooled
//! [`QueryScratch`]. Reported: queries/sec (median over `--reps`), index
//! bytes against the [`query_index_budget_bytes`] budget, build time, and
//! the warm batches' `fresh_alloc_bytes` — which the `bench-smoke` CI gate
//! requires to be 0, the same discipline as the solver's warm path.

use fastbcc_bench::measure::{fmt_secs, geomean, json_escape, time, time_median, Args};
use fastbcc_bench::runner::RunOpts;
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::query::{random_mixed_batch, QueryScratch};
use fastbcc_core::space::query_index_budget_bytes;
use fastbcc_core::{BccEngine, BccOpts};
use fastbcc_primitives::with_threads;
use std::io::Write;

struct QueryRecord {
    graph: String,
    n: usize,
    m: usize,
    nodes: usize,
    blocks: usize,
    cuts: usize,
    threads: usize,
    batch: usize,
    build_secs: f64,
    queries_per_sec: f64,
    index_bytes: usize,
    index_budget_bytes: usize,
    warm_fresh_alloc_bytes: usize,
}

impl QueryRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":{},\"n\":{},\"m\":{},\"nodes\":{},\"blocks\":{},\
             \"cuts\":{},\"threads\":{},\"batch\":{},\"build_secs\":{:.9},\
             \"queries_per_sec\":{:.3},\"index_bytes\":{},\
             \"index_budget_bytes\":{},\"warm_fresh_alloc_bytes\":{}}}",
            json_escape(&self.graph),
            self.n,
            self.m,
            self.nodes,
            self.blocks,
            self.cuts,
            self.threads,
            self.batch,
            self.build_secs,
            self.queries_per_sec,
            self.index_bytes,
            self.index_budget_bytes,
            self.warm_fresh_alloc_bytes,
        )
    }
}

fn main() {
    let args = Args::parse();
    let opts = RunOpts::from_args(&args);
    let batch = args.get_usize("--batch", 200_000);
    let p = opts.effective_threads();
    eprintln!(
        "queries: scale={} reps={} threads={p} batch={batch}",
        opts.scale, opts.reps
    );

    println!(
        "{:<6} {:>9} {:>10} {:>8} {:>8} {:>8} | {:>9} {:>12} {:>11} {:>6}",
        "graph", "n", "m", "blocks", "cuts", "build", "Mquery/s", "index MB", "budget MB", "fresh"
    );
    let mut records: Vec<QueryRecord> = Vec::new();
    for spec in filter_suite(opts.names.as_deref()) {
        eprintln!("[build] {} (scale {})", spec.name, opts.scale);
        let g = spec.build(opts.scale);
        let rec = with_threads(p, || {
            let mut engine = BccEngine::new(BccOpts::default());
            engine.solve(&g);
            let (index, build_t) = time(|| engine.build_index());
            let queries = random_mixed_batch(g.n(), batch, 0xC0FFEE ^ g.n() as u64);
            let mut scratch = QueryScratch::with_capacity(batch);
            index.answer_batch(&queries, &mut scratch); // warm the pool
            let (fresh, median) = time_median(opts.reps, || {
                index.answer_batch(&queries, &mut scratch);
                scratch.fresh_alloc_bytes()
            });
            QueryRecord {
                graph: spec.name.to_string(),
                n: g.n(),
                m: g.m_undirected(),
                nodes: index.node_count(),
                blocks: index.num_blocks(),
                cuts: index.num_cuts(),
                threads: p,
                batch,
                build_secs: build_t.as_secs_f64(),
                queries_per_sec: batch as f64 / median.as_secs_f64().max(1e-12),
                index_bytes: index.bytes(),
                index_budget_bytes: query_index_budget_bytes(g.n()),
                warm_fresh_alloc_bytes: fresh,
            }
        });
        println!(
            "{:<6} {:>9} {:>10} {:>8} {:>8} {:>8} | {:>9.2} {:>12.2} {:>11.2} {:>6}",
            rec.graph,
            rec.n,
            rec.m,
            rec.blocks,
            rec.cuts,
            fmt_secs(std::time::Duration::from_secs_f64(rec.build_secs)),
            rec.queries_per_sec / 1e6,
            rec.index_bytes as f64 / (1 << 20) as f64,
            rec.index_budget_bytes as f64 / (1 << 20) as f64,
            rec.warm_fresh_alloc_bytes,
        );
        assert!(
            rec.index_bytes <= rec.index_budget_bytes,
            "{}: index {} B over the {} B budget",
            rec.graph,
            rec.index_bytes,
            rec.index_budget_bytes
        );
        records.push(rec);
    }

    let qps: Vec<f64> = records.iter().map(|r| r.queries_per_sec).collect();
    println!(
        "--- geomean over {} graphs: {:.2} Mquery/s (batch {batch}, {p} threads) ---",
        records.len(),
        geomean(&qps) / 1e6
    );

    if let Some(path) = args.get("--json") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}")),
        );
        for r in &records {
            writeln!(f, "{}", r.to_json()).expect("write record");
        }
        f.flush().expect("flush json");
        eprintln!("wrote {} records to {path}", records.len());
    }
}
