//! **Figure 5**: per-phase running-time breakdown (First-CC, Rooting,
//! Tagging, Last-CC), FAST-BCC vs the GBBS-style BFS-skeleton baseline.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig5_breakdown -- \
//!     [--scale 0.1] [--reps 3] [--graphs ...] [--json PATH]
//! ```
//!
//! `--json` additionally writes one JSON object per (graph, algo) with the
//! per-phase seconds and the per-phase baseline-over-ours speedups, so the
//! breakdown can be charted without scraping the table.
//!
//! The paper's headline observation should reproduce: on large-diameter
//! graphs the baseline's *Rooting* (BFS) and *Tagging* (level-synchronous
//! sweeps) bars dwarf FAST-BCC's ETT/RMQ equivalents.

use fastbcc_baselines::bfs_bcc;
use fastbcc_bench::measure::{time_median, Args};
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{fast_bcc, BccOpts, Breakdown};
use fastbcc_primitives::with_threads;

fn row(label: &str, b: &Breakdown) {
    println!(
        "  {:<8} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
        label,
        b.first_cc.as_secs_f64(),
        b.rooting.as_secs_f64(),
        b.tagging.as_secs_f64(),
        b.last_cc.as_secs_f64(),
        b.total().as_secs_f64()
    );
}

/// Phase seconds plus per-phase `baseline / ours` speedups as one JSON
/// line. `speedup_*` is emitted only on the baseline row (`vs` = the
/// breakdown it is compared against).
fn json_row(
    graph: &str,
    algo: &str,
    threads: usize,
    b: &Breakdown,
    vs: Option<&Breakdown>,
) -> String {
    let phases = format!(
        "\"first_cc_secs\":{:.9},\"rooting_secs\":{:.9},\"tagging_secs\":{:.9},\
         \"last_cc_secs\":{:.9},\"total_secs\":{:.9}",
        b.first_cc.as_secs_f64(),
        b.rooting.as_secs_f64(),
        b.tagging.as_secs_f64(),
        b.last_cc.as_secs_f64(),
        b.total().as_secs_f64(),
    );
    let speedups = vs
        .map(|ours| {
            let ratio = |theirs: f64, ours: f64| theirs / ours.max(1e-9);
            format!(
                ",\"speedup_first_cc\":{:.4},\"speedup_rooting\":{:.4},\
                 \"speedup_tagging\":{:.4},\"speedup_last_cc\":{:.4},\
                 \"speedup_total\":{:.4}",
                ratio(b.first_cc.as_secs_f64(), ours.first_cc.as_secs_f64()),
                ratio(b.rooting.as_secs_f64(), ours.rooting.as_secs_f64()),
                ratio(b.tagging.as_secs_f64(), ours.tagging.as_secs_f64()),
                ratio(b.last_cc.as_secs_f64(), ours.last_cc.as_secs_f64()),
                ratio(b.total().as_secs_f64(), ours.total().as_secs_f64()),
            )
        })
        .unwrap_or_default();
    format!(
        "{{\"graph\":\"{graph}\",\"algo\":\"{algo}\",\"threads\":{threads},{phases}{speedups}}}"
    )
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);
    let reps = args.get_usize("--reps", 3);
    let p = args.get_usize("--threads", 0);
    let p = if p == 0 {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    } else {
        p
    };

    println!("fig5: phase breakdown in seconds ({p} threads)");
    let mut json_lines = Vec::new();
    for spec in filter_suite(args.get("--graphs")) {
        let g = spec.build(scale);
        println!(
            "=== {} (n={}, m={}) ===",
            spec.name,
            g.n(),
            g.m_undirected()
        );
        println!(
            "  {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "", "First-CC", "Rooting", "Tagging", "Last-CC", "total"
        );
        let (ours, _) = with_threads(p, || time_median(reps, || fast_bcc(&g, BccOpts::default())));
        row("Ours", &ours.breakdown);
        let (gbbs, _) = with_threads(p, || time_median(reps, || bfs_bcc(&g, 7)));
        row("GBBS*", &gbbs.breakdown);
        json_lines.push(json_row(spec.name, "fast_bcc", p, &ours.breakdown, None));
        json_lines.push(json_row(
            spec.name,
            "bfs_bcc",
            p,
            &gbbs.breakdown,
            Some(&ours.breakdown),
        ));
    }
    if let Some(path) = args.get("--json") {
        std::fs::write(path, json_lines.join("\n") + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("[json ] wrote {path}");
    }
}
