//! **Figure 5**: per-phase running-time breakdown (First-CC, Rooting,
//! Tagging, Last-CC), FAST-BCC vs the GBBS-style BFS-skeleton baseline.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig5_breakdown -- \
//!     [--scale 0.1] [--reps 3] [--graphs ...]
//! ```
//!
//! The paper's headline observation should reproduce: on large-diameter
//! graphs the baseline's *Rooting* (BFS) and *Tagging* (level-synchronous
//! sweeps) bars dwarf FAST-BCC's ETT/RMQ equivalents.

use fastbcc_baselines::bfs_bcc;
use fastbcc_bench::measure::{time_median, Args};
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{fast_bcc, BccOpts, Breakdown};
use fastbcc_primitives::with_threads;

fn row(label: &str, b: &Breakdown) {
    println!(
        "  {:<8} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
        label,
        b.first_cc.as_secs_f64(),
        b.rooting.as_secs_f64(),
        b.tagging.as_secs_f64(),
        b.last_cc.as_secs_f64(),
        b.total().as_secs_f64()
    );
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);
    let reps = args.get_usize("--reps", 3);
    let p = args.get_usize("--threads", 0);
    let p = if p == 0 {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    } else {
        p
    };

    println!("fig5: phase breakdown in seconds ({p} threads)");
    for spec in filter_suite(args.get("--graphs")) {
        let g = spec.build(scale);
        println!(
            "=== {} (n={}, m={}) ===",
            spec.name,
            g.n(),
            g.m_undirected()
        );
        println!(
            "  {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "", "First-CC", "Rooting", "Tagging", "Last-CC", "total"
        );
        let (r, _) = with_threads(p, || time_median(reps, || fast_bcc(&g, BccOpts::default())));
        row("Ours", &r.breakdown);
        let (r, _) = with_threads(p, || time_median(reps, || bfs_bcc(&g, 7)));
        row("GBBS*", &r.breakdown);
    }
}
