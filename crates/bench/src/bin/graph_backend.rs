//! Graph-backend scaling benchmark: solve one R-MAT graph an order of
//! magnitude past the default suite's edge ceiling on every
//! [`fastbcc_graph::GraphView`] backend — flat CSR, compressed blocks,
//! and the zero-copy mmap-loaded variant of each — and record time and
//! space per backend.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin graph_backend -- \
//!     [--scale 16] [--edges 12000000] [--reps 3] [--seed 42] \
//!     [--json BENCH_graph_backend.json]
//! ```
//!
//! The claims this artifact backs:
//!
//! * **Scale**: the default suite at `--scale 0.1` tops out near one
//!   million edges; this run solves ≥10× that (`--edges` directed-arc
//!   pairs before dedup) in the same process RAM envelope, because the
//!   compressed backend's per-block streaming decode needs no flat
//!   neighbor arrays and the solver's auxiliary space stays `O(n)`.
//! * **Space**: `graph_bytes / m` (bytes per undirected edge) must be
//!   strictly smaller for the compressed backends than the flat ones on
//!   a graph this dense.
//! * **Warm solves allocate nothing**: after the cold solve sizes the
//!   pooled workspace, every re-solve on every backend reports
//!   `fresh_alloc_bytes == 0` (asserted here, not just recorded).
//! * **Agreement**: all four backends produce identical BCC counts.

use fastbcc_bench::measure::{time_median, write_json_lines, Args, RunRecord};
use fastbcc_core::{BccEngine, BccOpts};
use fastbcc_graph::generators::rmat;
use fastbcc_graph::{
    load_snapshot, save_snapshot, save_snapshot_compressed, CompressedGraph, GraphView,
};

/// One backend's measured row.
struct Row {
    backend: &'static str,
    graph_bytes: usize,
    graph_capacity_bytes: usize,
    cold_secs: f64,
    warm_secs: f64,
    cold_fresh: usize,
    warm_fresh: usize,
    aux_peak: usize,
    num_bcc: usize,
    num_cc: usize,
}

fn run_backend<G: GraphView>(g: &G, reps: usize, opts: BccOpts) -> Row {
    let mut engine = BccEngine::new(opts);
    let (_, cold) = time_median(1, || {
        engine.solve_view(g);
    });
    let cold_fresh = engine.result().fresh_alloc_bytes;
    let (_, warm) = time_median(reps, || {
        engine.solve_view(g);
    });
    let r = engine.result();
    Row {
        backend: g.backend_name(),
        graph_bytes: g.bytes(),
        graph_capacity_bytes: g.capacity_bytes(),
        cold_secs: cold.as_secs_f64(),
        warm_secs: warm.as_secs_f64(),
        cold_fresh,
        warm_fresh: r.fresh_alloc_bytes,
        aux_peak: r.aux_peak_bytes,
        num_bcc: r.num_bcc,
        num_cc: r.num_cc,
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.get_usize("--scale", 16) as u32;
    let edges = args.get_usize("--edges", 12_000_000);
    let reps = args.get_usize("--reps", 3);
    let seed = args.get_usize("--seed", 42) as u64;
    let opts = BccOpts::default();

    eprintln!("building rmat(scale={scale}, edges={edges}, seed={seed})...");
    let g = rmat(scale, edges, seed);
    let (n, m) = (g.n(), g.m_undirected());
    eprintln!(
        "built: n={n} m={m} ({:.1} MB flat)",
        GraphView::bytes(&g) as f64 / 1e6
    );

    let cg = CompressedGraph::from_graph(&g);
    let dir = std::env::temp_dir().join(format!("fastbcc-graph-backend-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let flat_path = dir.join("g.flat.fbcc");
    let comp_path = dir.join("g.comp.fbcc");
    save_snapshot(&g, &flat_path).expect("save flat snapshot");
    save_snapshot_compressed(&cg, &comp_path).expect("save compressed snapshot");
    let mflat = load_snapshot(&flat_path).expect("load flat snapshot");
    let mcomp = load_snapshot(&comp_path).expect("load compressed snapshot");

    let rows = [
        run_backend(&g, reps, opts),
        run_backend(&cg, reps, opts),
        run_backend(&mflat, reps, opts),
        run_backend(&mcomp, reps, opts),
    ];
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "{:<16} {:>12} {:>8} | {:>9} {:>9} | {:>10} {:>10} | {:>8}",
        "backend", "bytes", "B/edge", "cold(s)", "warm(s)", "coldfresh", "warmfresh", "num_bcc"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>8.2} | {:>9.3} {:>9.3} | {:>10} {:>10} | {:>8}",
            r.backend,
            r.graph_bytes,
            r.graph_bytes as f64 / m.max(1) as f64,
            r.cold_secs,
            r.warm_secs,
            r.cold_fresh,
            r.warm_fresh,
            r.num_bcc,
        );
    }

    // The acceptance gates, enforced here so a regression fails the run
    // loudly rather than producing a quietly wrong artifact.
    for r in &rows {
        assert_eq!(
            (r.num_bcc, r.num_cc),
            (rows[0].num_bcc, rows[0].num_cc),
            "backend {} disagrees with flat",
            r.backend
        );
        assert_eq!(
            r.warm_fresh, 0,
            "backend {}: warm solve allocated fresh bytes",
            r.backend
        );
    }
    for r in &rows {
        if r.backend.starts_with("compressed") {
            assert!(
                r.graph_bytes < rows[0].graph_bytes,
                "compressed backend {} not below flat ({} vs {})",
                r.backend,
                r.graph_bytes,
                rows[0].graph_bytes
            );
        }
    }

    let records: Vec<RunRecord> = rows
        .iter()
        .flat_map(|r| {
            let base = RunRecord {
                graph: format!("rmat{scale}"),
                algo: String::new(),
                n,
                m,
                threads: fastbcc_primitives::num_threads(),
                pool_workers: fastbcc_primitives::pool_spawns(),
                median_secs: 0.0,
                aux_peak_bytes: r.aux_peak,
                fresh_alloc_bytes: 0,
                arena_bytes: 0,
                scratch_bytes: 0,
                scratch_budget_bytes: 0,
                steal_count: fastbcc_primitives::steal_count() as u64,
                deque_max_depth: fastbcc_primitives::deque_max_depth(),
                backend: r.backend.to_string(),
                graph_bytes: r.graph_bytes,
                graph_capacity_bytes: r.graph_capacity_bytes,
            };
            [
                RunRecord {
                    algo: "fast_bcc/cold".into(),
                    median_secs: r.cold_secs,
                    fresh_alloc_bytes: r.cold_fresh,
                    ..base.clone()
                },
                RunRecord {
                    algo: "fast_bcc/warm".into(),
                    median_secs: r.warm_secs,
                    fresh_alloc_bytes: r.warm_fresh,
                    ..base
                },
            ]
        })
        .collect();

    if let Some(path) = args.get("--json") {
        write_json_lines(path, &records).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {} records to {path}", records.len());
    }
}
