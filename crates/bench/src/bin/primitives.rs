//! Microbenchmark for the flat primitive kernels: scalar dispatch vs the
//! chunked vectorized paths (`fastbcc_primitives::kernels`), measured on
//! the same inputs with preallocated outputs so warm repetitions allocate
//! nothing. Emits a single JSON document (default `BENCH_primitives.json`)
//! that the bench-smoke CI job gates on: every row must carry the full
//! column set and report `warm_fresh_alloc_bytes == 0`.
//!
//! Usage: `primitives [--n 4194304] [--reps 5] [--threads 0] [--json PATH]`
//! (`--threads 0` = the runtime default, honoring `FASTBCC_THREADS`).

use fastbcc_bench::measure::{time_median, Args};
use fastbcc_primitives::{pack, scan, sort, with_threads};
use std::io::Write as _;

/// One scalar-vs-vectorized comparison row.
struct Row {
    primitive: &'static str,
    n: usize,
    threads: usize,
    scalar_secs: f64,
    simd_secs: f64,
    /// Output-buffer capacity growth across the timed warm repetitions —
    /// must be 0: both paths are required to run allocation-free once the
    /// cold repetition has sized the buffers.
    warm_fresh_alloc_bytes: usize,
    steal_count: u64,
    deque_max_depth: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_secs / self.simd_secs.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"primitive\":\"{}\",\"n\":{},\"threads\":{},\
             \"scalar_secs\":{:.9},\"simd_secs\":{:.9},\"speedup\":{:.4},\
             \"warm_fresh_alloc_bytes\":{},\"steal_count\":{},\
             \"deque_max_depth\":{}}}",
            self.primitive,
            self.n,
            self.threads,
            self.scalar_secs,
            self.simd_secs,
            self.speedup(),
            self.warm_fresh_alloc_bytes,
            self.steal_count,
            self.deque_max_depth,
        )
    }
}

/// Deterministic pseudo-random u32 stream (splitmix-style), so the bench
/// input is reproducible without any RNG dependency.
fn rand_u32s(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

/// What [`compare`] asks of its single driver closure — one closure (not
/// three) so it can own mutable borrows of the shared input/output buffers.
enum Op {
    Scalar,
    Simd,
    /// Return the total output-buffer capacity in bytes.
    CapacityBytes,
}

/// Time the scalar and vectorized paths over `reps` warm repetitions each
/// (after one untimed cold call apiece), tracking output-capacity growth
/// across the timed region.
fn compare(
    primitive: &'static str,
    n: usize,
    threads: usize,
    reps: usize,
    mut run: impl FnMut(Op) -> usize,
) -> Row {
    run(Op::Scalar);
    run(Op::Simd);
    let warm_before = run(Op::CapacityBytes);
    let (_, scalar_t) = time_median(reps, || run(Op::Scalar));
    let (_, simd_t) = time_median(reps, || run(Op::Simd));
    let warm_after = run(Op::CapacityBytes);
    Row {
        primitive,
        n,
        threads,
        scalar_secs: scalar_t.as_secs_f64(),
        simd_secs: simd_t.as_secs_f64(),
        warm_fresh_alloc_bytes: warm_after.saturating_sub(warm_before),
        steal_count: fastbcc_primitives::steal_count() as u64,
        deque_max_depth: fastbcc_primitives::deque_max_depth(),
    }
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("--n", 1 << 22);
    let reps = args.get_usize("--reps", 5);
    let threads = {
        let t = args.get_usize("--threads", 0);
        if t == 0 {
            fastbcc_primitives::num_threads()
        } else {
            t
        }
    };

    let rows = with_threads(threads, || run_all(n, reps, threads));

    for r in &rows {
        eprintln!(
            "{:<22} n={:>9} t={} scalar {:>10.6}s simd {:>10.6}s speedup {:>5.2}x",
            r.primitive,
            r.n,
            r.threads,
            r.scalar_secs,
            r.simd_secs,
            r.speedup(),
        );
    }

    let path = args.get("--json").unwrap_or("BENCH_primitives.json");
    let body = rows
        .iter()
        .map(Row::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let doc = format!(
        "{{\n  \"description\": \"scalar vs vectorized flat-primitive kernels \
         (median of {reps} warm reps, preallocated outputs)\",\n  \
         \"threads\": {threads},\n  \"rows\": [\n    {body}\n  ]\n}}\n"
    );
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}"));
    f.write_all(doc.as_bytes())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("[json ] wrote {path}");
}

fn run_all(n: usize, reps: usize, threads: usize) -> Vec<Row> {
    let mut rows = Vec::new();

    // --- Exclusive scan over usize counts (the pack/sort offset pass). ---
    {
        let base: Vec<usize> = rand_u32s(n, 1)
            .iter()
            .map(|&x| (x & 0xFF) as usize)
            .collect();
        let mut buf = vec![0usize; n];
        rows.push(compare("scan_exclusive_usize", n, threads, reps, |op| {
            match op {
                Op::Scalar => {
                    buf.copy_from_slice(&base);
                    scan::prefix_sums_scalar(&mut buf);
                }
                Op::Simd => {
                    buf.copy_from_slice(&base);
                    scan::prefix_sums_vectorized(&mut buf);
                }
                Op::CapacityBytes => return buf.capacity() * std::mem::size_of::<usize>(),
            }
            0
        }));
    }

    // --- Inclusive scan over u64 (ETT list-rank style accumulation). ---
    {
        let base: Vec<u64> = rand_u32s(n, 2).iter().map(|&x| x as u64).collect();
        let mut buf = vec![0u64; n];
        rows.push(compare("scan_inclusive_u64", n, threads, reps, |op| {
            match op {
                Op::Scalar => {
                    buf.copy_from_slice(&base);
                    scan::scan_inclusive_u64_scalar(&mut buf);
                }
                Op::Simd => {
                    buf.copy_from_slice(&base);
                    scan::scan_inclusive_u64_vectorized(&mut buf);
                }
                Op::CapacityBytes => return buf.capacity() * std::mem::size_of::<u64>(),
            }
            0
        }));
    }

    // --- Sentinel pack (the sparse edgeMap frontier compaction). ---
    {
        const EMPTY: u32 = u32::MAX;
        // ~50% survivors, like a mid-traversal frontier.
        let src: Vec<u32> = rand_u32s(n, 3)
            .iter()
            .map(|&x| if x & 1 == 0 { x >> 1 } else { EMPTY })
            .collect();
        let mut out: Vec<u32> = Vec::new();
        pack::pack_neq_into_scalar(&src, EMPTY, &mut out);
        let mut out2 = out.clone();
        rows.push(compare("pack_neq_u32", n, threads, reps, |op| {
            match op {
                Op::Scalar => pack::pack_neq_into_scalar(&src, EMPTY, &mut out),
                Op::Simd => pack::pack_neq_into_vectorized(&src, EMPTY, &mut out2),
                Op::CapacityBytes => {
                    return (out.capacity() + out2.capacity()) * std::mem::size_of::<u32>()
                }
            }
            0
        }));
    }

    // --- Bitmap pack (the dense edgeMap frontier sweep). ---
    {
        let words: Vec<u64> = rand_u32s(n.div_ceil(64), 4)
            .iter()
            .zip(rand_u32s(n.div_ceil(64), 5).iter())
            .map(|(&a, &b)| ((a as u64) << 32) | b as u64)
            .collect();
        let mut out: Vec<u32> = Vec::new();
        pack::pack_bits_into_scalar(&words, n, &mut out);
        let mut out2 = out.clone();
        rows.push(compare("pack_bits_u64", n, threads, reps, |op| {
            match op {
                Op::Scalar => pack::pack_bits_into_scalar(&words, n, &mut out),
                Op::Simd => pack::pack_bits_into_vectorized(&words, n, &mut out2),
                Op::CapacityBytes => {
                    return (out.capacity() + out2.capacity()) * std::mem::size_of::<u32>()
                }
            }
            0
        }));
    }

    // --- Counting-sort scatter (the semisort behind skeleton grouping). ---
    {
        let k = 256usize;
        let items: Vec<u32> = rand_u32s(n / 2, 6).iter().map(|&x| x % k as u32).collect();
        let key = |x: &u32| *x as usize;
        let mut out: Vec<u32> = Vec::new();
        let mut offs: Vec<usize> = Vec::new();
        sort::counting_sort_by_into(&items, k, key, &mut out, &mut offs);
        let mut out2 = out.clone();
        let mut offs2 = offs.clone();
        rows.push(compare(
            "counting_sort_u32_k256",
            n / 2,
            threads,
            reps,
            |op| {
                match op {
                    Op::Scalar => sort::counting_sort_by_into(&items, k, key, &mut out, &mut offs),
                    Op::Simd => {
                        sort::counting_sort_seq_vectorized(&items, k, key, &mut out2, &mut offs2)
                    }
                    Op::CapacityBytes => {
                        return (out.capacity() + out2.capacity()) * std::mem::size_of::<u32>()
                            + (offs.capacity() + offs2.capacity()) * std::mem::size_of::<usize>()
                    }
                }
                0
            },
        ));
    }

    rows
}
