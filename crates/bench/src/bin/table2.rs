//! **Table 2**: graph information, running times and speedups for every
//! suite graph × every algorithm.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin table2 -- \
//!     [--scale 0.1] [--reps 3] [--threads 0] [--graphs SQR,Chn6] \
//!     [--json out.jsonl]
//! ```
//!
//! `--json` additionally writes one JSON record per (graph, algorithm)
//! configuration, including the `aux_peak_bytes` / `fresh_alloc_bytes`
//! space counters, so successive PRs can chart the space trajectory.
//!
//! Column meanings follow the paper: `par.` = parallel time on all
//! threads, `seq.` = the same code on one thread, `spd.` = self-relative
//! speedup, `T_best/ours` = fastest *other* implementation over ours
//! (highlighted yellow in the paper), `n` under SM'14 = no support
//! (disconnected input).

use fastbcc_bench::measure::{fmt_secs, geomean, Args};
use fastbcc_bench::runner::{run_suite, RowResult, RunOpts};
use fastbcc_bench::suite::Category;

fn main() {
    let args = Args::parse();
    let opts = RunOpts::from_args(&args);
    eprintln!(
        "table2: scale={} reps={} threads={}",
        opts.scale,
        opts.reps,
        opts.effective_threads()
    );
    let rows = run_suite(&opts);

    println!(
        "{:<6} {:>9} {:>10} {:>7} {:>9} {:>8} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} | {:>8} | {:>10}",
        "graph", "n", "m", "D", "#BCC", "|BCC1|%",
        "ours.par", "ours.seq", "spd.",
        "gbbs.par", "gbbs.seq", "spd.",
        "sm14.par", "SEQ", "Tbest/ours"
    );
    let mut cur_cat: Option<Category> = None;
    for r in &rows {
        if cur_cat != Some(r.category) {
            cur_cat = Some(r.category);
            println!("--- {} ---", r.category.label());
        }
        print_row(r);
    }
    print_means(&rows);

    if let Some(path) = args.get("--json") {
        let records: Vec<_> = rows
            .iter()
            .flat_map(|r| r.records(opts.effective_threads()))
            .collect();
        fastbcc_bench::measure::write_json_lines(path, &records)
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {} records to {path}", records.len());
    }
}

fn print_row(r: &RowResult) {
    let spd_ours = r.ours_seq.as_secs_f64() / r.ours_par.as_secs_f64().max(1e-9);
    let spd_gbbs = r.gbbs_seq.as_secs_f64() / r.gbbs_par.as_secs_f64().max(1e-9);
    let tbest = r.best_baseline().as_secs_f64() / r.ours_par.as_secs_f64().max(1e-9);
    println!(
        "{:<6} {:>9} {:>10} {:>7} {:>9} {:>7.2}% | {:>8} {:>8} {:>6.2} | {:>8} {:>8} {:>6.2} | {:>8} | {:>8} | {:>10.2}",
        r.name,
        r.n,
        r.m,
        r.diameter,
        r.num_bcc,
        r.largest_pct,
        fmt_secs(r.ours_par),
        fmt_secs(r.ours_seq),
        spd_ours,
        fmt_secs(r.gbbs_par),
        fmt_secs(r.gbbs_seq),
        spd_gbbs,
        r.sm14_par.map(fmt_secs).unwrap_or_else(|| "n".into()),
        fmt_secs(r.seq),
        tbest,
    );
}

fn print_means(rows: &[RowResult]) {
    let ours: Vec<f64> = rows
        .iter()
        .map(|r| r.speedup_over_seq(r.ours_par))
        .collect();
    let gbbs: Vec<f64> = rows
        .iter()
        .map(|r| r.speedup_over_seq(r.gbbs_par))
        .collect();
    let tbest: Vec<f64> = rows
        .iter()
        .map(|r| r.best_baseline().as_secs_f64() / r.ours_par.as_secs_f64().max(1e-9))
        .collect();
    println!("--- geometric means over {} graphs ---", rows.len());
    println!(
        "speedup over SEQ: ours {:.2}x, gbbs-style {:.2}x; T_best/ours {:.2}x",
        geomean(&ours),
        geomean(&gbbs),
        geomean(&tbest)
    );
}
