//! **Batch-dynamic updates**: incremental `BccEngine::apply_batch`
//! throughput versus a warm full re-solve, across churn rates.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin batch_dynamic -- \
//!     [--scale 0.1] [--threads 0] [--rounds 8] \
//!     [--fracs 0.001,0.01,0.1] [--graphs YT,GG] [--json BENCH_batch_dynamic.json]
//! ```
//!
//! Per graph × churn fraction: build the graph, attach the incremental
//! engine, and generate a [`fastbcc_bench::churn`] perturbed-graph
//! schedule (`--rounds` batches, each swapping `frac · m` edges). Every
//! round applies the batch twice — once through `apply_batch` on the
//! attached engine, once as a warm full solve of the already-evolved
//! graph on a second pooled engine — and cross-checks the two results
//! (`num_cc` / `num_bcc` every round, canonical BCCs on the last).
//!
//! Reported per row: mean per-round seconds for both paths, the speedup,
//! update throughput in edges/s (batch edges over incremental seconds),
//! how many rounds stayed incremental vs fell back (with the last
//! fallback reason), and the maximum warm `fresh_alloc_bytes` over
//! incremental rounds — which the `bench-smoke` CI gate requires to be 0
//! (the incremental path must run entirely out of pooled memory).
//! Fallback rounds are *kept* in the incremental column: the speedup is
//! what an operator gets, not what the best case gets.

use fastbcc_bench::churn::perturbed_sequence;
use fastbcc_bench::measure::{fmt_secs, geomean, json_escape, Args};
use fastbcc_bench::runner::RunOpts;
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{canonical_bccs, BccEngine, BccOpts};
use fastbcc_primitives::with_threads;
use std::io::Write;
use std::time::{Duration, Instant};

struct DynRecord {
    graph: String,
    n: usize,
    m: usize,
    threads: usize,
    frac: f64,
    rounds: usize,
    batch_edges_mean: f64,
    inc_secs_mean: f64,
    full_secs_mean: f64,
    speedup: f64,
    inc_update_eps: f64,
    full_update_eps: f64,
    rounds_incremental: usize,
    rounds_fallback: usize,
    last_fallback: Option<&'static str>,
    warm_fresh_alloc_bytes_max: usize,
    equal: bool,
}

impl DynRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":{},\"n\":{},\"m\":{},\"threads\":{},\
             \"frac\":{},\"rounds\":{},\"batch_edges_mean\":{:.3},\
             \"inc_secs_mean\":{:.9},\"full_secs_mean\":{:.9},\
             \"speedup\":{:.3},\
             \"inc_update_eps\":{:.3},\"full_update_eps\":{:.3},\
             \"rounds_incremental\":{},\"rounds_fallback\":{},\
             \"last_fallback\":{},\
             \"warm_fresh_alloc_bytes_max\":{},\"equal\":{}}}",
            json_escape(&self.graph),
            self.n,
            self.m,
            self.threads,
            self.frac,
            self.rounds,
            self.batch_edges_mean,
            self.inc_secs_mean,
            self.full_secs_mean,
            self.speedup,
            self.inc_update_eps,
            self.full_update_eps,
            self.rounds_incremental,
            self.rounds_fallback,
            self.last_fallback.map_or("null".to_string(), json_escape),
            self.warm_fresh_alloc_bytes_max,
            self.equal,
        )
    }
}

fn main() {
    let args = Args::parse();
    let opts = RunOpts::from_args(&args);
    let rounds = args.get_usize("--rounds", 8);
    let fracs: Vec<f64> = args
        .get("--fracs")
        .unwrap_or("0.001,0.01,0.1")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|e| panic!("bad --fracs entry {s:?}: {e}"))
        })
        .collect();
    let p = opts.effective_threads();
    eprintln!(
        "batch_dynamic: scale={} threads={p} rounds={rounds} fracs={fracs:?}",
        opts.scale
    );

    println!(
        "{:<6} {:>9} {:>10} {:>7} | {:>10} {:>10} {:>8} | {:>12} | {:>5} {:>5} {:>5}",
        "graph",
        "n",
        "m",
        "frac",
        "inc/batch",
        "full/batch",
        "speedup",
        "upd edges/s",
        "inc",
        "fall",
        "fresh"
    );

    let mut records: Vec<DynRecord> = Vec::new();
    for spec in filter_suite(opts.names.as_deref()) {
        eprintln!("[build] {} (scale {})", spec.name, opts.scale);
        let g0 = spec.build(opts.scale);
        for (fi, &frac) in fracs.iter().enumerate() {
            let rec = with_threads(p, || {
                let schedule = perturbed_sequence(&g0, rounds, frac, 0xD17A ^ (fi as u64) << 8);
                let mut inc = BccEngine::new(BccOpts::default());
                inc.attach(&g0);
                let mut full = BccEngine::new(BccOpts::default());
                full.solve(&g0); // warm the baseline's pools

                let mut inc_total = Duration::ZERO;
                let mut full_total = Duration::ZERO;
                let mut batch_edges = 0usize;
                let mut rounds_incremental = 0usize;
                let mut rounds_fallback = 0usize;
                let mut last_fallback = None;
                let mut warm_fresh_max = 0usize;
                let mut equal = true;

                for (round, (delta, g_round)) in schedule.iter().enumerate() {
                    batch_edges += delta.len();

                    let t = Instant::now();
                    inc.apply_batch(&delta.adds, &delta.dels);
                    inc_total += t.elapsed();
                    let (inc_cc, inc_bcc) = (inc.result().num_cc, inc.result().num_bcc);
                    let rep = inc.last_apply_report().expect("apply_batch ran");
                    if std::env::var_os("BD_DEBUG").is_some() {
                        eprintln!(
                            "[round {round}] fresh={} {rep:?}",
                            inc.result().fresh_alloc_bytes
                        );
                    }
                    if rep.incremental {
                        rounds_incremental += 1;
                    } else {
                        rounds_fallback += 1;
                        last_fallback = rep.fallback;
                    }

                    let t = Instant::now();
                    full.solve(g_round);
                    full_total += t.elapsed();

                    equal &= inc_cc == full.result().num_cc && inc_bcc == full.result().num_bcc;
                    // Warm-fresh accounting: the first two rounds settle
                    // pooled capacities; later incremental rounds must not
                    // allocate at all.
                    if rep.incremental && round >= 2 {
                        warm_fresh_max = warm_fresh_max.max(inc.result().fresh_alloc_bytes);
                    }
                    if round + 1 == schedule.len() {
                        equal &= canonical_bccs(inc.result()) == canonical_bccs(full.result());
                    }
                }

                let rounds_done = schedule.len().max(1);
                let inc_secs = inc_total.as_secs_f64();
                let full_secs = full_total.as_secs_f64();
                DynRecord {
                    graph: spec.name.to_string(),
                    n: g0.n(),
                    m: g0.m_undirected(),
                    threads: p,
                    frac,
                    rounds: schedule.len(),
                    batch_edges_mean: batch_edges as f64 / rounds_done as f64,
                    inc_secs_mean: inc_secs / rounds_done as f64,
                    full_secs_mean: full_secs / rounds_done as f64,
                    speedup: full_secs / inc_secs.max(1e-12),
                    inc_update_eps: batch_edges as f64 / inc_secs.max(1e-12),
                    full_update_eps: batch_edges as f64 / full_secs.max(1e-12),
                    rounds_incremental,
                    rounds_fallback,
                    last_fallback,
                    warm_fresh_alloc_bytes_max: warm_fresh_max,
                    equal,
                }
            });
            println!(
                "{:<6} {:>9} {:>10} {:>7} | {:>10} {:>10} {:>7.1}x | {:>12.0} | {:>5} {:>5} {:>5}",
                rec.graph,
                rec.n,
                rec.m,
                rec.frac,
                fmt_secs(Duration::from_secs_f64(rec.inc_secs_mean)),
                fmt_secs(Duration::from_secs_f64(rec.full_secs_mean)),
                rec.speedup,
                rec.inc_update_eps,
                rec.rounds_incremental,
                rec.rounds_fallback,
                rec.warm_fresh_alloc_bytes_max,
            );
            assert!(
                rec.equal,
                "{} frac {}: incremental != fresh",
                rec.graph, rec.frac
            );
            records.push(rec);
        }
    }

    for &frac in &fracs {
        let speedups: Vec<f64> = records
            .iter()
            .filter(|r| r.frac == frac)
            .map(|r| r.speedup)
            .collect();
        let eps: Vec<f64> = records
            .iter()
            .filter(|r| r.frac == frac)
            .map(|r| r.inc_update_eps)
            .collect();
        println!(
            "--- frac {frac}: geomean speedup {:.2}x, geomean {:.0} update edges/s over {} graphs ---",
            geomean(&speedups),
            geomean(&eps),
            speedups.len()
        );
    }

    if let Some(path) = args.get("--json") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}")),
        );
        for r in &records {
            writeln!(f, "{}", r.to_json()).expect("write record");
        }
        f.flush().expect("flush json");
        eprintln!("wrote {} records to {path}", records.len());
    }
}
