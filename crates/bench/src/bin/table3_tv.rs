//! **Table 3**: Tarjan–Vishkin running times against Ours / GBBS-style /
//! SEQ on every suite graph.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin table3_tv -- \
//!     [--scale 0.1] [--reps 3] [--graphs ...]
//! ```
//!
//! Expected shape (paper §D): TV beats SEQ everywhere but loses to
//! FAST-BCC everywhere; it is closest on small edge-to-vertex-ratio
//! graphs (chains, road) where its `O(m)` skeleton is cheap, and worst on
//! dense graphs.

use fastbcc_baselines::{bfs_bcc, hopcroft_tarjan, tarjan_vishkin};
use fastbcc_bench::measure::{fmt_secs, time_median, Args};
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{fast_bcc, BccOpts};
use fastbcc_primitives::with_threads;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);
    let reps = args.get_usize("--reps", 3);
    let p = args.get_usize("--threads", 0);
    let p = if p == 0 {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    } else {
        p
    };

    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10}",
        "graph", "n", "Ours", "GBBS*", "TV", "SEQ", "TV skel |E'|"
    );
    for spec in filter_suite(args.get("--graphs")) {
        let g = spec.build(scale);
        let (tv_res, tv) = with_threads(p, || time_median(reps, || tarjan_vishkin(&g, 5)));
        let (ours_res, ours) =
            with_threads(p, || time_median(reps, || fast_bcc(&g, BccOpts::default())));
        let (_, gbbs) = with_threads(p, || time_median(reps, || bfs_bcc(&g, 7)));
        let (ht, seq) = time_median(reps, || hopcroft_tarjan(&g, false));
        assert_eq!(tv_res.num_bcc, ht.num_bcc, "{}: TV mismatch", spec.name);
        assert_eq!(ours_res.num_bcc, ht.num_bcc, "{}: ours mismatch", spec.name);
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10}",
            spec.name,
            g.n(),
            fmt_secs(ours),
            fmt_secs(gbbs),
            fmt_secs(tv),
            fmt_secs(seq),
            tv_res.skeleton_edges,
        );
    }
}
