//! **Serving under churn**: read throughput and tail latency of the
//! [`fastbcc_serve`] epoch-swapped query service *while the graph is being
//! rebuilt underneath the readers*.
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin serve -- \
//!     [--scale 0.1] [--threads 0] [--readers 0] [--batch 10000] \
//!     [--rebuilds 6] [--frac 0.01] [--graphs SQR,Chn6] [--json BENCH_serve.json]
//! ```
//!
//! Per suite row: start a service on the graph, then run one *rebuilder*
//! task concurrently with `--readers` reader tasks, each serving warm
//! mixed batches through its own pooled reader and timing every batch.
//! The rebuilder drives the service through a [`fastbcc_bench::churn`]
//! perturbed-graph schedule (`--rebuilds` batches, each swapping
//! `--frac · m` edges, the same generator the `batch_dynamic` bench
//! uses), publishing one snapshot per batch through the incremental
//! delta path, then raises the stop flag. Batches that overlap a rebuild
//! window are classified separately, so the artifact answers the
//! operational question directly: *what do p50/p99/p999 look like during
//! a rebuild, not just between rebuilds?*
//!
//! Reported per graph: aggregate queries/sec over the wall of the mixed
//! phase, overall and during-rebuild batch-latency percentiles, snapshot
//! lifecycle counters (published / retired / dropped / backlog), and the
//! readers' maximum warm `fresh_alloc_bytes` — which the `bench-smoke` CI
//! gate requires to be 0 (pre-sized scratch, zero allocation on the read
//! path).
//!
//! Concurrency note: the fan-out runs on the workspace runtime via
//! [`fastbcc_serve::run_concurrent`]; the rebuilder is the driver (listed
//! first), and readers serve at least two batches even if the whole
//! schedule degenerates to sequential under `FASTBCC_THREADS=1` — the
//! during-rebuild columns are then empty (count 0), never missing.

use fastbcc_bench::churn::perturbed_sequence;
use fastbcc_bench::measure::{fmt_secs, geomean, json_escape, Args};
use fastbcc_bench::runner::RunOpts;
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::query::random_mixed_batch;
use fastbcc_core::BccOpts;
use fastbcc_primitives::with_threads;
use fastbcc_serve::{run_concurrent, start, ServeOpts};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// One reader task's measurements: (batch wall ns, overlapped a rebuild)
/// per batch, plus the worst warm fresh-allocation observation.
struct ReaderSample {
    latencies: Vec<(u64, bool)>,
    fresh_alloc_bytes_max: usize,
    queries: u64,
}

struct ServeRecord {
    graph: String,
    n: usize,
    m: usize,
    threads: usize,
    readers: usize,
    batch: usize,
    rebuilds: u64,
    frac: f64,
    rebuilds_incremental: u64,
    rebuilds_full: u64,
    wall_secs: f64,
    queries_per_sec: f64,
    batches_total: usize,
    batches_during_rebuild: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    rebuild_p50_us: f64,
    rebuild_p99_us: f64,
    rebuild_p999_us: f64,
    rebuild_secs_mean: f64,
    snapshots_published: u64,
    snapshots_retired: u64,
    snapshots_dropped: u64,
    retire_backlog: u64,
    reader_warm_fresh_alloc_bytes: usize,
}

impl ServeRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":{},\"n\":{},\"m\":{},\"threads\":{},\
             \"readers\":{},\"batch\":{},\"rebuilds\":{},\"frac\":{},\
             \"rebuilds_incremental\":{},\"rebuilds_full\":{},\
             \"wall_secs\":{:.9},\"queries_per_sec\":{:.3},\
             \"batches_total\":{},\"batches_during_rebuild\":{},\
             \"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\
             \"rebuild_p50_us\":{:.3},\"rebuild_p99_us\":{:.3},\
             \"rebuild_p999_us\":{:.3},\"rebuild_secs_mean\":{:.9},\
             \"snapshots_published\":{},\"snapshots_retired\":{},\
             \"snapshots_dropped\":{},\"retire_backlog\":{},\
             \"reader_warm_fresh_alloc_bytes\":{}}}",
            json_escape(&self.graph),
            self.n,
            self.m,
            self.threads,
            self.readers,
            self.batch,
            self.rebuilds,
            self.frac,
            self.rebuilds_incremental,
            self.rebuilds_full,
            self.wall_secs,
            self.queries_per_sec,
            self.batches_total,
            self.batches_during_rebuild,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.rebuild_p50_us,
            self.rebuild_p99_us,
            self.rebuild_p999_us,
            self.rebuild_secs_mean,
            self.snapshots_published,
            self.snapshots_retired,
            self.snapshots_dropped,
            self.retire_backlog,
            self.reader_warm_fresh_alloc_bytes,
        )
    }
}

/// Percentile over sorted nanosecond samples, in microseconds (0.0 when
/// empty — "no samples", distinguishable via the count columns).
fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

fn main() {
    let args = Args::parse();
    let opts = RunOpts::from_args(&args);
    let batch = args.get_usize("--batch", 10_000);
    let rebuilds = args.get_usize("--rebuilds", 6) as u64;
    let frac = args.get_f64("--frac", 0.01);
    let p = opts.effective_threads();
    let readers = match args.get_usize("--readers", 0) {
        0 => p.saturating_sub(1).max(1),
        r => r,
    };
    eprintln!(
        "serve: scale={} threads={p} readers={readers} batch={batch} rebuilds={rebuilds} frac={frac}",
        opts.scale
    );

    println!(
        "{:<6} {:>9} {:>10} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>7} {:>5}",
        "graph",
        "n",
        "m",
        "Mquery/s",
        "p50 us",
        "p99 us",
        "p999 us",
        "reb p99",
        "rebuild",
        "batches",
        "fresh"
    );

    let mut records: Vec<ServeRecord> = Vec::new();
    for spec in filter_suite(opts.names.as_deref()) {
        eprintln!("[build] {} (scale {})", spec.name, opts.scale);
        let g = spec.build(opts.scale);
        let rec = with_threads(p, || {
            let serve_opts = ServeOpts {
                batch_capacity: batch,
                max_readers: readers + 1,
                bcc: BccOpts::default(),
            };
            let (handle, mut rebuilder) = start(&g, serve_opts);
            let stop = Arc::new(AtomicBool::new(false));
            let (tx, rx) = mpsc::channel::<ReaderSample>();
            // The churn schedule the service is pushed through: one delta
            // per rebuild, shared with the `batch_dynamic` bench so both
            // artifacts measure the same update stream.
            let schedule = perturbed_sequence(&g, rebuilds as usize, frac, 0x5EE5);
            let g = Arc::new(g);

            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(readers + 1);
            // Driver first: publishes one snapshot per churn batch
            // back-to-back through the incremental delta path, then stops
            // the readers. Runs inline on the calling thread, so a
            // sequential schedule terminates (module docs of
            // `fastbcc_serve::harness`).
            {
                let stop = stop.clone();
                tasks.push(Box::new(move || {
                    for (delta, _) in &schedule {
                        rebuilder.rebuild_delta(&delta.adds, &delta.dels);
                    }
                    rebuilder.reclaim();
                    stop.store(true, Ordering::Release);
                }));
            }
            for r in 0..readers {
                let stop = stop.clone();
                let tx = tx.clone();
                let handle = handle.clone();
                let g = g.clone();
                tasks.push(Box::new(move || {
                    let mut reader = handle.reader();
                    let queries = random_mixed_batch(g.n(), batch, 0x5E17E ^ r as u64);
                    let stats = handle.stats();
                    let mut sample = ReaderSample {
                        latencies: Vec::with_capacity(1024),
                        fresh_alloc_bytes_max: 0,
                        queries: 0,
                    };
                    // Serve until the driver stops us, but always at
                    // least two batches so the sequential fallback (all
                    // rebuilds already done) still measures warm serving.
                    while !stop.load(Ordering::Acquire) || sample.latencies.len() < 2 {
                        let before = stats.rebuild_in_flight();
                        let t = Instant::now();
                        let served = reader.answer_batch(&queries);
                        let ns = t.elapsed().as_nanos() as u64;
                        debug_assert!(served.version >= 1);
                        let during = before || stats.rebuild_in_flight();
                        sample.latencies.push((ns, during));
                        sample.queries += batch as u64;
                        sample.fresh_alloc_bytes_max =
                            sample.fresh_alloc_bytes_max.max(reader.fresh_alloc_bytes());
                    }
                    tx.send(sample).expect("collector alive");
                }));
            }
            drop(tx);

            let wall_t = Instant::now();
            run_concurrent(tasks);
            let wall = wall_t.elapsed();

            let mut all_ns: Vec<u64> = Vec::new();
            let mut rebuild_ns: Vec<u64> = Vec::new();
            let mut queries_total = 0u64;
            let mut fresh_max = 0usize;
            for sample in rx.iter() {
                queries_total += sample.queries;
                fresh_max = fresh_max.max(sample.fresh_alloc_bytes_max);
                for (ns, during) in sample.latencies {
                    all_ns.push(ns);
                    if during {
                        rebuild_ns.push(ns);
                    }
                }
            }
            all_ns.sort_unstable();
            rebuild_ns.sort_unstable();

            let rep = handle.stats_report();
            assert_eq!(
                rep.published_version,
                rebuilds + 1,
                "every rebuild published"
            );
            ServeRecord {
                graph: spec.name.to_string(),
                n: g.n(),
                m: g.m_undirected(),
                threads: p,
                readers,
                batch,
                rebuilds,
                frac,
                rebuilds_incremental: rep.rebuilds_incremental,
                rebuilds_full: rep.rebuilds_full,
                wall_secs: wall.as_secs_f64(),
                queries_per_sec: queries_total as f64 / wall.as_secs_f64().max(1e-12),
                batches_total: all_ns.len(),
                batches_during_rebuild: rebuild_ns.len(),
                p50_us: percentile_us(&all_ns, 0.50),
                p99_us: percentile_us(&all_ns, 0.99),
                p999_us: percentile_us(&all_ns, 0.999),
                rebuild_p50_us: percentile_us(&rebuild_ns, 0.50),
                rebuild_p99_us: percentile_us(&rebuild_ns, 0.99),
                rebuild_p999_us: percentile_us(&rebuild_ns, 0.999),
                rebuild_secs_mean: rep.rebuild_secs_total / rep.rebuilds.max(1) as f64,
                snapshots_published: rep.snapshots_published,
                snapshots_retired: rep.snapshots_retired,
                snapshots_dropped: rep.snapshots_dropped,
                retire_backlog: rep.retire_backlog,
                reader_warm_fresh_alloc_bytes: fresh_max,
            }
        });
        println!(
            "{:<6} {:>9} {:>10} | {:>9.2} {:>9.1} {:>9.1} {:>9.1} | {:>9.1} {:>9} {:>7} {:>5}",
            rec.graph,
            rec.n,
            rec.m,
            rec.queries_per_sec / 1e6,
            rec.p50_us,
            rec.p99_us,
            rec.p999_us,
            rec.rebuild_p99_us,
            fmt_secs(std::time::Duration::from_secs_f64(rec.rebuild_secs_mean)),
            rec.batches_total,
            rec.reader_warm_fresh_alloc_bytes,
        );
        records.push(rec);
    }

    let qps: Vec<f64> = records.iter().map(|r| r.queries_per_sec).collect();
    println!(
        "--- geomean over {} graphs: {:.2} Mquery/s served under churn ({readers} readers, {p} threads) ---",
        records.len(),
        geomean(&qps) / 1e6
    );

    if let Some(path) = args.get("--json") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}")),
        );
        for r in &records {
            writeln!(f, "{}", r.to_json()).expect("write record");
        }
        f.flush().expect("flush json");
        eprintln!("wrote {} records to {path}", records.len());
    }
}
