//! **Figure 4**: scalability curves — speedup over SEQ at increasing
//! thread counts, on the paper's five representative graphs
//! (TW→social, SD→web, USA→road, GL5→k-NN, REC→grid).
//!
//! ```text
//! cargo run --release -p fastbcc-bench --bin fig4_scalability -- \
//!     [--scale 0.1] [--reps 3] [--threads 1,2,4]
//! ```
//!
//! On the paper's 96-core machine the x-axis runs to 192 hyperthreads;
//! pass a longer `--threads` list on bigger hardware.

use fastbcc_baselines::{bfs_bcc, hopcroft_tarjan, sm14, tarjan_vishkin};
use fastbcc_bench::measure::{time_median, Args};
use fastbcc_bench::suite::filter_suite;
use fastbcc_core::{fast_bcc, BccOpts};
use fastbcc_primitives::with_threads;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("--scale", 0.1);
    let reps = args.get_usize("--reps", 3);
    let threads: Vec<usize> = args
        .get("--threads")
        .unwrap_or("1,2,4")
        .split(',')
        .filter_map(|x| x.trim().parse().ok())
        .collect();
    // Paper's Fig. 4 graph selection mapped to our suite names.
    let names = args
        .get("--graphs")
        .unwrap_or("LJ,SD,GE,GL5,REC")
        .to_string();

    println!("fig4: speedup over SEQ (higher is better); threads = {threads:?}");
    for spec in filter_suite(Some(&names)) {
        let g = spec.build(scale);
        let (_, seq) = time_median(reps, || hopcroft_tarjan(&g, false));
        let seq_s = seq.as_secs_f64();
        println!(
            "\n=== {} (n={}, m={}) — SEQ {:.3}s ===",
            spec.name,
            g.n(),
            g.m_undirected(),
            seq_s
        );
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>8}",
            "threads", "Ours", "GBBS*", "SM14*", "TV"
        );
        for &p in &threads {
            let (_, ours) =
                with_threads(p, || time_median(reps, || fast_bcc(&g, BccOpts::default())));
            let (_, gbbs) = with_threads(p, || time_median(reps, || bfs_bcc(&g, 7)));
            let sm = if with_threads(p, || sm14(&g)).is_ok() {
                let (_, t) = with_threads(p, || time_median(reps, || sm14(&g).unwrap()));
                format!("{:.2}", seq_s / t.as_secs_f64().max(1e-9))
            } else {
                "n".into()
            };
            let (_, tv) = with_threads(p, || time_median(reps, || tarjan_vishkin(&g, 5)));
            println!(
                "{:>8} {:>8.2} {:>8.2} {:>8} {:>8.2}",
                p,
                seq_s / ours.as_secs_f64().max(1e-9),
                seq_s / gbbs.as_secs_f64().max(1e-9),
                sm,
                seq_s / tv.as_secs_f64().max(1e-9),
            );
        }
    }
}
