//! # fastbcc-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§6). See DESIGN.md §5 for the experiment index.
//!
//! * [`suite`] — the 20-graph benchmark collection mirroring Tab. 2's five
//!   categories at laptop scale (all sizes scale with `--scale`);
//! * [`measure`] — timing helpers (median-of-k, scoped thread pools,
//!   geometric means — the paper's aggregate of choice);
//! * [`runner`] — the shared per-graph measurement loop behind the
//!   `table2` and `fig1_heatmap` binaries;
//! * [`churn`] — churn-batch / perturbed-graph generation shared by the
//!   `serve` and `batch_dynamic` binaries.
//!
//! Binaries (one per experiment):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table2` | Tab. 2 — all algorithms, all graphs |
//! | `fig1_heatmap` | Fig. 1 — speedup-over-SEQ heatmap |
//! | `fig4_scalability` | Fig. 4 — thread-count sweeps |
//! | `fig5_breakdown` | Fig. 5 — per-phase times, Ours vs GBBS-style |
//! | `fig6_localsearch` | Fig. 6 — hash-bag/local-search ablation |
//! | `fig7_space` | Fig. 7 — auxiliary space comparison |
//! | `table3_tv` | Tab. 3 — Tarjan–Vishkin runtimes |

pub mod churn;
pub mod measure;
pub mod runner;
pub mod suite;
