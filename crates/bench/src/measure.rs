//! Measurement utilities: repeated timing with medians (the paper runs
//! each test 10× and reports the median), geometric means (the paper's
//! cross-graph aggregate), simple CLI-argument parsing shared by the
//! experiment binaries, and JSON-lines emission of per-run records —
//! including the space counters ([`RunRecord::aux_peak_bytes`] /
//! [`RunRecord::fresh_alloc_bytes`]) that future PRs chart for the Fig. 7
//! space trajectory.

use std::io::Write;
use std::time::{Duration, Instant};

/// Time one invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Run `f` `reps` times, returning the last result and the **median**
/// duration (the paper's protocol at reps = 10; the harness defaults
/// lower to fit the CI budget — tune with `--reps`).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (r, d) = time(&mut f);
        times.push(d);
        last = Some(r);
    }
    times.sort_unstable();
    (last.unwrap(), times[times.len() / 2])
}

/// Geometric mean of positive values (`NaN`-free: empty → 1.0).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Seconds as a compact human string.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.3}", s)
    }
}

/// One benchmark observation, serialized as a JSON object. Space columns
/// are recorded alongside time so one artifact feeds both the Tab. 2 time
/// charts and the Fig. 7 space-trajectory charts.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Suite graph name (e.g. `"SQR*"`).
    pub graph: String,
    /// Algorithm/configuration label (e.g. `"fast_bcc/par"`).
    pub algo: String,
    /// Vertex count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Installed worker budget the run was measured under (1 = sequential
    /// configuration). With the persistent pool this is the *enforced*
    /// concurrency cap, not a request — see `fastbcc_primitives::with_threads`.
    pub threads: usize,
    /// OS worker threads the shared pool had spawned when the record was
    /// taken. Constant across warm runs; recorded to prove measured runs
    /// paid no thread-spawn latency.
    pub pool_workers: usize,
    /// Median wall-clock seconds.
    pub median_secs: f64,
    /// Peak auxiliary bytes held live during the run (Fig. 7 metric).
    pub aux_peak_bytes: usize,
    /// Buffer capacity newly allocated during the run — 0 when a pooled
    /// `BccEngine` workspace served every major array.
    pub fresh_alloc_bytes: usize,
    /// Bytes held in the frontier-staging buffers (the shared edgeMap
    /// claim slots and dense bitmaps, plus the bounded per-worker
    /// local-search stacks). 0 for algorithms that stage nothing.
    pub arena_bytes: usize,
    /// Total reserved bytes of the pooled engine workspace (capacity of
    /// every scratch buffer) — the `O(n + m)` space-regression gate reads
    /// this. 0 for algorithms without a pooled workspace.
    pub scratch_bytes: usize,
    /// The linear budget `scratch_bytes` must fit
    /// (`fastbcc_core::space::workspace_budget_bytes`), emitted alongside
    /// the measurement so the CI gate compares two fields instead of
    /// duplicating the formula. 0 when no budget applies.
    pub scratch_budget_bytes: usize,
    /// Cumulative successful deque steals in the worker pool when the
    /// record was taken (process-lifetime counter; deltas between records
    /// show how much load balancing a run needed). Always 0 under the
    /// sequential budget or when `real-rayon` replaces the shim.
    pub steal_count: u64,
    /// High-water mark of any worker's deque depth (process lifetime) —
    /// bounded by the pool's fixed deque capacity, so a value near that
    /// cap flags ranges spilling to the shared claim cursor.
    pub deque_max_depth: usize,
    /// Graph backend the run solved against
    /// (`fastbcc_graph::GraphView::backend_name`: `"flat"`,
    /// `"compressed"`, `"flat-mmap"`, `"compressed-mmap"`). Empty for
    /// records that predate the backend column or don't touch a graph.
    pub backend: String,
    /// Bytes the graph representation itself occupies
    /// ([`fastbcc_graph::GraphView::bytes`]) — the Fig. 7 space charts
    /// divide this by `m` for the bytes-per-edge column.
    pub graph_bytes: usize,
    /// Bytes the graph representation has *reserved*
    /// ([`fastbcc_graph::GraphView::capacity_bytes`]); slack beyond
    /// `graph_bytes` is pooled-buffer headroom, not data.
    pub graph_capacity_bytes: usize,
}

impl RunRecord {
    /// Serialize as a single JSON object (no external deps; keys are fixed
    /// and the only string fields are escaped).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"graph\":{},\"algo\":{},\"n\":{},\"m\":{},\"threads\":{},\
             \"pool_workers\":{},\"median_secs\":{:.9},\"aux_peak_bytes\":{},\
             \"fresh_alloc_bytes\":{},\"arena_bytes\":{},\"scratch_bytes\":{},\
             \"scratch_budget_bytes\":{},\"steal_count\":{},\
             \"deque_max_depth\":{},\"backend\":{},\"graph_bytes\":{},\
             \"graph_capacity_bytes\":{}}}",
            json_escape(&self.graph),
            json_escape(&self.algo),
            self.n,
            self.m,
            self.threads,
            self.pool_workers,
            self.median_secs,
            self.aux_peak_bytes,
            self.fresh_alloc_bytes,
            self.arena_bytes,
            self.scratch_bytes,
            self.scratch_budget_bytes,
            self.steal_count,
            self.deque_max_depth,
            json_escape(&self.backend),
            self.graph_bytes,
            self.graph_capacity_bytes,
        )
    }
}

/// Quote and escape a string for JSON embedding (quotes, backslashes, and
/// control characters) — shared by every bench bin that formats records by
/// hand, so no artifact can emit invalid JSON for an exotic graph name.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write records as JSON lines (one object per line — append-friendly and
/// trivially parsed by any plotting script).
pub fn write_json_lines(path: &str, records: &[RunRecord]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for r in records {
        writeln!(f, "{}", r.to_json())?;
    }
    f.flush()
}

/// Minimal CLI parsing: `--key value` pairs and flags.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn flag(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn median_of_reps() {
        let mut calls = 0;
        let (r, d) = time_median(5, || {
            calls += 1;
            std::thread::sleep(Duration::from_micros(100));
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(r, 5);
        assert!(d >= Duration::from_micros(50));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(Duration::from_millis(1)), "0.001");
        assert_eq!(fmt_secs(Duration::from_secs_f64(2.346)), "2.35");
        assert_eq!(fmt_secs(Duration::from_secs(120)), "120");
    }

    #[test]
    fn run_record_json_shape() {
        let r = RunRecord {
            graph: "SQR*".into(),
            algo: "fast_bcc/par".into(),
            n: 10,
            m: 20,
            threads: 4,
            pool_workers: 3,
            median_secs: 0.25,
            aux_peak_bytes: 4096,
            fresh_alloc_bytes: 0,
            arena_bytes: 2048,
            scratch_bytes: 65536,
            scratch_budget_bytes: 131072,
            steal_count: 17,
            deque_max_depth: 5,
            backend: "compressed".into(),
            graph_bytes: 333,
            graph_capacity_bytes: 444,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"graph\":\"SQR*\""));
        assert!(j.contains("\"backend\":\"compressed\""));
        assert!(j.contains("\"graph_bytes\":333"));
        assert!(j.contains("\"graph_capacity_bytes\":444"));
        assert!(j.contains("\"pool_workers\":3"));
        assert!(j.contains("\"aux_peak_bytes\":4096"));
        assert!(j.contains("\"fresh_alloc_bytes\":0"));
        assert!(j.contains("\"arena_bytes\":2048"));
        assert!(j.contains("\"scratch_bytes\":65536"));
        assert!(j.contains("\"scratch_budget_bytes\":131072"));
        assert!(j.contains("\"steal_count\":17"));
        assert!(j.contains("\"deque_max_depth\":5"));
        assert!(j.contains("\"median_secs\":0.25"));
    }

    #[test]
    fn json_escaping_of_strings() {
        let r = RunRecord {
            graph: "a\"b\\c\nd".into(),
            algo: "x".into(),
            n: 0,
            m: 0,
            threads: 1,
            pool_workers: 0,
            median_secs: 0.0,
            aux_peak_bytes: 0,
            fresh_alloc_bytes: 0,
            arena_bytes: 0,
            scratch_bytes: 0,
            scratch_budget_bytes: 0,
            steal_count: 0,
            deque_max_depth: 0,
            ..Default::default()
        };
        assert!(r.to_json().contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn json_lines_roundtrip_to_disk() {
        let path =
            std::env::temp_dir().join(format!("fastbcc_measure_json_{}.jsonl", std::process::id()));
        let recs = vec![
            RunRecord {
                graph: "g1".into(),
                algo: "a".into(),
                n: 1,
                m: 2,
                threads: 1,
                pool_workers: 0,
                median_secs: 0.5,
                aux_peak_bytes: 100,
                fresh_alloc_bytes: 100,
                arena_bytes: 0,
                scratch_bytes: 0,
                scratch_budget_bytes: 0,
                steal_count: 0,
                deque_max_depth: 0,
                ..Default::default()
            },
            RunRecord {
                graph: "g2".into(),
                algo: "b".into(),
                n: 3,
                m: 4,
                threads: 2,
                pool_workers: 1,
                median_secs: 1.5,
                aux_peak_bytes: 200,
                fresh_alloc_bytes: 0,
                arena_bytes: 64,
                scratch_bytes: 4096,
                scratch_budget_bytes: 8192,
                steal_count: 3,
                deque_max_depth: 2,
                ..Default::default()
            },
        ];
        write_json_lines(path.to_str().unwrap(), &recs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], recs[0].to_json());
        assert_eq!(lines[1], recs[1].to_json());
    }
}
