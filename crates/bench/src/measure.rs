//! Measurement utilities: repeated timing with medians (the paper runs
//! each test 10× and reports the median), geometric means (the paper's
//! cross-graph aggregate), and simple CLI-argument parsing shared by the
//! experiment binaries.

use std::time::{Duration, Instant};

/// Time one invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Run `f` `reps` times, returning the last result and the **median**
/// duration (the paper's protocol at reps = 10; the harness defaults
/// lower to fit the CI budget — tune with `--reps`).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (r, d) = time(&mut f);
        times.push(d);
        last = Some(r);
    }
    times.sort_unstable();
    (last.unwrap(), times[times.len() / 2])
}

/// Geometric mean of positive values (`NaN`-free: empty → 1.0).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Seconds as a compact human string.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.3}", s)
    }
}

/// Minimal CLI parsing: `--key value` pairs and flags.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Self { raw: std::env::args().skip(1).collect() }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    pub fn flag(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn median_of_reps() {
        let mut calls = 0;
        let (r, d) = time_median(5, || {
            calls += 1;
            std::thread::sleep(Duration::from_micros(100));
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(r, 5);
        assert!(d >= Duration::from_micros(50));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(Duration::from_millis(1)), "0.001");
        assert_eq!(fmt_secs(Duration::from_secs_f64(2.346)), "2.35");
        assert_eq!(fmt_secs(Duration::from_secs(120)), "120");
    }
}
