//! The benchmark graph suite — a laptop-scale mirror of Tab. 2.
//!
//! Names ending in `*` are category-equivalent substitutes for the paper's
//! real-world datasets (DESIGN.md §3); the synthetic family (SQR, REC,
//! SQR', REC', Chn) reproduces the paper's construction exactly, scaled
//! down. `--scale s` multiplies vertex counts by `s` (the paper's sizes
//! correspond to roughly `scale = 100`… on a 96-core/1.5TB machine).

use fastbcc_graph::generators::*;
use fastbcc_graph::Graph;

/// Graph category (the row groups of Tab. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    Social,
    Web,
    Road,
    Knn,
    Synthetic,
}

impl Category {
    pub fn label(self) -> &'static str {
        match self {
            Category::Social => "Social",
            Category::Web => "Web",
            Category::Road => "Road",
            Category::Knn => "k-NN",
            Category::Synthetic => "Synthetic",
        }
    }
}

/// One benchmark input.
pub struct GraphSpec {
    /// Tab. 2 name (with `*` marking substitutes).
    pub name: &'static str,
    pub category: Category,
    build: fn(f64) -> Graph,
}

impl GraphSpec {
    /// Materialize the graph at the given scale factor.
    pub fn build(&self, scale: f64) -> Graph {
        (self.build)(scale)
    }
}

fn sc(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(16)
}

/// The full suite, in Tab. 2 order.
pub fn suite() -> Vec<GraphSpec> {
    vec![
        // --- Social (power-law, low diameter) ---------------------------
        GraphSpec {
            name: "YT*",
            category: Category::Social,
            build: |s| rmat(scale_pow2(65_536, s), sc(400_000, s), 101),
        },
        GraphSpec {
            name: "OK*",
            category: Category::Social,
            build: |s| rmat(scale_pow2(32_768, s), sc(900_000, s), 102),
        },
        GraphSpec {
            name: "LJ*",
            category: Category::Social,
            build: |s| rmat(scale_pow2(131_072, s), sc(1_200_000, s), 103),
        },
        // --- Web (denser power-law + cliques) ---------------------------
        GraphSpec {
            name: "GG*",
            category: Category::Web,
            build: |s| web_like(scale_pow2(32_768, s), sc(500_000, s), 104),
        },
        GraphSpec {
            name: "SD*",
            category: Category::Web,
            build: |s| web_like(scale_pow2(131_072, s), sc(2_500_000, s), 105),
        },
        // --- Road (near-planar, huge diameter) --------------------------
        GraphSpec {
            name: "CA*",
            category: Category::Road,
            build: |s| {
                let n = sc(250_000, s);
                random_geometric(n, geometric::road_like_radius(n), 106)
            },
        },
        GraphSpec {
            name: "GE*",
            category: Category::Road,
            build: |s| {
                let n = sc(500_000, s);
                random_geometric(n, geometric::road_like_radius(n), 107)
            },
        },
        // --- k-NN (same point set, sweeping k as GL2–GL20) --------------
        GraphSpec {
            name: "HH5*",
            category: Category::Knn,
            build: |s| knn(sc(150_000, s), 5, 108),
        },
        GraphSpec {
            name: "GL2*",
            category: Category::Knn,
            build: |s| knn(sc(250_000, s), 2, 109),
        },
        GraphSpec {
            name: "GL5*",
            category: Category::Knn,
            build: |s| knn(sc(250_000, s), 5, 109),
        },
        GraphSpec {
            name: "GL10*",
            category: Category::Knn,
            build: |s| knn(sc(250_000, s), 10, 109),
        },
        GraphSpec {
            name: "GL15*",
            category: Category::Knn,
            build: |s| knn(sc(250_000, s), 15, 109),
        },
        GraphSpec {
            name: "GL20*",
            category: Category::Knn,
            build: |s| knn(sc(250_000, s), 20, 109),
        },
        GraphSpec {
            name: "COS5*",
            category: Category::Knn,
            build: |s| knn(sc(400_000, s), 5, 110),
        },
        // --- Synthetic (exact reproductions, scaled) ---------------------
        GraphSpec {
            name: "SQR",
            category: Category::Synthetic,
            build: |s| {
                let side = sc(1000, s.sqrt());
                grid2d(side, side, true)
            },
        },
        GraphSpec {
            name: "REC",
            category: Category::Synthetic,
            build: |s| grid2d(sc(100, s.sqrt()), sc(10_000, s.sqrt()), true),
        },
        GraphSpec {
            name: "SQR'",
            category: Category::Synthetic,
            build: |s| {
                let side = sc(1000, s.sqrt());
                grid2d_sampled(side, side, 0.6, 111)
            },
        },
        GraphSpec {
            name: "REC'",
            category: Category::Synthetic,
            build: |s| grid2d_sampled(sc(100, s.sqrt()), sc(10_000, s.sqrt()), 0.6, 112),
        },
        GraphSpec {
            name: "Chn6",
            category: Category::Synthetic,
            build: |s| path(sc(1_000_000, s)),
        },
        GraphSpec {
            name: "Chn7",
            category: Category::Synthetic,
            build: |s| path(sc(10_000_000, s)),
        },
    ]
}

/// Scale a power-of-two vertex count, keeping it a power of two (R-MAT).
fn scale_pow2(n: usize, s: f64) -> u32 {
    let target = (n as f64 * s).max(16.0);
    (target.log2().round() as u32).clamp(4, 30)
}

/// A fast subset for smoke tests and criterion benches.
pub fn small_suite() -> Vec<GraphSpec> {
    suite()
        .into_iter()
        .filter(|s| matches!(s.name, "YT*" | "GG*" | "CA*" | "GL5*" | "SQR" | "Chn6"))
        .collect()
}

/// Look up specs by a comma-separated name filter (`None` = all).
pub fn filter_suite(names: Option<&str>) -> Vec<GraphSpec> {
    match names {
        None => suite(),
        Some(list) => {
            let wanted: Vec<&str> = list.split(',').map(|x| x.trim()).collect();
            suite()
                .into_iter()
                .filter(|s| {
                    wanted
                        .iter()
                        .any(|w| s.name.trim_end_matches('*') == w.trim_end_matches('*'))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_build_at_tiny_scale() {
        for spec in suite() {
            let g = spec.build(0.01);
            assert!(g.n() > 0, "{} built empty", spec.name);
            assert!(g.is_symmetric(), "{} asymmetric", spec.name);
        }
    }

    #[test]
    fn filter_matches_names() {
        let f = filter_suite(Some("SQR,Chn6"));
        assert_eq!(f.len(), 2);
        assert!(filter_suite(Some("YT")).iter().any(|s| s.name == "YT*"));
        assert_eq!(filter_suite(None).len(), suite().len());
    }

    #[test]
    fn small_suite_covers_every_category() {
        let cats: std::collections::HashSet<_> = small_suite().iter().map(|s| s.category).collect();
        assert_eq!(cats.len(), 5);
    }
}
