//! Churn-batch and perturbed-graph generation shared by the serving
//! benchmarks (`serve` and `batch_dynamic` bins).
//!
//! A *churn batch* swaps a fraction of a graph's edges: it deletes
//! `frac · m` edges sampled uniformly from the live edge set and inserts
//! the same number of uniformly random absent pairs. Chaining batches
//! yields a perturbed-graph sequence — the rebuild schedule the `serve`
//! bench drives the service through, and the per-round update stream the
//! `batch_dynamic` bench feeds `BccEngine::apply_batch`. Both bins draw
//! from this module so their update streams are generated identically
//! (same sampler, same normalization, same seeds ⇒ same batches).

use fastbcc_graph::{apply_delta, DeltaScratch, Graph, GraphDelta, V};
use std::collections::HashSet;

/// Deterministic xorshift64* stream, the workspace's bench-side RNG.
pub struct ChurnRng {
    state: u64,
}

impl ChurnRng {
    /// Seeded stream; `seed` is perturbed so 0 is a valid input.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n` (0 when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// The live undirected edge set of `g` (normalized `u < v`) — the mutable
/// ground truth a churn stream evolves between batches.
pub fn live_edges(g: &Graph) -> Vec<(V, V)> {
    g.iter_edges().collect()
}

/// Generate one churn batch against the current graph `g`: about
/// `frac · m` (at least one of each, when possible) deletions sampled
/// from `live` plus the same number of insertions of absent non-loop
/// pairs. `live` is updated to the post-batch edge set, so chained calls
/// evolve a consistent stream.
///
/// Insertions never collide with present edges (including ones deleted in
/// this same batch — they are still present in `g`), so the returned
/// `(adds, dels)` lists are disjoint and unambiguous under simultaneous
/// batch semantics.
pub fn churn_batch(g: &Graph, live: &mut Vec<(V, V)>, frac: f64, rng: &mut ChurnRng) -> GraphDelta {
    let n = g.n() as u64;
    let m = live.len();
    let k = ((m as f64 * frac).round() as usize).clamp(1, m);
    let mut delta = GraphDelta::new();
    if n < 2 || m == 0 {
        return delta;
    }
    for _ in 0..k {
        let i = rng.below(live.len() as u64) as usize;
        delta.dels.push(live.swap_remove(i));
    }
    let mut fresh: HashSet<(V, V)> = HashSet::with_capacity(k);
    let mut attempts = 0usize;
    while fresh.len() < k && attempts < 32 * k {
        attempts += 1;
        let (a, b) = (rng.below(n) as V, rng.below(n) as V);
        let (u, v) = (a.min(b), a.max(b));
        if u != v && !g.has_edge(u, v) && fresh.insert((u, v)) {
            delta.adds.push((u, v));
            live.push((u, v));
        }
    }
    delta
}

/// A perturbed-graph schedule: `steps` graphs, each one churn batch
/// (`frac` of the edges swapped) away from the previous, paired with the
/// batch that produced it. The `serve` bench rebuilds through the graphs;
/// `batch_dynamic` feeds the deltas to `apply_batch` and uses the graphs
/// as its full-solve baseline inputs.
pub fn perturbed_sequence(
    g0: &Graph,
    steps: usize,
    frac: f64,
    seed: u64,
) -> Vec<(GraphDelta, Graph)> {
    let mut rng = ChurnRng::new(seed);
    let mut live = live_edges(g0);
    let mut scratch = DeltaScratch::new();
    let mut cur = g0.clone();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let delta = churn_batch(&cur, &mut live, frac, &mut rng);
        let next = apply_delta(&cur, &delta, &mut scratch);
        scratch.recycle(std::mem::replace(&mut cur, next.clone()));
        out.push((delta, next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbcc_graph::builder::from_edges;
    use fastbcc_graph::generators::rmat;

    #[test]
    fn batches_evolve_a_consistent_live_set() {
        let g0 = rmat(8, 500, 11);
        let mut live = live_edges(&g0);
        let mut rng = ChurnRng::new(42);
        let mut scratch = DeltaScratch::new();
        let mut cur = g0;
        for _ in 0..5 {
            let m_before = live.len();
            let d = churn_batch(&cur, &mut live, 0.02, &mut rng);
            assert!(!d.dels.is_empty());
            // Adds and dels are disjoint, and adds were absent.
            for &(u, v) in &d.adds {
                assert!(u < v && !cur.has_edge(u, v));
                assert!(!d.dels.contains(&(u, v)));
            }
            let next = apply_delta(&cur, &d, &mut scratch);
            let want = from_edges(cur.n(), &live);
            assert_eq!(next, want, "live set tracks the evolved graph");
            assert!(live.len() <= m_before + d.adds.len());
            scratch.recycle(std::mem::replace(&mut cur, next));
        }
    }

    #[test]
    fn perturbed_sequence_is_deterministic_and_chained() {
        let g0 = rmat(7, 300, 3);
        let a = perturbed_sequence(&g0, 4, 0.05, 9);
        let b = perturbed_sequence(&g0, 4, 0.05, 9);
        assert_eq!(a.len(), 4);
        for ((da, ga), (db, gb)) in a.iter().zip(&b) {
            assert_eq!(da.adds, db.adds);
            assert_eq!(da.dels, db.dels);
            assert_eq!(ga, gb);
        }
        // Each graph is its predecessor plus its own delta.
        let mut scratch = DeltaScratch::new();
        let mut prev = g0;
        for (d, g) in a {
            assert_eq!(apply_delta(&prev, &d, &mut scratch), g);
            prev = g;
        }
    }
}
