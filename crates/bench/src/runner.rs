//! Shared measurement loop for the Tab. 2 / Fig. 1 experiments: build each
//! suite graph, run SEQ / FAST-BCC / GBBS-style / SM'14-style in both
//! parallel and single-thread configurations, cross-check the BCC counts,
//! and collect a row of results.

use crate::measure::{time_median, Args, RunRecord};
use crate::suite::{filter_suite, Category, GraphSpec};
use fastbcc_baselines::{bfs_bcc, hopcroft_tarjan, sm14};
use fastbcc_core::{fast_bcc, largest_bcc_size, BccEngine, BccOpts};
use fastbcc_graph::stats::approx_diameter;
use fastbcc_graph::Graph;
use fastbcc_primitives::with_threads;
use std::time::Duration;

/// Measurements for one graph.
pub struct RowResult {
    pub name: &'static str,
    pub category: Category,
    pub n: usize,
    pub m: usize,
    pub diameter: u32,
    pub num_bcc: usize,
    pub largest_pct: f64,
    /// Sequential Hopcroft–Tarjan.
    pub seq: Duration,
    pub ours_par: Duration,
    pub ours_seq: Duration,
    pub gbbs_par: Duration,
    pub gbbs_seq: Duration,
    /// `None` = unsupported (disconnected input), as in Tab. 2.
    pub sm14_par: Option<Duration>,
    /// FAST-BCC peak auxiliary bytes (Fig. 7 metric).
    pub ours_aux_peak_bytes: usize,
    /// FAST-BCC freshly allocated bytes in the measured parallel run (0
    /// once a pooled workspace is warm; one-shot runs pay everything).
    pub ours_fresh_bytes: usize,
    /// Same, for the single-thread configuration.
    pub ours_seq_fresh_bytes: usize,
    /// Warm pooled-engine re-solve time (parallel configuration).
    pub ours_warm: Duration,
    /// Fresh bytes of that warm re-solve — the zero-allocation acceptance
    /// gate: a warm `BccEngine` must report 0 here even at full
    /// parallelism (the per-worker arenas are pre-sized deterministically).
    pub ours_warm_fresh_bytes: usize,
    /// Bytes held in the engine's frontier-staging buffers (edgeMap
    /// claim slots + dense bitmaps + local-search stacks).
    pub ours_arena_bytes: usize,
    /// Total reserved bytes of the warm engine's pooled workspace — the
    /// `c · (n + m)` space-regression gate in CI reads this.
    pub ours_scratch_bytes: usize,
    /// GBBS-style baseline peak auxiliary bytes.
    pub gbbs_aux_peak_bytes: usize,
    /// GBBS-style baseline fresh bytes (it pools nothing, so this equals
    /// its peak).
    pub gbbs_fresh_bytes: usize,
}

impl RowResult {
    /// Speedup of a configuration over SEQ (the Fig. 1 cell value).
    pub fn speedup_over_seq(&self, d: Duration) -> f64 {
        self.seq.as_secs_f64() / d.as_secs_f64().max(1e-9)
    }

    /// Best baseline parallel time (for the `T_best/ours` column).
    pub fn best_baseline(&self) -> Duration {
        let mut best = self.seq.min(self.gbbs_par);
        if let Some(s) = self.sm14_par {
            best = best.min(s);
        }
        best
    }

    /// Flatten into per-(graph, algo) JSON records, carrying the space
    /// counters where the algorithm reports them. `threads` is the worker
    /// budget of the parallel configurations; with the persistent pool it
    /// is enforced, not merely requested (see `with_threads`).
    pub fn records(&self, threads: usize) -> Vec<RunRecord> {
        let rec = |algo: &str, t: Duration, thr: usize, peak: usize, fresh: usize, arena: usize| {
            RunRecord {
                graph: self.name.to_string(),
                algo: algo.to_string(),
                n: self.n,
                m: self.m,
                threads: thr,
                pool_workers: fastbcc_primitives::pool_spawns(),
                median_secs: t.as_secs_f64(),
                aux_peak_bytes: peak,
                fresh_alloc_bytes: fresh,
                arena_bytes: arena,
                scratch_bytes: 0,
                scratch_budget_bytes: 0,
                steal_count: fastbcc_primitives::steal_count() as u64,
                deque_max_depth: fastbcc_primitives::deque_max_depth(),
                ..Default::default()
            }
        };
        let warm_rec = {
            let mut r = rec(
                "fast_bcc/warm",
                self.ours_warm,
                threads,
                self.ours_aux_peak_bytes,
                self.ours_warm_fresh_bytes,
                self.ours_arena_bytes,
            );
            r.scratch_bytes = self.ours_scratch_bytes;
            r.scratch_budget_bytes = fastbcc_core::space::workspace_budget_bytes(self.n, self.m);
            r
        };
        let mut out = vec![
            rec("hopcroft_tarjan/seq", self.seq, 1, 0, 0, 0),
            rec(
                "fast_bcc/par",
                self.ours_par,
                threads,
                self.ours_aux_peak_bytes,
                self.ours_fresh_bytes,
                self.ours_arena_bytes,
            ),
            rec(
                "fast_bcc/seq",
                self.ours_seq,
                1,
                self.ours_aux_peak_bytes,
                self.ours_seq_fresh_bytes,
                self.ours_arena_bytes,
            ),
            warm_rec,
            rec(
                "bfs_bcc/par",
                self.gbbs_par,
                threads,
                self.gbbs_aux_peak_bytes,
                self.gbbs_fresh_bytes,
                0,
            ),
            rec(
                "bfs_bcc/seq",
                self.gbbs_seq,
                1,
                self.gbbs_aux_peak_bytes,
                self.gbbs_fresh_bytes,
                0,
            ),
        ];
        if let Some(t) = self.sm14_par {
            out.push(rec("sm14/par", t, threads, 0, 0, 0));
        }
        out
    }
}

/// Harness options (shared CLI surface of `table2` and `fig1_heatmap`).
pub struct RunOpts {
    pub scale: f64,
    pub reps: usize,
    pub threads: usize,
    pub names: Option<String>,
}

impl RunOpts {
    pub fn from_args(args: &Args) -> Self {
        Self {
            scale: args.get_f64("--scale", 0.1),
            reps: args.get_usize("--reps", 3),
            threads: args.get_usize("--threads", 0),
            names: args.get("--graphs").map(String::from),
        }
    }

    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            // The runtime's default budget (honors `FASTBCC_THREADS`).
            fastbcc_primitives::num_threads()
        } else {
            self.threads
        }
    }
}

/// Measure one graph with every algorithm.
pub fn run_one(spec: &GraphSpec, g: &Graph, opts: &RunOpts) -> RowResult {
    let p = opts.effective_threads();
    let reps = opts.reps;

    // Ground truth + table stats.
    let (ht, seq) = time_median(reps, || hopcroft_tarjan(g, false));
    let diameter = approx_diameter(g, 2);

    // Region entry stays OUTSIDE the timed regions, and the persistent
    // pool is warmed by the first repetition (the paper measures algorithm
    // time on a warm pool, not thread spawn latency).
    let (ours, ours_par) =
        with_threads(p, || time_median(reps, || fast_bcc(g, BccOpts::default())));
    let (ours_seq_r, ours_seq) =
        with_threads(1, || time_median(reps, || fast_bcc(g, BccOpts::default())));

    // Warm pooled engine at full parallelism: the cold solve sizes the
    // workspace (per-worker arenas included); every timed re-solve must
    // then report zero fresh bytes — the bench-smoke CI job fails the
    // build if any warm record says otherwise.
    let ((ours_warm_fresh_bytes, ours_arena_bytes, ours_scratch_bytes), ours_warm) =
        with_threads(p, || {
            let mut engine = BccEngine::new(BccOpts::default());
            engine.solve(g);
            let ((fresh, arena), t) = time_median(reps, || {
                let r = engine.solve(g);
                (r.fresh_alloc_bytes, r.arena_bytes)
            });
            ((fresh, arena, engine.workspace().heap_bytes()), t)
        });

    let (gbbs, gbbs_par) = with_threads(p, || time_median(reps, || bfs_bcc(g, 7)));
    let (_, gbbs_seq) = with_threads(1, || time_median(reps, || bfs_bcc(g, 7)));

    let sm14_par = match with_threads(p, || sm14(g)) {
        Ok(_) => {
            let (r, t) = with_threads(p, || time_median(reps, || sm14(g).unwrap()));
            assert_eq!(
                r.num_bcc, ht.num_bcc,
                "{}: SM14 BCC count mismatch",
                spec.name
            );
            Some(t)
        }
        Err(_) => None,
    };

    // Cross-check every algorithm against SEQ.
    assert_eq!(
        ours.num_bcc, ht.num_bcc,
        "{}: FAST-BCC count mismatch",
        spec.name
    );
    assert_eq!(
        gbbs.num_bcc, ht.num_bcc,
        "{}: BFS-BCC count mismatch",
        spec.name
    );

    let largest = largest_bcc_size(&ours);
    RowResult {
        name: spec.name,
        category: spec.category,
        n: g.n(),
        m: g.m_undirected(),
        diameter,
        num_bcc: ht.num_bcc,
        largest_pct: 100.0 * largest as f64 / g.n().max(1) as f64,
        seq,
        ours_par,
        ours_seq,
        gbbs_par,
        gbbs_seq,
        sm14_par,
        ours_aux_peak_bytes: ours.aux_peak_bytes,
        ours_fresh_bytes: ours.fresh_alloc_bytes,
        ours_seq_fresh_bytes: ours_seq_r.fresh_alloc_bytes,
        ours_warm,
        ours_warm_fresh_bytes,
        ours_arena_bytes,
        ours_scratch_bytes,
        gbbs_aux_peak_bytes: gbbs.aux_peak_bytes,
        gbbs_fresh_bytes: gbbs.fresh_alloc_bytes,
    }
}

/// Run the whole (filtered) suite.
pub fn run_suite(opts: &RunOpts) -> Vec<RowResult> {
    let specs = filter_suite(opts.names.as_deref());
    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!("[build] {} (scale {})", spec.name, opts.scale);
        let g = spec.build(opts.scale);
        eprintln!("[run  ] {}: n={} m={}", spec.name, g.n(), g.m_undirected());
        rows.push(run_one(spec, &g, opts));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::small_suite;

    #[test]
    fn runner_smoke_on_tiny_scale() {
        let opts = RunOpts {
            scale: 0.005,
            reps: 1,
            threads: 2,
            names: None,
        };
        for spec in small_suite().iter().take(2) {
            let g = spec.build(opts.scale);
            let row = run_one(spec, &g, &opts);
            assert!(row.seq > Duration::ZERO);
            assert!(row.num_bcc > 0);
            let recs = row.records(opts.threads);
            assert!(recs
                .iter()
                .any(|r| r.algo == "fast_bcc/par" && r.threads == 2));
            // The warm-engine acceptance gates, in miniature: a warm
            // pooled solve allocates nothing even under a parallel
            // schedule, and its reserved workspace fits the linear
            // `c · (n + m)` budget (no hidden `O(n · P)` staging).
            let warm = recs
                .iter()
                .find(|r| r.algo == "fast_bcc/warm")
                .expect("warm record missing");
            assert_eq!(
                warm.fresh_alloc_bytes, 0,
                "warm engine re-solve allocated fresh bytes"
            );
            let budget = warm.scratch_budget_bytes;
            assert!(
                warm.scratch_bytes > 0 && warm.scratch_bytes <= budget,
                "warm workspace {} bytes outside (0, {}] for n={} m={}",
                warm.scratch_bytes,
                budget,
                warm.n,
                warm.m
            );
        }
    }
}
